//! Generate the three paper workloads and inspect their first-order
//! statistics (Table I plus the distributions the substitutions are
//! calibrated against — see DESIGN.md §3).
//!
//! Run with:
//! ```sh
//! cargo run --release --example dataset_explorer [scale]
//! ```

use whatsup::metrics::Histogram;
use whatsup::prelude::*;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.5)
        .clamp(0.02, 1.0);
    let datasets = whatsup::datasets::paper_workloads(scale, 42);

    let mut table = TextTable::new(
        format!("Table I at scale {scale:.2}"),
        &[
            "name",
            "users",
            "news",
            "topics",
            "like rate",
            "social graph",
        ],
    );
    for d in &datasets {
        let s = d.stats();
        table.row(&[
            s.name.clone(),
            s.n_users.to_string(),
            s.n_items.to_string(),
            s.n_topics.to_string(),
            format!("{:.3}", s.like_rate),
            if s.has_social_graph {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    println!("{}", table.render());

    for d in &datasets {
        let mut hist = Histogram::new(0.0, 1.0, 10);
        for i in 0..d.n_items() {
            hist.record(d.likes.popularity(i));
        }
        println!("{} — item popularity distribution:", d.name);
        let fractions = hist.fractions();
        for (i, f) in fractions.iter().enumerate() {
            let bar = "#".repeat((f * 120.0) as usize);
            println!("  {:>4.2} |{bar} {:.3}", hist.bin_center(i), f);
        }
        if let Some(g) = &d.social {
            let degrees: Vec<usize> = (0..g.len() as u32).map(|u| g.out_degree(u)).collect();
            let max = degrees.iter().max().copied().unwrap_or(0);
            let mean = degrees.iter().sum::<usize>() as f64 / degrees.len().max(1) as f64;
            println!("  social graph: mean degree {mean:.1}, hub degree {max}");
        }
        println!();
    }
    println!(
        "Shapes to check: synthetic = block communities (bimodal popularity), \
         digg = category-driven, survey = niche-heavy with a viral tail (Fig. 10)."
    );
}
