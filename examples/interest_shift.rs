//! Interest dynamics (paper §V-C, Fig. 7): a node joins mid-run with the
//! same interests as a reference node; another pair of nodes swap interests.
//! Watch how fast the WUP metric rebuilds their implicit social networks
//! compared to cosine similarity.
//!
//! Run with:
//! ```sh
//! cargo run --release --example interest_shift
//! ```

use whatsup::prelude::*;
use whatsup::sim::dynamics::{self, DynamicsConfig};

fn main() {
    let dataset = whatsup::datasets::survey::generate(&SurveyConfig::paper().scaled(0.2), 99);
    let cfg = DynamicsConfig {
        base: SimConfig {
            cycles: 100,
            publish_from: 3,
            measure_from: 10,
            ..Default::default()
        },
        event_at: 50,
        repeats: 5,
    };
    println!(
        "survey slice: {} users; joining node + interest swap at cycle {}; {} repeats",
        dataset.n_users(),
        cfg.event_at,
        cfg.repeats
    );

    for protocol in [
        Protocol::WhatsUp { f_like: 10 },
        Protocol::WhatsUpCos { f_like: 10 },
    ] {
        let trace = dynamics::run(&dataset, protocol, &cfg);
        println!("\n=== {} ===", protocol.label());
        println!(
            "{:>6} {:>10} {:>10} {:>10}",
            "cycle", "reference", "joining", "changing"
        );
        for (i, &c) in trace.cycles.iter().enumerate() {
            if c % 10 != 0 {
                continue;
            }
            println!(
                "{c:>6} {:>10.3} {:>10.3} {:>10.3}",
                trace.reference_similarity[i],
                trace.joining_similarity[i],
                trace.changing_similarity[i]
            );
        }
        let join = trace.joining_convergence_cycle(cfg.event_at, 0.8);
        let chg = trace.changing_convergence_cycle(cfg.event_at + 1, 0.8);
        println!(
            "cycles to reach 80% of the reference view quality: join={}, change={}",
            join.map_or("never".into(), |c| c.to_string()),
            chg.map_or("never".into(), |c| c.to_string()),
        );
    }
    println!(
        "\nThe WUP metric favors small fresh profiles, so newcomers integrate in \
         tens of cycles; cosine keeps them orbiting (paper: 20 vs >100 cycles)."
    );
}
