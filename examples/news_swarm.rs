//! A real WhatsUp swarm: one UDP socket per user on the loopback interface,
//! live dissemination, and the paper's bandwidth breakdown (Fig. 8b).
//!
//! Run with:
//! ```sh
//! cargo run --release --example news_swarm
//! ```

use whatsup::prelude::*;

fn main() {
    let dataset = whatsup::datasets::survey::generate(&SurveyConfig::paper().scaled(0.2), 7);
    println!(
        "spinning up {} peers (one UDP socket each) for {} items…",
        dataset.n_users(),
        dataset.n_items()
    );

    let swarm = SwarmConfig {
        params: Params::whatsup(6),
        cycles: 25,
        cycle_ms: 120,
        publish_from: 2,
        measure_from: 8,
        drain_cycles: 3,
        ..Default::default()
    };
    let expected = swarm.duration();
    println!(
        "running for ~{:.1}s of wall-clock time…",
        expected.as_secs_f64()
    );
    let report = whatsup::net::runtime::run(&dataset, &UdpConfig { swarm });

    let s = report.scores();
    println!(
        "\ndelivery quality over {} measured items:",
        report.outcomes.len()
    );
    println!(
        "  precision {:.3}  recall {:.3}  F1 {:.3}",
        s.precision, s.recall, s.f1
    );
    println!(
        "\ntraffic ({} messages total):",
        report.traffic.total_msgs()
    );
    println!(
        "  BEEP (news)     {:>8.1} Kbps/node  ({} msgs)",
        report.news_kbps(),
        report.traffic.news_msgs
    );
    println!(
        "  WUP+RPS (views) {:>8.1} Kbps/node  ({} msgs)",
        report.wup_kbps(),
        report.traffic.rps_msgs + report.traffic.wup_msgs
    );
    println!("  total           {:>8.1} Kbps/node", report.total_kbps());
    println!(
        "\nAs in the paper (Fig. 8b), the news traffic dominates: the implicit \
         social network is cheap to maintain."
    );
}
