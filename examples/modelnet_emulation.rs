//! ModelNet-style emulation under message loss (paper §V-E, Table VI):
//! every peer is a thread, traffic crosses an emulated fabric with latency
//! and an iid loss rate, and we watch gossip's redundancy absorb the damage.
//!
//! Run with:
//! ```sh
//! cargo run --release --example modelnet_emulation
//! ```

use whatsup::prelude::*;

fn main() {
    let dataset = whatsup::datasets::survey::generate(&SurveyConfig::paper().scaled(0.15), 13);
    println!(
        "{} emulated peers; sweeping link loss…\n",
        dataset.n_users()
    );

    let mut table = TextTable::new(
        "F1 under emulated message loss (fanout 6)",
        &["loss", "precision", "recall", "F1"],
    );
    for loss in [0.0, 0.05, 0.20, 0.50] {
        let cfg = EmulatorConfig {
            swarm: SwarmConfig {
                params: Params::whatsup(6),
                cycles: 20,
                cycle_ms: 100,
                publish_from: 2,
                measure_from: 7,
                drain_cycles: 3,
                ..Default::default()
            },
            latency_ms: (2, 10),
            link_loss: loss,
        };
        let report = whatsup::net::emulator::run(&dataset, &cfg);
        let s = report.scores();
        table.row(&[
            format!("{:.0}%", loss * 100.0),
            format!("{:.3}", s.precision),
            format!("{:.3}", s.recall),
            format!("{:.3}", s.f1),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper (Table VI): at fanout 6 the F1 barely moves up to 20% loss and \
         degrades gracefully at 50% — epidemic redundancy is the safety net."
    );
}
