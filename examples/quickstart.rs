//! Quickstart: simulate WhatsUp against homogeneous gossip on a small
//! survey-like workload and print the quality/cost numbers.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use whatsup::prelude::*;

fn main() {
    // 1. A workload: ~120 users rating ~250 news items (scaled-down survey
    //    trace; see whatsup_datasets for the three paper workloads).
    let dataset = whatsup::datasets::survey::generate(&SurveyConfig::paper().scaled(0.25), 42);
    println!(
        "workload: {} users, {} items, mean like rate {:.2}",
        dataset.n_users(),
        dataset.n_items(),
        dataset.likes.like_rate()
    );

    // 2. A simulation shape: 65 gossip cycles, items published throughout,
    //    metrics over items published after the clustering ramp. `shards: 0`
    //    partitions the node table across one engine shard per core —
    //    results are bit-identical for every shard count, so this is purely
    //    a throughput knob.
    let cfg = SimConfig {
        cycles: 65,
        publish_from: 3,
        measure_from: 20,
        shards: 0,
        ..Default::default()
    };

    // 3. Compare WhatsUp with a classic flood-style gossip at equal fanout.
    //    `Runner` is the one entry point for every protocol and workload.
    let mut table = TextTable::new(
        "WhatsUp vs homogeneous gossip",
        &["protocol", "precision", "recall", "F1", "msgs/user"],
    );
    for protocol in [
        Protocol::WhatsUp { f_like: 10 },
        Protocol::Gossip { fanout: 10 },
    ] {
        let report = Runner::new(&dataset, protocol).config(cfg.clone()).run();
        let s = report.scores();
        table.row(&[
            report.protocol.clone(),
            format!("{:.3}", s.precision),
            format!("{:.3}", s.recall),
            format!("{:.3}", s.f1),
            format!("{:.0}", report.messages_per_user()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "WhatsUp should deliver a similar recall at much higher precision and a \
         fraction of the traffic — the paper's Table III in miniature."
    );

    // 4. The same protocol under a harsher, serializable scenario: a
    //    flash-crowd publication burst over a bursty Gilbert–Elliott
    //    channel with a mid-run crash wave. (Scenarios round-trip through
    //    JSON — see `scenarios/flash_crowd_crash_wave.json` and the
    //    `whatsup-sim` CLI.)
    let stress = Scenario::default()
        .with_workload(Workload::FlashCrowd {
            at: 30,
            fraction: 0.25,
        })
        .with_environment(Environment {
            loss: LossModel::GilbertElliott {
                p_good: 0.02,
                p_bad: 0.4,
                good_to_bad: 0.15,
                bad_to_good: 0.5,
            },
            churn: ChurnModel::CrashWave {
                at: 35,
                fraction: 0.1,
            },
        });
    let report = Runner::new(&dataset, Protocol::WhatsUp { f_like: 10 })
        .config(cfg)
        .scenario(stress)
        .run();
    let s = report.scores();
    println!(
        "\nflash crowd + bursty loss + crash wave: precision {:.3}, recall {:.3} \
         (graceful degradation, §V-E)",
        s.precision, s.recall
    );
}
