//! Quickstart: simulate WhatsUp against homogeneous gossip on a small
//! survey-like workload and print the quality/cost numbers.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use whatsup::prelude::*;

fn main() {
    // 1. A workload: ~120 users rating ~250 news items (scaled-down survey
    //    trace; see whatsup_datasets for the three paper workloads).
    let dataset = whatsup::datasets::survey::generate(&SurveyConfig::paper().scaled(0.25), 42);
    println!(
        "workload: {} users, {} items, mean like rate {:.2}",
        dataset.n_users(),
        dataset.n_items(),
        dataset.likes.like_rate()
    );

    // 2. A simulation shape: 65 gossip cycles, items published throughout,
    //    metrics over items published after the clustering ramp. `shards: 0`
    //    partitions the node table across one engine shard per core —
    //    results are bit-identical for every shard count, so this is purely
    //    a throughput knob.
    let cfg = SimConfig {
        cycles: 65,
        publish_from: 3,
        measure_from: 20,
        shards: 0,
        ..Default::default()
    };

    // 3. Compare WhatsUp with a classic flood-style gossip at equal fanout.
    let mut table = TextTable::new(
        "WhatsUp vs homogeneous gossip",
        &["protocol", "precision", "recall", "F1", "msgs/user"],
    );
    for protocol in [
        Protocol::WhatsUp { f_like: 10 },
        Protocol::Gossip { fanout: 10 },
    ] {
        let report = run_protocol(&dataset, protocol, &cfg);
        let s = report.scores();
        table.row(&[
            report.protocol.clone(),
            format!("{:.3}", s.precision),
            format!("{:.3}", s.recall),
            format!("{:.3}", s.f1),
            format!("{:.0}", report.messages_per_user()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "WhatsUp should deliver a similar recall at much higher precision and a \
         fraction of the traffic — the paper's Table III in miniature."
    );
}
