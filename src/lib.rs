//! # WhatsUp — a decentralized instant news recommender
//!
//! Rust reproduction of *WHATSUP: A Decentralized Instant News Recommender*
//! (Boutet, Frey, Guerraoui, Jégou, Kermarrec — IEEE IPDPS 2013).
//!
//! WhatsUp delivers news items to the users that want them with no central
//! server, no explicit subscriptions and no content analysis. Each node:
//!
//! * maintains an **implicit social network** (WUP): a random-peer-sampling
//!   overlay plus a clustering overlay that keeps the most similar peers
//!   under an asymmetric similarity metric tuned for push dissemination,
//!   spam resistance and fast cold starts;
//! * disseminates with **BEEP**, a biased epidemic: liked items are
//!   *amplified* (fanout `fLIKE` towards the social network), disliked items
//!   are *oriented* (one copy towards the peer whose profile best matches
//!   the item's aggregated profile, TTL-bounded) — keeping serendipity
//!   without flooding.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`](whatsup_core) | profiles, similarity metrics, WUP+BEEP node (sans-io) |
//! | [`gossip`](whatsup_gossip) | random peer sampling + clustering substrate |
//! | [`graph`](whatsup_graph) | SCC/WCC/clustering-coefficient analytics, generators |
//! | [`datasets`](whatsup_datasets) | synthetic Arxiv/Digg/survey workloads |
//! | [`sim`](whatsup_sim) | cycle simulator, baselines, paper experiments |
//! | [`net`](whatsup_net) | wire codec, ModelNet-like emulator, UDP swarm |
//! | [`metrics`](whatsup_metrics) | precision/recall/F1, histograms, tables |
//!
//! ## Quickstart
//!
//! ```
//! use whatsup::prelude::*;
//!
//! // A small survey-like workload and a 30-cycle simulated run.
//! let dataset = whatsup::datasets::survey::generate(
//!     &SurveyConfig::paper().scaled(0.1), 42);
//! let cfg = SimConfig { cycles: 30, publish_from: 2, measure_from: 10,
//!                       ..Default::default() };
//! let report = run_protocol(&dataset, Protocol::WhatsUp { f_like: 5 }, &cfg);
//! let scores = report.scores();
//! assert!(scores.f1 > 0.0);
//! println!("precision {:.2} recall {:.2} F1 {:.2}",
//!          scores.precision, scores.recall, scores.f1);
//! ```

pub use whatsup_core as core;
pub use whatsup_datasets as datasets;
pub use whatsup_gossip as gossip;
pub use whatsup_graph as graph;
pub use whatsup_metrics as metrics;
pub use whatsup_net as net;
pub use whatsup_sim as sim;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use whatsup_core::prelude::*;
    pub use whatsup_datasets::{Dataset, DiggConfig, LikeMatrix, SurveyConfig, SyntheticConfig};
    pub use whatsup_metrics::{IrAggregate, IrScores, ItemOutcome, Series, SeriesSet, TextTable};
    pub use whatsup_net::{EmulatorConfig, SwarmConfig, SwarmReport, UdpConfig};
    pub use whatsup_sim::scenario::{
        ChurnModel, Environment, Event, LossModel, TimedEvent, Workload,
    };
    pub use whatsup_sim::{
        run_protocol, Protocol, Runner, Scenario, ScenarioFile, SimConfig, SimReport, Simulation,
    };
}
