//! Quick single-row probe of the scale_engine configuration space:
//! `cargo run --release -p whatsup_bench --example hotpath_probe -- <nodes> <shards> <metrics 0|1> [cycles]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use whatsup_datasets::{survey, SurveyConfig};
use whatsup_sim::{Protocol, Runner, SimConfig};

/// Counting wrapper over the system allocator: tracks live heap bytes so
/// the `PROBE_MEM` breakdown can tell real allocations apart from
/// allocator-level overhead (RSS − live = fragmentation + metadata).
struct Counting;

static LIVE: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            LIVE.fetch_add(layout.size(), Ordering::Relaxed);
        }
        p
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) };
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            LIVE.fetch_add(new_size, Ordering::Relaxed);
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

fn live_mb() -> f64 {
    LIVE.load(Ordering::Relaxed) as f64 / (1024.0 * 1024.0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(20_000);
    let shards: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(1);
    let metrics: bool = args.get(3).map(|v| v == "1").unwrap_or(true);
    let cycles: u32 = args.get(4).and_then(|v| v.parse().ok()).unwrap_or(10);
    let cfg = SurveyConfig {
        base_users: (nodes / 4).max(15),
        base_items: 100,
        ..SurveyConfig::paper()
    };
    let d = survey::generate(&cfg, 7);
    if std::env::var("PROBE_MEM").is_ok() {
        eprintln!(
            "after dataset gen: standing {:>8.1} MiB",
            status_mb("VmRSS:")
        );
    }
    let publish_from: u32 = std::env::var("PROBE_PUBLISH_FROM")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let sim_cfg = SimConfig {
        cycles,
        publish_from,
        measure_from: publish_from.saturating_add(2).min(cycles.saturating_sub(1)),
        shards,
        collect_series: metrics,
        ..Default::default()
    };
    let started = Instant::now();
    let report = if std::env::var("PROBE_MEM").is_ok() {
        // Per-component heap accounting at end of run (diagnostics).
        let mut sim =
            whatsup_sim::Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, sim_cfg.clone());
        eprintln!(
            "after sim build:   standing {:>8.1} MiB",
            status_mb("VmRSS:")
        );
        for c in 0..cycles {
            let _ = std::fs::write("/proc/self/clear_refs", "5");
            sim.step();
            eprintln!(
                "cycle {c:>2}: peak {:>8.1} MiB, standing {:>8.1} MiB, live {:>8.1} MiB",
                status_mb("VmHWM:"),
                status_mb("VmRSS:"),
                live_mb()
            );
        }
        for (name, bytes) in sim.memory_breakdown() {
            eprintln!(
                "mem {:>18}: {:>9.1} MiB",
                name,
                bytes as f64 / (1024.0 * 1024.0)
            );
        }
        sim.into_report()
    } else {
        Runner::new(&d, Protocol::WhatsUp { f_like: 5 })
            .config(sim_cfg)
            .run()
    };
    let secs = started.elapsed().as_secs_f64();
    println!(
        "nodes={} shards={} metrics={} cycles={} -> {:.3}s ({:.2} cyc/s) messages={} rss={:.1}MiB",
        d.n_users(),
        shards,
        metrics,
        cycles,
        secs,
        cycles as f64 / secs,
        report.gossip_messages + report.news_messages_all,
        peak_rss_mb()
    );
}

/// A `/proc/self/status` memory line in MiB (Linux); 0 elsewhere.
fn status_mb(key: &str) -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix(key))
        .and_then(|v| v.trim().strip_suffix("kB"))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

/// The process's peak resident set in MiB (`VmHWM`, Linux); 0 elsewhere.
fn peak_rss_mb() -> f64 {
    status_mb("VmHWM:")
}
