//! Quick single-row probe of the scale_engine configuration space:
//! `cargo run --release -p whatsup_bench --example hotpath_probe -- <nodes> <shards> <metrics 0|1> [cycles]`

use std::time::Instant;
use whatsup_datasets::{survey, SurveyConfig};
use whatsup_sim::{Protocol, Runner, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(20_000);
    let shards: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(1);
    let metrics: bool = args.get(3).map(|v| v == "1").unwrap_or(true);
    let cycles: u32 = args.get(4).and_then(|v| v.parse().ok()).unwrap_or(10);
    let cfg = SurveyConfig {
        base_users: (nodes / 4).max(15),
        base_items: 100,
        ..SurveyConfig::paper()
    };
    let d = survey::generate(&cfg, 7);
    let sim_cfg = SimConfig {
        cycles,
        publish_from: 2,
        measure_from: 4,
        shards,
        collect_series: metrics,
        ..Default::default()
    };
    let started = Instant::now();
    let report = Runner::new(&d, Protocol::WhatsUp { f_like: 5 })
        .config(sim_cfg)
        .run();
    let secs = started.elapsed().as_secs_f64();
    println!(
        "nodes={} shards={} metrics={} cycles={} -> {:.3}s ({:.2} cyc/s) messages={}",
        d.n_users(),
        shards,
        metrics,
        cycles,
        secs,
        cycles as f64 / secs,
        report.gossip_messages + report.news_messages_all
    );
}
