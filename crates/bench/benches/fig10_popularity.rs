//! Fig. 10: recall vs item popularity (WhatsUp vs CF-Wup) plus the
//! popularity distribution.

fn main() {
    let t = whatsup_bench::start("fig10_popularity", "Fig 10 — recall vs popularity");
    let result = whatsup_bench::experiments::figures::fig10();
    println!("{}", result.render());
    if let (Some(wu), Some(cf)) = (
        result.niche_recall("WhatsUp", 0.5),
        result.niche_recall("CF-Wup", 0.5),
    ) {
        println!("niche (popularity<0.5) recall: WhatsUp {wu:.3} vs CF-Wup {cf:.3}");
    }
    whatsup_bench::experiments::save_json("fig10_popularity", &result);
    whatsup_bench::finish("fig10_popularity", t);
}
