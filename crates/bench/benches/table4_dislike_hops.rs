//! Table IV: how many dislike-forwards liked items took before delivery.

fn main() {
    let t = whatsup_bench::start("table4_dislike_hops", "Table IV — news liked via dislike");
    let result = whatsup_bench::experiments::tables::table4();
    println!("{}", result.render());
    println!(
        "shape to check: monotone decreasing; a sizeable minority (paper 46%)\n\
         of liked deliveries needed at least one dislike-forward."
    );
    whatsup_bench::experiments::save_json("table4_dislike_hops", &result);
    whatsup_bench::finish("table4_dislike_hops", t);
}
