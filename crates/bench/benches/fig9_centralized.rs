//! Fig. 9: centralized (global knowledge) vs decentralized WhatsUp.

fn main() {
    let t = whatsup_bench::start("fig9_centralized", "Fig 9 — centralized vs decentralized");
    let result = whatsup_bench::experiments::figures::fig9();
    println!("{}", result.render());
    whatsup_bench::experiments::save_json("fig9_centralized", &result);
    whatsup_bench::finish("fig9_centralized", t);
}
