//! Ablations of the design choices called out in DESIGN.md §7:
//! amplification, orientation, profile-window length, WUPvs/fLIKE ratio.

fn main() {
    let t = whatsup_bench::start("ablations", "BEEP mechanism & parameter ablations");
    let result = whatsup_bench::experiments::figures::ablations();
    println!("{}", result.render());
    whatsup_bench::experiments::save_json("ablations", &result);
    whatsup_bench::finish("ablations", t);
}
