//! Table V: WhatsUp vs explicit dissemination (cascade on Digg, C-Pub/Sub
//! on the survey).

fn main() {
    let t = whatsup_bench::start("table5_explicit", "Table V — explicit baselines");
    let result = whatsup_bench::experiments::tables::table5();
    println!("{}", result.render());
    println!(
        "shape to check: cascade ties WhatsUp's precision at a fraction of its\n\
         recall; C-Pub/Sub has recall 1 but coarser precision; WhatsUp takes\n\
         the best F1 in both comparisons."
    );
    whatsup_bench::experiments::save_json("table5_explicit", &result);
    whatsup_bench::finish("table5_explicit", t);
}
