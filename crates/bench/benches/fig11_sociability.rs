//! Fig. 11: per-user F1 vs sociability, plus the sociability distribution.

fn main() {
    let t = whatsup_bench::start("fig11_sociability", "Fig 11 — F1 vs sociability");
    let result = whatsup_bench::experiments::figures::fig11();
    println!("{}", result.render());
    println!(
        "monotone-increasing trend detected: {}",
        result.is_monotonic_trend()
    );
    whatsup_bench::experiments::save_json("fig11_sociability", &result);
    whatsup_bench::finish("fig11_sociability", t);
}
