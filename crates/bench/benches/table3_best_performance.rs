//! Table III: best performance of each approach on the survey workload.

fn main() {
    let t = whatsup_bench::start("table3_best_performance", "Table III — survey best configs");
    let result = whatsup_bench::experiments::tables::table3();
    println!("{}", result.render());
    println!(
        "shape to check: Gossip floods (recall≈1, precision≈like rate, most\n\
         messages); WhatsUp ties the best F1 at roughly half the traffic."
    );
    whatsup_bench::experiments::save_json("table3_best_performance", &result);
    whatsup_bench::finish("table3_best_performance", t);
}
