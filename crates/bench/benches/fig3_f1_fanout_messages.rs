//! Fig. 3 (a–f): F1 vs fanout and F1 vs message cost for the four
//! metric/protocol combinations on all three datasets.

fn main() {
    let t = whatsup_bench::start("fig3_f1_fanout_messages", "Fig 3 — F1 vs fanout & cost");
    let result = whatsup_bench::experiments::figures::fig3();
    println!("{}", result.render());
    whatsup_bench::experiments::save_json("fig3_f1_fanout_messages", &result);
    whatsup_bench::finish("fig3_f1_fanout_messages", t);
}
