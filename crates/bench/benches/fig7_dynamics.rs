//! Fig. 7: cold start and interest dynamics — joining and interest-changing
//! nodes under the WUP metric vs cosine.

fn main() {
    let t = whatsup_bench::start("fig7_dynamics", "Fig 7 — join/change convergence");
    let repeats = if std::env::var("WHATSUP_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        30
    } else {
        10
    };
    let result = whatsup_bench::experiments::figures::fig7(repeats);
    println!("{}", result.render());
    whatsup_bench::experiments::save_json("fig7_dynamics", &result);
    whatsup_bench::finish("fig7_dynamics", t);
}
