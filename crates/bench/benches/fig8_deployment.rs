//! Fig. 8: (a) F1 of the deployed system — simulation vs ModelNet-like
//! emulation vs the UDP "PlanetLab" swarm (with injected loss and real
//! schedulers); (b) per-node bandwidth split into BEEP (news) and WUP
//! (overlay maintenance) traffic.
//!
//! The paper ran 245 users; we scale that population with `WHATSUP_SCALE`.

use serde::Serialize;
use whatsup_bench::experiments;
use whatsup_core::Params;
use whatsup_datasets::{survey, SurveyConfig};
use whatsup_metrics::{Series, SeriesSet};
use whatsup_net::{emulator, runtime, EmulatorConfig, SwarmConfig, UdpConfig};

#[allow(dead_code)] // written to the JSON artifact via Debug
#[derive(Debug, Serialize)]
struct Fig8Out {
    f1: SeriesSet,
    bandwidth: Vec<(usize, f64, f64, f64)>,
}

fn main() {
    let t = whatsup_bench::start("fig8_deployment", "Fig 8 — deployment quality & bandwidth");
    let scale = experiments::scale();
    // The paper's testbed held 245 users (roughly half the survey) on a
    // *shorter trace*: "very fast gossip and news-generation cycles of
    // 30 sec, with 5 news items per cycle" and a 4-minute (8-cycle)
    // profile window (§V-D). We reproduce that shape: few items per
    // cycle, a short window, and an RPS layer that fires far less often
    // than the news cycle (Table II: RPSf = 1h).
    let mut survey_cfg = SurveyConfig::paper().scaled(245.0 / 480.0 * scale);
    survey_cfg.base_items = (survey_cfg.base_items / 7).max(10);
    let dataset = survey::generate(&survey_cfg, experiments::seed() ^ 0x5eed_0002);
    println!(
        "population: {} users, {} items\n",
        dataset.n_users(),
        dataset.n_items()
    );
    let fanouts = [2usize, 4, 6, 9, 12];

    let mut f1 = SeriesSet::new("Fig 8a — F1 vs fanout", "fanout", "F1");
    f1.add(experiments::figures::fig8_sim_curve(&fanouts));

    let swarm_for = |f: usize, loss: f64| {
        let mut params = Params::whatsup(f);
        params.profile_window = 8; // 4 min of 30 s cycles
        params.rps_period = 10; // RPS much slower than the news cycle
        SwarmConfig {
            params,
            cycles: 22,
            cycle_ms: 70,
            publish_from: 2,
            measure_from: 8,
            drain_cycles: 3,
            loss,
            ..Default::default()
        }
    };

    let mut emu_series = Series::new("ModelNet");
    let mut udp_series = Series::new("PlanetLab (UDP+loss)");
    let mut bandwidth = Vec::new();
    for &f in &fanouts {
        let emu = emulator::run(
            &dataset,
            &EmulatorConfig {
                swarm: swarm_for(f, 0.0),
                latency_ms: (1, 8),
                link_loss: 0.0,
            },
        );
        emu_series.push(f as f64, emu.scores().f1);
        bandwidth.push((f, emu.total_kbps(), emu.wup_kbps(), emu.news_kbps()));
        // PlanetLab analogue: real sockets + 25% receive loss (the paper
        // measured up to 30% effective loss at small fanouts).
        let udp = runtime::run(
            &dataset,
            &UdpConfig {
                swarm: swarm_for(f, 0.25),
            },
        );
        udp_series.push(f as f64, udp.scores().f1);
        println!(
            "fanout {f}: emulator F1 {:.3}, udp(loss 25%) F1 {:.3}, \
             bandwidth total {:.1} Kbps (wup {:.1}, news {:.1})",
            emu.scores().f1,
            udp.scores().f1,
            emu.total_kbps(),
            emu.wup_kbps(),
            emu.news_kbps()
        );
    }
    f1.add(emu_series);
    f1.add(udp_series);

    println!("\n{}", f1.render());
    println!("Fig 8b — bandwidth per node (emulated fabric):");
    println!(
        "{:>7} {:>12} {:>10} {:>10}",
        "fanout", "total Kbps", "WUP", "BEEP"
    );
    for &(f, total, wup, news) in &bandwidth {
        println!("{f:>7} {total:>12.1} {wup:>10.1} {news:>10.1}");
    }
    println!(
        "\nshape to check: simulation ≈ ModelNet; the lossy UDP swarm trails at\n\
         small fanouts and catches up once redundancy covers the loss (paper\n\
         §V-D); news traffic grows linearly with fanout and dominates the\n\
         overlay maintenance cost (paper §V-F)."
    );
    whatsup_bench::experiments::save_json("fig8_deployment", &Fig8Out { f1, bandwidth });
    whatsup_bench::finish("fig8_deployment", t);
}
