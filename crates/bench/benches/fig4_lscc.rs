//! Fig. 4: fraction of nodes in the largest strongly connected component of
//! the WUP overlay vs fanout, plus the §V-A clustering/fragmentation stats.

fn main() {
    let t = whatsup_bench::start("fig4_lscc", "Fig 4 — LSCC & overlay topology");
    let result = whatsup_bench::experiments::figures::fig4();
    println!("{}", result.render());
    whatsup_bench::experiments::save_json("fig4_lscc", &result);
    whatsup_bench::finish("fig4_lscc", t);
}
