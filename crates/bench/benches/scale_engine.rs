//! Engine scaling: single-run throughput (cycles/sec) at 1k/5k/20k nodes,
//! one worker thread vs all available cores.
//!
//! The phased-round engine is deterministic across thread counts, so the
//! speedup column is pure wall-clock: same seed, same report, more cores.
//! On a single-core host the ratio is ~1.0 by construction.
//!
//! `WHATSUP_SCALE_MAX_NODES=<n>` caps the largest population (useful for
//! quick local runs); the default exercises all three sizes.

use std::time::Instant;
use whatsup_datasets::{survey, SurveyConfig};
use whatsup_sim::{Protocol, SimConfig, Simulation};

const CYCLES: u32 = 10;

fn dataset(n_users: usize) -> whatsup_datasets::Dataset {
    // Fixed item load across scales so the cycles/sec column isolates the
    // per-node gossip cost; users scale through the replication base.
    let cfg = SurveyConfig {
        base_users: (n_users / 4).max(15),
        base_items: 100,
        ..SurveyConfig::paper()
    };
    survey::generate(&cfg, 7)
}

fn run(dataset: &whatsup_datasets::Dataset, threads: usize) -> (f64, u64) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    let cfg = SimConfig {
        cycles: CYCLES,
        publish_from: 2,
        measure_from: 4,
        ..Default::default()
    };
    let started = Instant::now();
    let report =
        pool.install(|| Simulation::new(dataset, Protocol::WhatsUp { f_like: 5 }, cfg).run());
    let secs = started.elapsed().as_secs_f64();
    (
        CYCLES as f64 / secs,
        report.gossip_messages + report.news_messages_all,
    )
}

fn main() {
    let t = whatsup_bench::start("scale_engine", "single-run engine scaling, 1 vs all cores");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cap: usize = std::env::var("WHATSUP_SCALE_MAX_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    println!("host parallelism: {cores} core(s); {CYCLES} cycles per run\n");
    println!(
        "{:>8} {:>14} {:>14} {:>9} {:>12}",
        "nodes", "1-thr cyc/s", "all-thr cyc/s", "speedup", "messages"
    );
    let mut rows = Vec::new();
    for &n in [1_000usize, 5_000, 20_000].iter().filter(|&&n| n <= cap) {
        let d = dataset(n);
        let (seq, msgs) = run(&d, 1);
        let (par, msgs_par) = run(&d, cores);
        assert_eq!(
            msgs, msgs_par,
            "thread count changed the traffic — determinism broken"
        );
        let speedup = par / seq;
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>8.2}x {:>12}",
            d.n_users(),
            seq,
            par,
            speedup,
            msgs
        );
        rows.push(vec![d.n_users() as f64, seq, par, speedup]);
    }
    whatsup_bench::experiments::save_json("scale_engine", &rows);
    whatsup_bench::finish("scale_engine", t);
}
