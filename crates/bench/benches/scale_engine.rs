//! Engine scaling: single-run throughput (cycles/sec) across shard counts
//! (1/2/4) at 1k/5k/20k nodes — plus a 100k-node axis — under a uniform
//! and a flash-crowd publication workload, with per-cycle metrics
//! collection on and off.
//!
//! The sharded engine is deterministic across shard counts, so the speedup
//! columns are pure wall-clock: same seed, same report, more shard worker
//! threads. On a single-core host the ratio is ~1.0 by construction (one
//! shard runs inline; more shards add exchange overhead without
//! parallelism). The flash-crowd axis stresses the publication phase: a
//! quarter of the items disseminate in one cycle, which is where the
//! sparse-BFS-tail round-trip skipping pays. The metrics axis isolates the
//! cost of the windowed measurement pipeline (shard counter accumulation +
//! one extra round-trip per cycle): `metrics=off` sets
//! `SimConfig::collect_series = false`, everything else identical.
//!
//! The 100k-node axis runs a reduced subgrid (1 shard, uniform workload,
//! metrics on/off): on a single host the multi-shard rows at that scale
//! only measure exchange overhead again, several minutes per row — the
//! full grid at 100k is a multi-machine job (socket transport), not a
//! bench row.
//!
//! `WHATSUP_SCALE_MAX_NODES=<n>` caps the largest population (useful for
//! quick local/CI runs); the default exercises every axis including 100k.
//! Rows are saved as JSON objects with named columns: `{"nodes", "shards",
//! "workload" ("uniform"/"flash"), "metrics" ("on"/"off"), "secs" (wall
//! clock for the 10 cycles), "messages", "peak_rss_mb"}`. The committed
//! `BENCH_scale.json` at the repo root is a snapshot of those rows — the
//! perf trajectory baseline CI prints deltas against (and fails on
//! `messages` divergence, which would mean a determinism break, not
//! noise).
//!
//! Peak RSS is the process high-water mark (`VmHWM`), which is monotone
//! across rows — sizes run ascending, so each size's first row reflects
//! the largest population seen so far.

use serde::json::Value;
use std::time::Instant;
use whatsup_datasets::{survey, SurveyConfig};
use whatsup_sim::scenario::{Scenario, Workload};
use whatsup_sim::{Protocol, Runner, SimConfig};

const CYCLES: u32 = 10;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Populations above this run the reduced subgrid (1 shard, uniform).
const FULL_GRID_MAX_NODES: usize = 20_000;

fn dataset(n_users: usize) -> whatsup_datasets::Dataset {
    // Fixed item load across scales so the cycles/sec column isolates the
    // per-node gossip cost; users scale through the replication base.
    let cfg = SurveyConfig {
        base_users: (n_users / 4).max(15),
        base_items: 100,
        ..SurveyConfig::paper()
    };
    survey::generate(&cfg, 7)
}

fn workloads() -> [(&'static str, Workload); 2] {
    [
        ("uniform", Workload::Uniform),
        (
            "flash",
            Workload::FlashCrowd {
                at: 5,
                fraction: 0.25,
            },
        ),
    ]
}

/// The process's peak resident set in MiB (`VmHWM`, Linux); 0 elsewhere.
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().strip_suffix("kB"))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

fn run(
    dataset: &whatsup_datasets::Dataset,
    shards: usize,
    workload: Workload,
    collect_series: bool,
) -> (f64, u64) {
    let cfg = SimConfig {
        cycles: CYCLES,
        publish_from: 2,
        measure_from: 4,
        shards,
        collect_series,
        ..Default::default()
    };
    let started = Instant::now();
    let report = Runner::new(dataset, Protocol::WhatsUp { f_like: 5 })
        .config(cfg)
        .scenario(Scenario::default().with_workload(workload))
        .run();
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(
        report.series.is_empty(),
        !collect_series,
        "collect_series knob must gate the time series"
    );
    (
        CYCLES as f64 / secs,
        report.gossip_messages + report.news_messages_all,
    )
}

fn main() {
    let t = whatsup_bench::start(
        "scale_engine",
        "single-run engine scaling across shard counts, workloads and metrics collection",
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cap: usize = std::env::var("WHATSUP_SCALE_MAX_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    println!("host parallelism: {cores} core(s); {CYCLES} cycles per run\n");
    println!(
        "{:>8} {:>8} {:>7} {:>7} {:>12} {:>9} {:>12} {:>9}",
        "nodes", "workload", "shards", "metrics", "cyc/s", "vs 1-sh", "messages", "rss MiB"
    );
    let mut rows = Vec::new();
    for &n in [1_000usize, 5_000, 20_000, 100_000]
        .iter()
        .filter(|&&n| n <= cap)
    {
        let d = dataset(n);
        let full_grid = n <= FULL_GRID_MAX_NODES;
        let shard_counts: &[usize] = if full_grid { &SHARD_COUNTS } else { &[1] };
        let n_workloads = if full_grid { 2 } else { 1 };
        for (w_name, workload) in workloads().into_iter().take(n_workloads) {
            for metrics_on in [false, true] {
                let mut baseline = 0.0f64;
                let mut baseline_msgs = 0u64;
                for &shards in shard_counts {
                    let (cps, msgs) = run(&d, shards, workload.clone(), metrics_on);
                    if shards == 1 {
                        baseline = cps;
                        baseline_msgs = msgs;
                    } else {
                        assert_eq!(
                            msgs, baseline_msgs,
                            "shard count changed the traffic — determinism broken"
                        );
                    }
                    let speedup = cps / baseline;
                    let rss = peak_rss_mb();
                    let metrics = if metrics_on { "on" } else { "off" };
                    println!(
                        "{:>8} {:>8} {:>7} {:>7} {:>12.2} {:>8.2}x {:>12} {:>9.1}",
                        d.n_users(),
                        w_name,
                        shards,
                        metrics,
                        cps,
                        speedup,
                        msgs,
                        rss
                    );
                    rows.push(Value::object(vec![
                        ("nodes", Value::Number(d.n_users() as f64)),
                        ("shards", Value::Number(shards as f64)),
                        ("workload", Value::String(w_name.into())),
                        ("metrics", Value::String(metrics.into())),
                        ("secs", Value::Number(f64::from(CYCLES) / cps)),
                        ("messages", Value::Number(msgs as f64)),
                        ("peak_rss_mb", Value::Number(rss)),
                    ]));
                }
            }
            println!();
        }
    }
    whatsup_bench::experiments::save_json_value("scale_engine", &Value::Array(rows));
    whatsup_bench::finish("scale_engine", t);
}
