//! Engine scaling: single-run throughput (cycles/sec) across shard counts
//! (1/2/4) at 1k/5k/20k nodes — plus a 100k-node axis — under a uniform
//! and a flash-crowd publication workload, with per-cycle metrics
//! collection on and off.
//!
//! The sharded engine is deterministic across shard counts, so the speedup
//! columns are pure wall-clock: same seed, same report, more shard worker
//! threads. On a single-core host the ratio is ~1.0 by construction (one
//! shard runs inline; more shards add exchange overhead without
//! parallelism). The flash-crowd axis stresses the publication phase: a
//! quarter of the items disseminate in one cycle, which is where the
//! sparse-BFS-tail round-trip skipping pays. The metrics axis isolates the
//! cost of the windowed measurement pipeline (shard counter accumulation +
//! one extra round-trip per cycle): `metrics=off` sets
//! `SimConfig::collect_series = false`, everything else identical.
//!
//! The 100k- and 1M-node axes run a reduced subgrid (1 shard, uniform
//! workload; 1M additionally drops the metrics-on row): on a single host
//! the multi-shard rows at that scale only measure exchange overhead
//! again, several minutes per row — the full grid there is a
//! multi-machine job (socket transport), not a bench row.
//!
//! `WHATSUP_SCALE_MAX_NODES=<n>` caps the largest population (useful for
//! quick local/CI runs); the default exercises every axis including 1M.
//! `WHATSUP_SCALE_QUICK=1` instead runs exactly one row — 100k nodes, 1
//! shard, uniform, metrics off — and asserts its peak RSS stays under
//! [`QUICK_RSS_CEILING_MB`]; CI uses it as the memory-regression smoke.
//! Rows are saved as JSON objects with named columns: `{"nodes", "shards",
//! "workload" ("uniform"/"flash"), "metrics" ("on"/"off"), "secs" (wall
//! clock for the 10 cycles), "messages", "peak_rss_mb"}`. The committed
//! `BENCH_scale.json` at the repo root is a snapshot of those rows — the
//! perf trajectory baseline CI prints deltas against (and fails on
//! `messages` divergence, which would mean a determinism break, and on
//! `peak_rss_mb` regressions past the comparison script's tolerance).
//!
//! Peak RSS is the process high-water mark (`VmHWM`). **Every grid row
//! runs in its own child process** (the bench re-executes itself with
//! `WHATSUP_SCALE_ONE_ROW` set): `VmHWM` is monotone per process and the
//! allocator retains freed heap across runs, so rows sharing a process
//! inherit the largest previous row's footprint — at 20k nodes a
//! same-process single-shard row read ~440 MiB against ~300 MiB clean.
//! Process isolation makes each `peak_rss_mb` that row's own footprint,
//! which is what the regression gate compares. Within a row the child
//! still trims the allocator and resets `VmHWM` (Linux: writing `5` to
//! `/proc/self/clear_refs`) so dataset generation is excluded from the
//! row's peak.

use serde::json::Value;
use std::time::Instant;
use whatsup_datasets::{survey, SurveyConfig};
use whatsup_sim::scenario::{Scenario, Workload};
use whatsup_sim::{Protocol, Runner, SimConfig};

const CYCLES: u32 = 10;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Populations above this run the reduced subgrid (1 shard, uniform).
const FULL_GRID_MAX_NODES: usize = 20_000;

fn dataset(n_users: usize) -> whatsup_datasets::Dataset {
    // Fixed item load across scales so the cycles/sec column isolates the
    // per-node gossip cost; users scale through the replication base.
    let cfg = SurveyConfig {
        base_users: (n_users / 4).max(15),
        base_items: 100,
        ..SurveyConfig::paper()
    };
    survey::generate(&cfg, 7)
}

fn workloads() -> [(&'static str, Workload); 2] {
    [
        ("uniform", Workload::Uniform),
        (
            "flash",
            Workload::FlashCrowd {
                at: 5,
                fraction: 0.25,
            },
        ),
    ]
}

/// Ceiling for the `WHATSUP_SCALE_QUICK` smoke row (100k nodes, 1 shard,
/// uniform, metrics off): the committed row's peak RSS plus headroom for
/// allocator and host noise. A run past this is a memory regression.
const QUICK_RSS_CEILING_MB: f64 = 1550.0;

/// The process's peak resident set in MiB (`VmHWM`, Linux); 0 elsewhere.
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().strip_suffix("kB"))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Resets `VmHWM` to the current RSS (Linux: `echo 5 > clear_refs`), so
/// the next [`peak_rss_mb`] read is the peak *since this call*. Best
/// effort — on failure the column keeps the monotone high-water semantic.
fn reset_peak_rss() {
    // The previous row's simulation is dropped by now, but glibc retains
    // the freed heap, so without a trim the current RSS — and therefore
    // the reset high-water floor — carries the *largest previous row*
    // instead of this row's own footprint. Returning the freed pages to
    // the OS first makes every row's peak its own (within ~the residue a
    // fragmented arena can't release).
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    {
        unsafe extern "C" {
            fn malloc_trim(pad: usize) -> i32;
        }
        // SAFETY: malloc_trim is async-signal-unsafe but thread-safe; it
        // only releases free memory back to the OS and is called between
        // rows with no allocator activity in flight on other threads.
        unsafe {
            malloc_trim(0);
        }
    }
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

fn run(
    dataset: &whatsup_datasets::Dataset,
    shards: usize,
    workload: Workload,
    collect_series: bool,
) -> (f64, u64) {
    let cfg = SimConfig {
        cycles: CYCLES,
        publish_from: 2,
        measure_from: 4,
        shards,
        collect_series,
        ..Default::default()
    };
    let started = Instant::now();
    let report = Runner::new(dataset, Protocol::WhatsUp { f_like: 5 })
        .config(cfg)
        .scenario(Scenario::default().with_workload(workload))
        .run();
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(
        report.series.is_empty(),
        !collect_series,
        "collect_series knob must gate the time series"
    );
    (
        CYCLES as f64 / secs,
        report.gossip_messages + report.news_messages_all,
    )
}

fn row_value(
    n_users: usize,
    shards: usize,
    w: &str,
    m: &str,
    cps: f64,
    msgs: u64,
    rss: f64,
) -> Value {
    Value::object(vec![
        ("nodes", Value::Number(n_users as f64)),
        ("shards", Value::Number(shards as f64)),
        ("workload", Value::String(w.into())),
        ("metrics", Value::String(m.into())),
        ("secs", Value::Number(f64::from(CYCLES) / cps)),
        ("messages", Value::Number(msgs as f64)),
        ("peak_rss_mb", Value::Number(rss)),
    ])
}

/// Child mode: `WHATSUP_SCALE_ONE_ROW="nodes,shards,workload,metrics"`.
/// Runs exactly that row in this (fresh) process and prints one
/// machine-readable line; the parent grid loop parses it. Keeping rows in
/// separate processes is what makes the `peak_rss_mb` column honest —
/// see the module docs.
fn run_one_row(spec: &str) -> Result<(), String> {
    let parts: Vec<&str> = spec.split(',').collect();
    let [nodes, shards, w_name, metrics] = parts[..] else {
        return Err(format!("bad WHATSUP_SCALE_ONE_ROW spec: {spec:?}"));
    };
    let nodes: usize = nodes.parse().map_err(|e| format!("nodes: {e}"))?;
    let shards: usize = shards.parse().map_err(|e| format!("shards: {e}"))?;
    let workload = workloads()
        .into_iter()
        .find(|(n, _)| *n == w_name)
        .ok_or_else(|| format!("unknown workload {w_name:?}"))?
        .1;
    let metrics_on = match metrics {
        "on" => true,
        "off" => false,
        other => return Err(format!("metrics must be on/off, got {other:?}")),
    };
    let d = dataset(nodes);
    reset_peak_rss();
    let (cps, msgs) = run(&d, shards, workload, metrics_on);
    println!(
        "ROW {} {} {} {:.6}",
        d.n_users(),
        f64::from(CYCLES) / cps,
        msgs,
        peak_rss_mb()
    );
    Ok(())
}

/// Spawns [`run_one_row`] for `spec` in a fresh copy of this executable
/// and returns `(n_users, secs, messages, peak_rss_mb)` from its `ROW`
/// line.
fn spawn_row(spec: &str) -> (usize, f64, u64, f64) {
    let exe = std::env::current_exe().expect("bench executable path");
    let out = std::process::Command::new(exe)
        .env("WHATSUP_SCALE_ONE_ROW", spec)
        .stderr(std::process::Stdio::inherit())
        .output()
        .expect("spawn row child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "row child {spec:?} failed ({}): {stdout}",
        out.status
    );
    let fields: Vec<&str> = stdout
        .lines()
        .find_map(|l| l.strip_prefix("ROW "))
        .unwrap_or_else(|| panic!("row child {spec:?} printed no ROW line: {stdout}"))
        .split_whitespace()
        .collect();
    let [n_users, secs, msgs, rss] = fields[..] else {
        panic!("malformed ROW line from {spec:?}: {stdout}");
    };
    (
        n_users.parse().expect("n_users"),
        secs.parse().expect("secs"),
        msgs.parse().expect("messages"),
        rss.parse().expect("rss"),
    )
}

/// The `WHATSUP_SCALE_QUICK` path: the single 100k / 1 shard / uniform /
/// metrics-off row, asserted under [`QUICK_RSS_CEILING_MB`]. CI's
/// memory-regression smoke.
fn run_quick() {
    let d = dataset(100_000);
    reset_peak_rss();
    let (cps, msgs) = run(&d, 1, Workload::Uniform, false);
    let rss = peak_rss_mb();
    println!(
        "quick: nodes={} shards=1 uniform metrics=off -> {:.2} cyc/s, messages={}, peak rss {:.1} MiB (ceiling {QUICK_RSS_CEILING_MB})",
        d.n_users(),
        cps,
        msgs,
        rss
    );
    whatsup_bench::experiments::save_json_value(
        "scale_engine",
        &Value::Array(vec![row_value(
            d.n_users(),
            1,
            "uniform",
            "off",
            cps,
            msgs,
            rss,
        )]),
    );
    assert!(
        rss < QUICK_RSS_CEILING_MB,
        "peak RSS {rss:.1} MiB exceeds the {QUICK_RSS_CEILING_MB} MiB ceiling — memory regression"
    );
}

fn main() {
    if let Ok(spec) = std::env::var("WHATSUP_SCALE_ONE_ROW") {
        if let Err(e) = run_one_row(&spec) {
            eprintln!("scale_engine row child: {e}");
            std::process::exit(1);
        }
        return;
    }
    let t = whatsup_bench::start(
        "scale_engine",
        "single-run engine scaling across shard counts, workloads and metrics collection",
    );
    if std::env::var("WHATSUP_SCALE_QUICK").is_ok() {
        run_quick();
        whatsup_bench::finish("scale_engine", t);
        return;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cap: usize = std::env::var("WHATSUP_SCALE_MAX_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    println!("host parallelism: {cores} core(s); {CYCLES} cycles per run\n");
    println!(
        "{:>8} {:>8} {:>7} {:>7} {:>12} {:>9} {:>12} {:>9}",
        "nodes", "workload", "shards", "metrics", "cyc/s", "vs 1-sh", "messages", "rss MiB"
    );
    let mut rows = Vec::new();
    for &n in [1_000usize, 5_000, 20_000, 100_000, 1_000_000]
        .iter()
        .filter(|&&n| n <= cap)
    {
        let full_grid = n <= FULL_GRID_MAX_NODES;
        let shard_counts: &[usize] = if full_grid { &SHARD_COUNTS } else { &[1] };
        let n_workloads = if full_grid { 2 } else { 1 };
        // The 1M row is memory-bound: keep the one column that matters
        // (metrics off) and skip the metrics-on duplicate.
        let metrics_axes: &[bool] = if n >= 1_000_000 {
            &[false]
        } else {
            &[false, true]
        };
        for (w_name, _) in workloads().into_iter().take(n_workloads) {
            for &metrics_on in metrics_axes {
                let mut baseline = 0.0f64;
                let mut baseline_msgs = 0u64;
                for &shards in shard_counts {
                    let metrics = if metrics_on { "on" } else { "off" };
                    let spec = format!("{n},{shards},{w_name},{metrics}");
                    let (n_users, secs, msgs, rss) = spawn_row(&spec);
                    let cps = f64::from(CYCLES) / secs;
                    if shards == 1 {
                        baseline = cps;
                        baseline_msgs = msgs;
                    } else {
                        assert_eq!(
                            msgs, baseline_msgs,
                            "shard count changed the traffic — determinism broken"
                        );
                    }
                    let speedup = cps / baseline;
                    println!(
                        "{:>8} {:>8} {:>7} {:>7} {:>12.2} {:>8.2}x {:>12} {:>9.1}",
                        n_users, w_name, shards, metrics, cps, speedup, msgs, rss
                    );
                    rows.push(row_value(n_users, shards, w_name, metrics, cps, msgs, rss));
                }
            }
            println!();
        }
    }
    whatsup_bench::experiments::save_json_value("scale_engine", &Value::Array(rows));
    whatsup_bench::finish("scale_engine", t);
}
