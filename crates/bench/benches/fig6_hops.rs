//! Fig. 6: dissemination actions by hop distance (forward/infection ×
//! like/dislike), survey at fLIKE = 5.

fn main() {
    let t = whatsup_bench::start("fig6_hops", "Fig 6 — dissemination by hop");
    let result = whatsup_bench::experiments::figures::fig6();
    println!("{}", result.render());
    whatsup_bench::experiments::save_json("fig6_hops", &result);
    whatsup_bench::finish("fig6_hops", t);
}
