//! Table II: the per-node parameter defaults, asserted against the paper.

use whatsup_core::Params;
use whatsup_metrics::TextTable;

fn main() {
    let t = whatsup_bench::start("table2_params", "Table II — system parameters");
    let p = Params::default();
    p.validate().expect("defaults must validate");
    let mut table = TextTable::new(
        "Table II — WhatsUp parameters (per node)",
        &["Parameter", "Description", "Paper", "Implementation"],
    );
    table.row_str(&[
        "RPSvs",
        "size of the random sample",
        "30",
        &p.rps.view_size.to_string(),
    ]);
    table.row_str(&[
        "RPS exchange",
        "descriptors per RPS exchange (half view)",
        "15",
        &p.rps.exchange_len.to_string(),
    ]);
    table.row_str(&[
        "WUPvs",
        "size of the social network",
        "2·fLIKE",
        &format!("{} (fLIKE={})", p.wup_view_size, p.beep.f_like),
    ]);
    table.row_str(&[
        "Profile window",
        "news item TTL",
        "13 cycles",
        &format!("{} cycles", p.profile_window),
    ]);
    table.row_str(&[
        "BEEP TTL",
        "dissemination TTL for dislike",
        "4",
        &p.ttl().map_or("-".into(), |t| t.to_string()),
    ]);
    println!("{}", table.render());
    assert_eq!(p.rps.view_size, 30);
    assert_eq!(p.wup_view_size, 2 * p.beep.f_like);
    assert_eq!(p.profile_window, 13);
    assert_eq!(p.ttl(), Some(4));
    println!("all Table II defaults match the paper.");
    whatsup_bench::experiments::save_json("table2_params", &p);
    whatsup_bench::finish("table2_params", t);
}
