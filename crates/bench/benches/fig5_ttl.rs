//! Fig. 5: impact of the BEEP dislike TTL on precision/recall/F1.

fn main() {
    let t = whatsup_bench::start("fig5_ttl", "Fig 5 — BEEP TTL sweep");
    let result = whatsup_bench::experiments::figures::fig5();
    println!("{}", result.render());
    whatsup_bench::experiments::save_json("fig5_ttl", &result);
    whatsup_bench::finish("fig5_ttl", t);
}
