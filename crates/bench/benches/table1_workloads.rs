//! Table I: workload summary (users, news, like rates) for the three
//! synthesized datasets, next to the paper's counts.

fn main() {
    let t = whatsup_bench::start("table1_workloads", "Table I — workloads");
    let result = whatsup_bench::experiments::tables::table1();
    println!("{}", result.render());
    whatsup_bench::experiments::save_json("table1_workloads", &result);
    whatsup_bench::finish("table1_workloads", t);
}
