//! Table VI: WhatsUp under message loss (simulator loss model; the emulated
//! fabric variant is in fig8_deployment).

fn main() {
    let t = whatsup_bench::start("table6_message_loss", "Table VI — message loss");
    let result = whatsup_bench::experiments::tables::table6();
    println!("{}", result.render());
    println!(
        "shape to check: fanout 6 shrugs off 20% loss; fanout 3 collapses at\n\
         50% loss (recall ≈ 0) with an artificial precision bump."
    );
    whatsup_bench::experiments::save_json("table6_message_loss", &result);
    whatsup_bench::finish("table6_message_loss", t);
}
