//! Criterion microbenchmarks for the hot paths: similarity metrics, profile
//! maintenance, view merges, BEEP decisions, the wire codec and a full
//! simulator cycle.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use whatsup_core::prelude::*;
use whatsup_core::similarity::jaccard_similarity;
use whatsup_datasets::{survey, SurveyConfig};
use whatsup_sim::{Protocol, Runner, SimConfig};

fn profile_with(n: usize, offset: u64) -> Profile {
    Profile::from_entries((0..n as u64).map(|i| ProfileEntry {
        item: offset + i * 3,
        timestamp: i as u32,
        score: if i % 3 == 0 { 0.0 } else { 1.0 },
    }))
}

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    for &n in &[32usize, 256] {
        let a = profile_with(n, 0);
        let b = profile_with(n, n as u64); // ~2/3 overlap
        group.bench_function(format!("wup/{n}"), |bench| {
            bench.iter(|| black_box(wup_similarity(black_box(&a), black_box(&b))))
        });
        group.bench_function(format!("cosine/{n}"), |bench| {
            bench.iter(|| black_box(cosine_similarity(black_box(&a), black_box(&b))))
        });
        group.bench_function(format!("jaccard/{n}"), |bench| {
            bench.iter(|| black_box(jaccard_similarity(black_box(&a), black_box(&b))))
        });
    }
    group.finish();
}

fn bench_profile_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile");
    group.bench_function("rate_256", |bench| {
        bench.iter_batched(
            Profile::new,
            |mut p| {
                for i in 0..256u64 {
                    p.rate((i * 7) % 512, i as u32, i % 2 == 0);
                }
                p
            },
            BatchSize::SmallInput,
        )
    });
    let big = profile_with(256, 0);
    group.bench_function("aggregate_item_profile", |bench| {
        bench.iter_batched(
            || profile_with(128, 64),
            |mut item_profile| {
                item_profile.aggregate_user_profile(black_box(&big));
                item_profile
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("purge_window", |bench| {
        bench.iter_batched(
            || profile_with(256, 0),
            |mut p| {
                p.purge_older_than(128);
                p
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_node_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("node");
    let make_node = || {
        let mut node = WhatsUpNode::new(0, Params::whatsup(10));
        node.seed_views(
            (1..=30).map(|i| (i, profile_with(64, i as u64 * 5))),
            (1..=20).map(|i| (i, profile_with(64, i as u64 * 5))),
        );
        node
    };
    group.bench_function("on_cycle", |bench| {
        bench.iter_batched(
            || (make_node(), ChaCha8Rng::seed_from_u64(1)),
            |(mut node, mut rng)| node.on_cycle(10, &mut NodeStats::default(), &mut rng),
            BatchSize::SmallInput,
        )
    });
    let item = NewsItem::new("bench", "desc", "https://bench", 0, 5);
    group.bench_function("handle_liked_news", |bench| {
        bench.iter_batched(
            || (make_node(), ChaCha8Rng::seed_from_u64(1)),
            |(mut node, mut rng)| {
                let msg = Payload::News(NewsMessage {
                    header: item.header(),
                    profile: SharedProfile::new(profile_with(64, 9)),
                    dislikes: 0,
                    hops: 2,
                });
                node.on_message(
                    3,
                    msg,
                    5,
                    &|_: NodeId, _: ItemId| true,
                    &mut NodeStats::default(),
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let descs: Vec<Descriptor<SharedProfile>> = (0..15)
        .map(|i| Descriptor::fresh(i, SharedProfile::new(profile_with(64, i as u64))))
        .collect();
    let payload = Payload::RpsRequest(descs);
    group.bench_function("encode_gossip_15x64", |bench| {
        bench.iter(|| whatsup_net::codec::encode(1, black_box(&payload), |_| None).unwrap())
    });
    let frame = whatsup_net::codec::encode(1, &payload, |_| None).unwrap();
    group.bench_function("decode_gossip_15x64", |bench| {
        bench.iter(|| whatsup_net::codec::decode(black_box(&frame)).unwrap())
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    let dataset = survey::generate(&SurveyConfig::paper().scaled(0.1), 5);
    let cfg = SimConfig {
        cycles: 10,
        publish_from: 2,
        measure_from: 4,
        ..Default::default()
    };
    group.bench_function("survey48users_10cycles", |bench| {
        bench.iter(|| {
            Runner::new(black_box(&dataset), Protocol::WhatsUp { f_like: 5 })
                .config(cfg.clone())
                .run()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_similarity,
    bench_profile_ops,
    bench_node_paths,
    bench_codec,
    bench_simulation
);
criterion_main!(benches);
