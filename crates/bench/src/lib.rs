//! Shared plumbing for the experiment harnesses in `benches/`.
//!
//! Every table and figure of the paper has a `cargo bench` target
//! (`harness = false`) that:
//! 1. prints a banner with the scale in effect,
//! 2. runs the corresponding `whatsup_sim::experiments` driver (or a
//!    `whatsup_net` swarm for the deployment figures),
//! 3. prints the paper-vs-measured rows/series, and
//! 4. persists the JSON under `target/experiments/`.
//!
//! Scale control: `WHATSUP_FULL=1` for paper-scale runs, `WHATSUP_SCALE=<f>`
//! for anything else; the default keeps the full suite within minutes.

use std::time::Instant;

pub use whatsup_sim::experiments;

/// Prints the harness banner and returns a timer for the footer.
pub fn start(name: &str, what: &str) -> Instant {
    println!("==============================================================");
    println!("{name} — {what}");
    println!(
        "scale {:.2} (WHATSUP_FULL=1 for paper scale), seed {:#x}",
        experiments::scale(),
        experiments::seed()
    );
    println!("==============================================================");
    Instant::now()
}

/// Prints the footer with elapsed time and the artifact path.
pub fn finish(name: &str, started: Instant) {
    println!(
        "\n[{name}] done in {:.1}s; JSON at {}",
        started.elapsed().as_secs_f64(),
        experiments::output_dir()
            .join(format!("{name}.json"))
            .display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_roundtrip() {
        let t = start("selftest", "banner");
        finish("selftest", t);
    }
}
