//! Minimal `criterion` shim.
//!
//! Benchmarks compile and run unchanged: each `bench_function` warms up,
//! picks an iteration count targeting ~`measurement_time` of wall clock,
//! runs it, and prints `name  time/iter (iters)` — enough to track the
//! perf trajectory in CI logs. No statistics beyond mean/min.

use std::time::{Duration, Instant};

/// Batch sizing hints for `iter_batched` (the shim runs per-iteration
/// setup regardless, timing only the routine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(400),
            sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.measurement_time, &id.to_string(), f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(self.criterion.measurement_time, &label, f);
        self
    }

    pub fn finish(self) {}
}

/// Runs the closure given to `Bencher::iter*`, measuring elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(target: Duration, label: &str, mut f: F) {
    // Calibrate: start at 1 iteration, grow until the run is measurable.
    let mut iters: u64 = 1;
    let mut elapsed = run_once(&mut f, iters);
    while elapsed < Duration::from_millis(5) && iters < 1 << 24 {
        iters *= 4;
        elapsed = run_once(&mut f, iters);
    }
    // One measurement pass sized to the target time.
    let per_iter = elapsed.as_secs_f64() / iters as f64;
    let measured_iters = ((target.as_secs_f64() / per_iter).ceil() as u64).clamp(1, 1 << 28);
    let measured = run_once(&mut f, measured_iters);
    let nanos = measured.as_secs_f64() * 1e9 / measured_iters as f64;
    println!(
        "{label:<48} {} ({measured_iters} iters)",
        format_time(nanos)
    );
}

fn format_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:8.1} ns/iter")
    } else if nanos < 1_000_000.0 {
        format!("{:8.2} µs/iter", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:8.3} ms/iter", nanos / 1_000_000.0)
    } else {
        format!("{:8.4} s/iter", nanos / 1_000_000_000.0)
    }
}

/// Re-export for benches that import it from criterion.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("smoke");
        group.bench_function("add", |b| b.iter(|| 1u64 + 2));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn format_time_units() {
        assert!(format_time(12.0).contains("ns"));
        assert!(format_time(12_000.0).contains("µs"));
        assert!(format_time(12_000_000.0).contains("ms"));
        assert!(format_time(2_000_000_000.0).contains("s/iter"));
    }
}
