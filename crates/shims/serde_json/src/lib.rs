//! Minimal `serde_json` shim.
//!
//! * [`to_string_pretty`] renders through pretty `Debug`, then strips the
//!   trailing commas Debug emits so the output is strict JSON for the
//!   shapes the workspace round-trips (numeric vectors, primitives) —
//!   external tooling (python, jq, the CI baseline check) can consume the
//!   artifacts directly. Struct artifacts still render as Debug trees —
//!   readable, stable, but not strict JSON; nothing in-tree parses those
//!   back.
//! * [`from_str`] parses via the shared lenient parser in `serde::json`.
//! * [`json!`] builds a [`Value`] for ad-hoc artifacts.

pub use serde::json::{Error, Value};

/// Serializes `value` through pretty `Debug`.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(strip_trailing_commas(&format!("{value:#?}")))
}

/// Serializes `value` through compact `Debug`.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(strip_trailing_commas(&format!("{value:?}")))
}

/// Removes commas that directly precede a closing `]`/`}` (ignoring
/// whitespace), skipping string literals — Debug's multi-line layout writes
/// one, strict JSON forbids it.
fn strip_trailing_commas(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push('"');
            }
            ',' => {
                let next = text[i + 1..].chars().find(|c| !c.is_whitespace());
                if !matches!(next, Some(']') | Some('}')) {
                    out.push(',');
                }
            }
            _ => out.push(c),
        }
    }
    out
}

/// Parses lenient JSON into any hand-implemented [`serde::Deserialize`].
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = serde::json::parse(text)?;
    T::from_json_value(&value)
}

/// Builds a [`Value`] literal. Supports the object/array/scalar shapes the
/// workspace uses (`json!({"ok": true})`, nested arrays, numbers, strings).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $( $item:tt ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $( $key:literal : $val:tt ),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = std::collections::BTreeMap::new();
        $( map.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::value_from($other) };
}

/// Converts common scalars into [`Value`] (used by `json!`).
pub fn value_from<T: IntoValue>(v: T) -> Value {
    v.into_value()
}

pub trait IntoValue {
    fn into_value(self) -> Value;
}

macro_rules! into_value_num {
    ($($t:ty),*) => {$(
        impl IntoValue for $t {
            fn into_value(self) -> Value {
                Value::Number(self as f64)
            }
        }
    )*};
}
into_value_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl IntoValue for bool {
    fn into_value(self) -> Value {
        Value::Bool(self)
    }
}

impl IntoValue for &str {
    fn into_value(self) -> Value {
        Value::String(self.to_string())
    }
}

impl IntoValue for String {
    fn into_value(self) -> Value {
        Value::String(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_vec_round_trips() {
        let v = vec![1.0f64, 2.0, 3.0];
        let text = to_string_pretty(&v).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"ok": true, "n": 3, "xs": [1, 2]});
        let Value::Object(map) = v else {
            panic!("expected object")
        };
        assert_eq!(map["ok"], Value::Bool(true));
        assert_eq!(map["n"], Value::Number(3.0));
    }

    #[test]
    fn pretty_output_is_strict_json() {
        let rows = vec![vec![1000.0f64, 1.0, 4.43], vec![20000.0, 4.0, 0.07]];
        let text = to_string_pretty(&rows).unwrap();
        assert!(
            !text.contains(",\n]") && !text.contains(",\n    ]"),
            "{text}"
        );
        for line in text.lines() {
            let t = line.trim_end();
            assert!(!t.ends_with(",]") && !t.ends_with(", ]"), "{t}");
        }
        let back: Vec<Vec<f64>> = from_str(&text).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn strip_keeps_commas_inside_strings() {
        let v = json!({"s": "a,]", "xs": [1, 2]});
        let text = to_string(&v);
        assert!(text.unwrap().contains("a,]"));
    }

    #[test]
    fn empty_and_scalar_round_trip() {
        let empty: Vec<f64> = from_str(&to_string_pretty(&Vec::<f64>::new()).unwrap()).unwrap();
        assert!(empty.is_empty());
        let x: f64 = from_str("2.5").unwrap();
        assert_eq!(x, 2.5);
    }
}
