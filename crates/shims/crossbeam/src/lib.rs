//! Minimal `crossbeam` shim: unbounded MPMC-ish channels over
//! `std::sync::mpsc`, with crossbeam's error vocabulary. The receiver is
//! `Clone + Sync` (serialized behind a mutex), which matches how this
//! workspace fans work out.

pub mod channel {
    use std::sync::{mpsc, Arc, Mutex, PoisonError};
    use std::time::Duration;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        fn guard(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.guard().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.guard().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            self.guard()
                .recv()
                .map_err(|_| RecvTimeoutError::Disconnected)
        }
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_and_timeout() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cloned_receiver_drains_same_queue() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let a = rx.try_recv().unwrap();
            let b = rx2.try_recv().unwrap();
            assert_eq!(a + b, 3);
        }
    }
}
