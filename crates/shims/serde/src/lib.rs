//! Minimal `serde` shim.
//!
//! * [`Serialize`] is a marker blanket-implemented for every `Debug` type;
//!   the `serde_json` shim renders values through `Debug` (valid JSON for
//!   the primitive/vector shapes the workspace ever parses back).
//! * [`Deserialize`] is implemented by hand for primitives, `String`,
//!   tuples and `Vec`, over the [`json::Value`] tree.
//! * The derives are no-ops from `serde_derive`, kept so `#[derive]`
//!   attributes compile unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable values; the shim serializes via `Debug`.
pub trait Serialize: std::fmt::Debug {}

impl<T: std::fmt::Debug + ?Sized> Serialize for T {}

/// Types reconstructible from a parsed [`json::Value`].
pub trait Deserialize: Sized {
    fn from_json_value(v: &json::Value) -> Result<Self, json::Error>;
}

pub mod json {
    //! A lenient JSON value tree and parser shared by the `serde_json` shim.
    //!
    //! Accepts standard JSON plus trailing commas and unquoted object keys,
    //! so text produced by pretty `Debug` for primitive collections parses
    //! back.

    use std::collections::BTreeMap;
    use std::fmt;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        message: String,
    }

    impl Error {
        pub fn new(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "json error: {}", self.message)
        }
    }

    impl std::error::Error for Error {}

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b.is_ascii_whitespace() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error::new(format!(
                    "expected '{}' at byte {}",
                    b as char, self.pos
                )))
            }
        }

        fn value(&mut self) -> Result<Value, Error> {
            match self.peek() {
                None => Err(Error::new("unexpected end of input")),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b't') | Some(b'f') => self.boolean(),
                Some(b'n') => {
                    self.keyword("null")?;
                    Ok(Value::Null)
                }
                Some(_) => self.number(),
            }
        }

        fn keyword(&mut self, word: &str) -> Result<(), Error> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(())
            } else {
                Err(Error::new(format!(
                    "expected '{word}' at byte {}",
                    self.pos
                )))
            }
        }

        fn boolean(&mut self) -> Result<Value, Error> {
            if self.keyword("true").is_ok() {
                Ok(Value::Bool(true))
            } else {
                self.keyword("false")?;
                Ok(Value::Bool(false))
            }
        }

        fn number(&mut self) -> Result<Value, Error> {
            self.skip_ws();
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::new("non-utf8 number"))?;
            text.parse::<f64>()
                .map(Value::Number)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        }

        fn string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos) {
                    None => return Err(Error::new("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.bytes.get(self.pos) {
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(&c @ (b'"' | b'\\' | b'/')) => out.push(c as char),
                            other => {
                                return Err(Error::new(format!("unsupported escape {other:?}")))
                            }
                        }
                        self.pos += 1;
                    }
                    Some(&c) => {
                        // Copy raw UTF-8 bytes through.
                        out.push(c as char);
                        self.pos += 1;
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, Error> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            loop {
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                items.push(self.value()?);
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b']') => {}
                    other => return Err(Error::new(format!("expected ',' or ']', got {other:?}"))),
                }
            }
        }

        fn object(&mut self) -> Result<Value, Error> {
            self.expect(b'{')?;
            let mut map = BTreeMap::new();
            loop {
                match self.peek() {
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(map));
                    }
                    Some(b'"') => {
                        let key = self.string()?;
                        self.expect(b':')?;
                        map.insert(key, self.value()?);
                    }
                    Some(_) => {
                        // Lenient: bare identifier keys (Debug output).
                        let start = self.pos;
                        while let Some(&b) = self.bytes.get(self.pos) {
                            if b == b':' || b.is_ascii_whitespace() {
                                break;
                            }
                            self.pos += 1;
                        }
                        let key =
                            String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                        self.expect(b':')?;
                        map.insert(key, self.value()?);
                    }
                    None => return Err(Error::new("unterminated object")),
                }
                if self.peek() == Some(b',') {
                    self.pos += 1;
                }
            }
        }
    }

    /// Parses lenient JSON text into a [`Value`].
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::new(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }
}

use json::{Error, Value};

macro_rules! deserialize_number {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(Error::new(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
deserialize_number!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => Ok((
                A::from_json_value(&items[0])?,
                B::from_json_value(&items[1])?,
            )),
            other => Err(Error::new(format!("expected pair, got {other:?}"))),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_json_value(&items[0])?,
                B::from_json_value(&items[1])?,
                C::from_json_value(&items[2])?,
            )),
            other => Err(Error::new(format!("expected triple, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::{parse, Value};
    use super::Deserialize;

    #[test]
    fn parses_debug_style_float_vec() {
        // Pretty Debug output of vec![1.0, 2.0, 3.0] — trailing commas.
        let text = "[\n    1.0,\n    2.0,\n    3.0,\n]";
        let back: Vec<f64> = Vec::from_json_value(&parse(text).unwrap()).unwrap();
        assert_eq!(back, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn parses_objects_strings_bools() {
        let v = parse(r#"{"ok": true, "name": "x", "xs": [1, 2]}"#).unwrap();
        let Value::Object(map) = v else {
            panic!("expected object")
        };
        assert_eq!(map["ok"], Value::Bool(true));
        assert_eq!(map["name"], Value::String("x".into()));
        assert_eq!(
            map["xs"],
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("[1, 2").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("[1] trailing").is_err());
    }
}
