//! Minimal `serde` shim.
//!
//! * [`Serialize`] is a marker blanket-implemented for every `Debug` type;
//!   the `serde_json` shim renders values through `Debug` (valid JSON for
//!   the primitive/vector shapes the workspace ever parses back).
//! * [`Deserialize`] is implemented by hand for primitives, `String`,
//!   tuples and `Vec`, over the [`json::Value`] tree.
//! * The derives are no-ops from `serde_derive`, kept so `#[derive]`
//!   attributes compile unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable values; the shim serializes via `Debug`.
pub trait Serialize: std::fmt::Debug {}

impl<T: std::fmt::Debug + ?Sized> Serialize for T {}

/// Types reconstructible from a parsed [`json::Value`].
pub trait Deserialize: Sized {
    fn from_json_value(v: &json::Value) -> Result<Self, json::Error>;
}

pub mod json {
    //! A lenient JSON value tree and parser shared by the `serde_json` shim.
    //!
    //! Accepts standard JSON plus trailing commas and unquoted object keys,
    //! so text produced by pretty `Debug` for primitive collections parses
    //! back.

    use std::collections::BTreeMap;
    use std::fmt;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        /// Builds an object from `(key, value)` pairs (later duplicates win).
        pub fn object<K: Into<String>>(entries: impl IntoIterator<Item = (K, Value)>) -> Value {
            Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| (k.into(), v))
                    .collect::<BTreeMap<_, _>>(),
            )
        }

        /// Object field lookup (`None` for non-objects and missing keys).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(map) => map.get(key),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// Renders strict JSON with two-space indentation.
        pub fn pretty(&self) -> String {
            let mut out = String::new();
            self.render(&mut out, Some(0));
            out
        }

        fn render(&self, out: &mut String, indent: Option<usize>) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Number(n) => render_number(out, *n),
                Value::String(s) => render_string(out, s),
                Value::Array(items) => {
                    render_seq(out, indent, items.len(), b'[', |out, i, inner| {
                        items[i].render(out, inner)
                    })
                }
                Value::Object(map) => {
                    let entries: Vec<(&String, &Value)> = map.iter().collect();
                    render_seq(out, indent, entries.len(), b'{', |out, i, inner| {
                        render_string(out, entries[i].0);
                        out.push_str(": ");
                        entries[i].1.render(out, inner);
                    })
                }
            }
        }
    }

    /// Renders JSON text: compact via `Display`, indented via [`Value::pretty`].
    impl fmt::Display for Value {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let mut out = String::new();
            self.render(&mut out, None);
            f.write_str(&out)
        }
    }

    fn render_number(out: &mut String, n: f64) {
        if n.is_finite() {
            // Rust's shortest round-trip float formatting is valid JSON.
            out.push_str(&format!("{n}"));
        } else {
            // JSON has no infinities/NaN; null is the conventional stand-in.
            out.push_str("null");
        }
    }

    fn render_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn render_seq(
        out: &mut String,
        indent: Option<usize>,
        len: usize,
        open: u8,
        mut item: impl FnMut(&mut String, usize, Option<usize>),
    ) {
        let close = if open == b'[' { ']' } else { '}' };
        out.push(open as char);
        if len == 0 {
            out.push(close);
            return;
        }
        let inner = indent.map(|d| d + 1);
        for i in 0..len {
            if i > 0 {
                out.push(',');
            }
            match inner {
                Some(d) => {
                    out.push('\n');
                    out.push_str(&"  ".repeat(d));
                }
                None if i > 0 => out.push(' '),
                None => {}
            }
            item(out, i, inner);
        }
        if let Some(d) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        out.push(close);
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        message: String,
    }

    impl Error {
        pub fn new(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "json error: {}", self.message)
        }
    }

    impl std::error::Error for Error {}

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b.is_ascii_whitespace() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error::new(format!(
                    "expected '{}' at byte {}",
                    b as char, self.pos
                )))
            }
        }

        fn value(&mut self) -> Result<Value, Error> {
            match self.peek() {
                None => Err(Error::new("unexpected end of input")),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b't') | Some(b'f') => self.boolean(),
                Some(b'n') => {
                    self.keyword("null")?;
                    Ok(Value::Null)
                }
                Some(_) => self.number(),
            }
        }

        fn keyword(&mut self, word: &str) -> Result<(), Error> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(())
            } else {
                Err(Error::new(format!(
                    "expected '{word}' at byte {}",
                    self.pos
                )))
            }
        }

        fn boolean(&mut self) -> Result<Value, Error> {
            if self.keyword("true").is_ok() {
                Ok(Value::Bool(true))
            } else {
                self.keyword("false")?;
                Ok(Value::Bool(false))
            }
        }

        fn number(&mut self) -> Result<Value, Error> {
            self.skip_ws();
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::new("non-utf8 number"))?;
            text.parse::<f64>()
                .map(Value::Number)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        }

        /// Reads four hex digits at the cursor (the payload of a `\u`
        /// escape) and advances past them.
        fn hex4(&mut self) -> Result<u32, Error> {
            let hex = self
                .bytes
                .get(self.pos..self.pos + 4)
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            self.pos += 4;
            u32::from_str_radix(
                std::str::from_utf8(hex).map_err(|_| Error::new("non-utf8 \\u escape"))?,
                16,
            )
            .map_err(|_| Error::new("invalid \\u escape"))
        }

        fn string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos).copied() {
                    None => return Err(Error::new("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self
                            .bytes
                            .get(self.pos)
                            .copied()
                            .ok_or_else(|| Error::new("unterminated escape"))?;
                        self.pos += 1;
                        match esc {
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'"' | b'\\' | b'/' => out.push(esc as char),
                            b'u' => {
                                let hi = self.hex4()?;
                                let code = if (0xD800..0xDC00).contains(&hi) {
                                    // High surrogate: a \uXXXX low surrogate
                                    // must follow (JSON's astral encoding).
                                    if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                        return Err(Error::new("unpaired high surrogate"));
                                    }
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    hi
                                };
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("invalid \\u code point"))?,
                                );
                            }
                            other => {
                                return Err(Error::new(format!("unsupported escape {other:?}")))
                            }
                        }
                    }
                    Some(b) => {
                        // Copy one UTF-8 scalar through verbatim (multi-byte
                        // sequences must stay intact).
                        let len = match b {
                            0x00..=0x7F => 1,
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let slice = self
                            .bytes
                            .get(self.pos..self.pos + len)
                            .ok_or_else(|| Error::new("truncated utf-8 sequence"))?;
                        out.push_str(
                            std::str::from_utf8(slice)
                                .map_err(|_| Error::new("non-utf8 string content"))?,
                        );
                        self.pos += len;
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, Error> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            loop {
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                items.push(self.value()?);
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b']') => {}
                    other => return Err(Error::new(format!("expected ',' or ']', got {other:?}"))),
                }
            }
        }

        fn object(&mut self) -> Result<Value, Error> {
            self.expect(b'{')?;
            let mut map = BTreeMap::new();
            loop {
                match self.peek() {
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(map));
                    }
                    Some(b'"') => {
                        let key = self.string()?;
                        self.expect(b':')?;
                        map.insert(key, self.value()?);
                    }
                    Some(_) => {
                        // Lenient: bare identifier keys (Debug output).
                        let start = self.pos;
                        while let Some(&b) = self.bytes.get(self.pos) {
                            if b == b':' || b.is_ascii_whitespace() {
                                break;
                            }
                            self.pos += 1;
                        }
                        let key =
                            String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                        self.expect(b':')?;
                        map.insert(key, self.value()?);
                    }
                    None => return Err(Error::new("unterminated object")),
                }
                if self.peek() == Some(b',') {
                    self.pos += 1;
                }
            }
        }
    }

    /// Parses lenient JSON text into a [`Value`].
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::new(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }
}

use json::{Error, Value};

macro_rules! deserialize_number {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(Error::new(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
deserialize_number!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => Ok((
                A::from_json_value(&items[0])?,
                B::from_json_value(&items[1])?,
            )),
            other => Err(Error::new(format!("expected pair, got {other:?}"))),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_json_value(&items[0])?,
                B::from_json_value(&items[1])?,
                C::from_json_value(&items[2])?,
            )),
            other => Err(Error::new(format!("expected triple, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::{parse, Value};
    use super::Deserialize;

    #[test]
    fn parses_debug_style_float_vec() {
        // Pretty Debug output of vec![1.0, 2.0, 3.0] — trailing commas.
        let text = "[\n    1.0,\n    2.0,\n    3.0,\n]";
        let back: Vec<f64> = Vec::from_json_value(&parse(text).unwrap()).unwrap();
        assert_eq!(back, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn parses_objects_strings_bools() {
        let v = parse(r#"{"ok": true, "name": "x", "xs": [1, 2]}"#).unwrap();
        let Value::Object(map) = v else {
            panic!("expected object")
        };
        assert_eq!(map["ok"], Value::Bool(true));
        assert_eq!(map["name"], Value::String("x".into()));
        assert_eq!(
            map["xs"],
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("[1, 2").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("[1] trailing").is_err());
    }

    #[test]
    fn rendered_json_parses_back() {
        let v = Value::Object(
            [
                ("name".to_string(), Value::String("a \"b\"\n\u{1}".into())),
                ("x".to_string(), Value::Number(0.35)),
                ("n".to_string(), Value::Number(42.0)),
                (
                    "xs".to_string(),
                    Value::Array(vec![Value::Bool(true), Value::Null]),
                ),
                ("empty".to_string(), Value::Array(vec![])),
            ]
            .into_iter()
            .collect(),
        );
        assert_eq!(parse(&v.to_string()).unwrap(), v, "compact");
        assert_eq!(parse(&v.pretty()).unwrap(), v, "pretty");
    }

    #[test]
    fn non_ascii_strings_round_trip() {
        let v = Value::String("café 🚀 – ü".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        // Escaped astral-plane input: JSON surrogate pairs decode.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::String("😀".into()),
            "surrogate pairs combine"
        );
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(parse(r#""\ud83dA""#).is_err(), "bad low surrogate");
    }

    #[test]
    fn accessors_resolve_shapes() {
        let v = parse(r#"{"n": 3, "f": 0.5, "s": "x", "b": true, "xs": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(Value::as_u64), None);
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(0.5));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Value::as_array).map(<[_]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
    }
}
