//! No-op derive macros for the serde shim.
//!
//! The shim's `Serialize` is blanket-implemented over `Debug` and its
//! `Deserialize` impls are written by hand for the primitives the workspace
//! parses back, so the derives only need to *exist* for `#[derive(...)]`
//! attributes to compile.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
