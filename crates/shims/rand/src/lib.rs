//! Minimal `rand` shim: the trait/distribution surface this workspace uses.
//!
//! Deterministic and self-consistent, but not bit-compatible with upstream
//! `rand`. All sampling goes through [`RngCore`] so every consumer sees the
//! same value stream for the same underlying generator state.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 32/64-bit words and byte fills.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw; consumes one `u64` regardless of `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    fn sample<T, D>(&mut self, dist: D) -> T
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a `u64` to `[0, 1)` using the high 53 bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Seedable generators; `seed_from_u64` expands via SplitMix64 like upstream.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    use super::{unit_f64, RngCore};
    use std::borrow::Borrow;

    /// A sampling distribution over `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }

    /// The "natural" distribution for primitives (uniform over the domain).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f64(rng.next_u64()) as f32
        }
    }

    /// Error from [`WeightedIndex::new`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        NoItem,
        InvalidWeight,
        AllWeightsZero,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let msg = match self {
                WeightedError::NoItem => "no weights provided",
                WeightedError::InvalidWeight => "negative or non-finite weight",
                WeightedError::AllWeightsZero => "all weights are zero",
            };
            f.write_str(msg)
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices proportionally to a weight vector (CDF + binary
    /// search, like upstream).
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: std::borrow::Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(Self { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let x = unit_f64(rng.next_u64()) * self.total;
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&x).expect("finite cumulative weight"))
            {
                Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Random selection helpers on slices.
    pub trait SliceRandom {
        type Item;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        /// Fisher–Yates.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        use super::super::RngCore;

        /// `amount` distinct indices drawn uniformly from `0..length` via
        /// partial Fisher–Yates. Dense variant materializes the pool
        /// (O(length)); for small samples from large ranges a sparse swap
        /// map keeps it O(amount) time and memory.
        pub fn sample<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> Vec<usize> {
            let amount = amount.min(length);
            if amount.saturating_mul(8) >= length {
                let mut pool: Vec<usize> = (0..length).collect();
                for i in 0..amount {
                    let j = i + (rng.next_u64() % (length - i) as u64) as usize;
                    pool.swap(i, j);
                }
                pool.truncate(amount);
                return pool;
            }
            // Sparse partial Fisher–Yates: `swaps` tracks displaced slots.
            let mut swaps = std::collections::HashMap::with_capacity(amount * 2);
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = i + (rng.next_u64() % (length - i) as u64) as usize;
                let vj = swaps.get(&j).copied().unwrap_or(j);
                let vi = swaps.get(&i).copied().unwrap_or(i);
                out.push(vj);
                swaps.insert(j, vi);
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Lcg(9);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5..=5u64);
            assert_eq!(y, 5);
            let f = r.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Lcg(1);
        assert!(!(0..64).any(|_| r.gen_bool(0.0)));
        assert!((0..64).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut Lcg(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        use distributions::{Distribution, WeightedIndex};
        let d = WeightedIndex::new([0.0, 1.0, 0.0]).unwrap();
        let mut r = Lcg(5);
        for _ in 0..200 {
            assert_eq!(d.sample(&mut r), 1);
        }
        assert!(WeightedIndex::new([0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(Vec::<f64>::new().iter()).is_err());
    }

    #[test]
    fn index_sample_distinct() {
        let got = seq::index::sample(&mut Lcg(7), 100, 10);
        assert_eq!(got.len(), 10);
        let mut s = got.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
    }
}
