//! Minimal `parking_lot` shim: `Mutex` with panic-transparent (non-poisoning)
//! locking semantics, backed by `std::sync::Mutex`.

use std::sync::PoisonError;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Like `parking_lot`, never poisons: a panic while holding the lock
    /// leaves the data accessible.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn const_new_in_static() {
        static S: Mutex<u32> = Mutex::new(5);
        assert_eq!(*S.lock(), 5);
    }
}
