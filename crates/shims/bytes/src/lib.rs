//! Minimal `bytes` shim over `Vec<u8>` / `Arc<[u8]>`.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }
}

/// Zero-copy conversion into the backing vector (mirrors upstream).
impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Mutable access to the written bytes (mirrors upstream `BytesMut`);
/// encoders use it to patch length placeholders in place.
impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source; implemented for `&[u8]` so decoding
/// advances the slice in place.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write sink; implemented for [`BytesMut`] and `Vec<u8>`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_f32_le(0.75);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), 0.75);
        assert_eq!(r.remaining(), 3);
        r.advance(1);
        assert_eq!(r, b"yz");
    }

    #[test]
    fn bytes_slice_and_clone_share() {
        let b: Bytes = vec![1u8, 2, 3, 4].into();
        let c = b.clone();
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(c.to_vec(), vec![1, 2, 3, 4]);
    }
}
