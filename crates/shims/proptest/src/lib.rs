//! Minimal `proptest` shim.
//!
//! The [`proptest!`] macro expands each property into a plain `#[test]`
//! that samples its strategies `cases` times from a deterministic
//! per-test RNG (seeded from the test's name, so failures reproduce).
//! No shrinking — a failing case panics with the generated inputs left in
//! the assertion message.
//!
//! Supported strategy surface: integer and float ranges, `prop::bool::ANY`,
//! tuples up to arity 4, `Just`, `prop::collection::{vec, btree_set}`.

use std::ops::Range;

/// Deterministic generator for property inputs (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5851_f42d_4c95_7f2d,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. (Upstream proptest's `Strategy` also carries
/// shrinking; the shim only generates.)
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

pub mod prop {
    pub mod bool {
        use crate::{Strategy, TestRng};

        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniform boolean strategy (`prop::bool::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::collections::BTreeSet;
        use std::ops::Range;

        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `Vec` of `size.start..size.end` elements.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.clone().generate(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        #[derive(Debug, Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `BTreeSet` with *up to* `size.end - 1` elements (duplicates
        /// collapse, as in upstream).
        pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy { element, size }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let len = self.size.clone().generate(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// FNV-1a of the test name: per-test deterministic seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])+
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $crate::__proptest_fns! { config = ($cfg); $(
            $(#[$meta])+
            fn $name ( $($arg in $strat),+ ) $body
        )+ }
    };
    // Without a config header.
    (
        $(
            $(#[$meta:meta])+
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $(
            $(#[$meta])+
            fn $name ( $($arg in $strat),+ ) $body
        )+ }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])+
            fn $name:ident ( $($arg:ident in $strat:expr),+ ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases as u64 {
                    let mut prop_rng = $crate::TestRng::new(seed ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d));
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut prop_rng);
                    )+
                    $body
                }
            }
        )+
    };
}

/// `prop_assert!` — plain assert (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 3u32..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn collections_and_tuples(
            xs in prop::collection::vec((0u8..5, prop::bool::ANY), 0..20),
            set in prop::collection::btree_set(0u64..40, 0..10),
        ) {
            prop_assert!(xs.len() < 20);
            prop_assert!(set.len() < 10);
            for (n, _flag) in xs {
                prop_assert!(n < 5);
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::new(crate::seed_for("x"));
        let mut b = crate::TestRng::new(crate::seed_for("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
