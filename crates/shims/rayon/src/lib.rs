//! Minimal `rayon` shim backed by `std::thread::scope`.
//!
//! Work is split into one contiguous chunk per worker, so `collect` keeps
//! input order and every combining operation is deterministic regardless of
//! the worker count. The worker count comes from, in priority order: the
//! innermost [`ThreadPool::install`] on the current thread, the
//! `RAYON_NUM_THREADS` environment variable, then
//! `std::thread::available_parallelism()`.
//!
//! Supported surface: [`join`], `par_iter()` / `par_iter_mut()` on slices
//! and `Vec`, `into_par_iter()` on `Vec` and `Range<usize>`, with the
//! `map` / `for_each` / `sum` / `collect` adapters.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_OVERRIDE.with(|c| c.get()) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error type for [`ThreadPoolBuilder::build`] (shim: infallible).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or(0),
        })
    }
}

/// A "pool" is just a worker-count override; threads are scoped per call.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's worker count as the ambient parallelism.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let n = if self.num_threads == 0 {
            None
        } else {
            Some(self.num_threads)
        };
        let prev = POOL_OVERRIDE.with(|c| c.replace(n));
        let out = f();
        POOL_OVERRIDE.with(|c| c.set(prev));
        out
    }
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// Splits `len` into at most `workers` contiguous chunk ranges.
fn chunk_ranges(len: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.clamp(1, len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        if size == 0 {
            break;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Runs `work` over each chunk range on its own scoped thread; returns the
/// per-chunk outputs in chunk order.
fn run_chunked<T: Send, W>(len: usize, work: W) -> Vec<T>
where
    W: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(len, current_num_threads());
    if ranges.len() <= 1 {
        return ranges.into_iter().map(work).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(|| work(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    })
}

pub mod iter {
    use super::run_chunked;
    use std::ops::Range;

    /// Order-preserving parallel pipeline over an indexable source.
    /// `Sync` because the source is shared by reference across the workers.
    pub trait ParallelIterator: Sized + Sync {
        type Item: Send;

        /// Materializes the items for the index sub-range `range`.
        fn produce(&self, range: Range<usize>) -> Vec<Self::Item>;

        /// Total number of items.
        fn p_len(&self) -> usize;

        fn map<F, R>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Item) -> R + Sync + Send,
            R: Send,
        {
            Map { base: self, f }
        }

        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send,
        {
            let len = self.p_len();
            run_chunked(len, |r| {
                for item in self.produce(r) {
                    f(item);
                }
            });
        }

        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
        {
            let len = self.p_len();
            run_chunked(len, |r| self.produce(r).into_iter().sum::<S>())
                .into_iter()
                .sum()
        }

        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_par_iter(self)
        }
    }

    /// Targets for [`ParallelIterator::collect`].
    pub trait FromParallelIterator<T: Send>: Sized {
        fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self {
            let len = par.p_len();
            let chunks = run_chunked(len, |r| par.produce(r));
            let mut out = Vec::with_capacity(len);
            for chunk in chunks {
                out.extend(chunk);
            }
            out
        }
    }

    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, F, R> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        F: Fn(B::Item) -> R + Sync + Send,
        R: Send,
    {
        type Item = R;

        fn produce(&self, range: Range<usize>) -> Vec<R> {
            self.base.produce(range).into_iter().map(&self.f).collect()
        }

        fn p_len(&self) -> usize {
            self.base.p_len()
        }
    }

    /// `.par_iter()` over a shared slice.
    pub struct ParIter<'a, T: Sync> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
        type Item = &'a T;

        fn produce(&self, range: Range<usize>) -> Vec<&'a T> {
            self.slice[range].iter().collect()
        }

        fn p_len(&self) -> usize {
            self.slice.len()
        }
    }

    /// `.into_par_iter()` over owned items.
    pub struct IntoParIter<T: Send> {
        items: std::sync::Mutex<Vec<Option<T>>>,
    }

    impl<T: Send> ParallelIterator for IntoParIter<T> {
        type Item = T;

        fn produce(&self, range: Range<usize>) -> Vec<T> {
            let mut guard = self.items.lock().expect("no poisoned producers");
            guard[range]
                .iter_mut()
                .map(|slot| slot.take().expect("item consumed twice"))
                .collect()
        }

        fn p_len(&self) -> usize {
            self.items.lock().expect("no poisoned producers").len()
        }
    }

    /// `(a..b).into_par_iter()`.
    pub struct RangeParIter {
        range: Range<usize>,
    }

    impl ParallelIterator for RangeParIter {
        type Item = usize;

        fn produce(&self, range: Range<usize>) -> Vec<usize> {
            (self.range.start + range.start..self.range.start + range.end).collect()
        }

        fn p_len(&self) -> usize {
            self.range.len()
        }
    }

    pub trait IntoParallelIterator {
        type Iter: ParallelIterator<Item = Self::Item>;
        type Item: Send;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = IntoParIter<T>;
        type Item = T;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter {
                items: std::sync::Mutex::new(self.into_iter().map(Some).collect()),
            }
        }
    }

    impl IntoParallelIterator for Range<usize> {
        type Iter = RangeParIter;
        type Item = usize;
        fn into_par_iter(self) -> RangeParIter {
            RangeParIter { range: self }
        }
    }

    pub trait IntoParallelRefIterator<'a> {
        type Iter: ParallelIterator<Item = Self::Item>;
        type Item: Send + 'a;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = ParIter<'a, T>;
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = ParIter<'a, T>;
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }
}

/// Runs `f(index)` for every index in `0..len` across the ambient worker
/// count, in contiguous chunks. Not part of upstream rayon's API, but the
/// natural primitive for index-addressed parallel phases (and what the
/// simulation engine uses); exposed so callers need no unsafe sharding.
pub fn for_each_index<F>(len: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    run_chunked(len, |r| {
        for i in r {
            f(i);
        }
    });
}

/// Maps every index in `0..len` to a value, in parallel, preserving order.
pub fn map_indices<T: Send, F>(len: usize, f: F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync,
{
    let chunks = run_chunked(len, |r| r.map(&f).collect::<Vec<T>>());
    let mut out = Vec::with_capacity(len);
    for c in chunks {
        out.extend(c);
    }
    out
}

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn par_map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_vec_and_range() {
        let v: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 1, 1]);
        let sq: Vec<usize> = (3..7).into_par_iter().map(|i| i * i).collect();
        assert_eq!(sq, vec![9, 16, 25, 36]);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 1));
        let pool3 = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool3.install(|| assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn map_indices_matches_sequential() {
        let got = map_indices(1000, |i| i * 3);
        assert_eq!(got, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sum_and_for_each() {
        let xs: Vec<u64> = (1..=100).collect();
        let s: u64 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(s, 5050);
        let counter = std::sync::atomic::AtomicUsize::new(0);
        xs.par_iter().for_each(|_| {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(counter.into_inner(), 100);
    }
}
