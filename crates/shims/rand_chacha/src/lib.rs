//! `rand_chacha` shim: a genuine ChaCha8 keystream generator.
//!
//! Implements the ChaCha quarter-round/block function (RFC 8439 layout, 8
//! rounds) so the generator has the real cipher's statistical quality and a
//! 2^64-block period. Not bit-compatible with upstream `rand_chacha`'s
//! stream (word order differs), but fully deterministic.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// ChaCha with 8 rounds, seeded by a 256-bit key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, 64-bit counter, 64-bit stream id.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 = exhausted.
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buf
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }

    /// Selects one of 2^64 independent keystreams for the same key.
    pub fn set_stream(&mut self, stream: u64) {
        self.state[14] = stream as u32;
        self.state[15] = (stream >> 32) as u32;
        self.state[12] = 0;
        self.state[13] = 0;
        self.idx = 16;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        Self {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(va, (0..100).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn streams_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        b.set_stream(7);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn words_look_uniform() {
        // Crude sanity: bit balance over 64k words within 2%.
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let ones: u32 = (0..65536).map(|_| r.next_u32().count_ones()).sum();
        let expected = 65536 * 16;
        assert!((ones as i64 - expected as i64).unsigned_abs() < expected as u64 / 50);
    }
}
