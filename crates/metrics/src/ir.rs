//! Information-retrieval metrics: precision, recall and F1-Score (paper §IV-C).
//!
//! For a news item, with `I` the set of interested users and `R` the set of
//! reached users (users that received the item, excluding its source):
//!
//! ```text
//! precision = |I ∩ R| / |R|        (accuracy: did we spam anyone?)
//! recall    = |I ∩ R| / |I|        (completeness: did we miss anyone?)
//! F1        = 2·p·r / (p + r)      (harmonic mean)
//! ```
//!
//! The paper plots averages over all disseminated items; [`IrAggregate`]
//! supports both *micro* averaging (pooling counts, used for headline
//! numbers) and *macro* averaging (mean of per-item scores, used in the
//! per-item breakdowns of Figs. 10–11).

use serde::{Deserialize, Serialize};

/// Raw dissemination outcome for one news item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ItemOutcome {
    /// Number of users interested in the item (would click *like*).
    pub interested: usize,
    /// Number of users that received the item (excluding the source).
    pub reached: usize,
    /// Number of interested users among the reached ones.
    pub hits: usize,
}

impl ItemOutcome {
    /// Builds an outcome, checking the IR invariants in debug builds.
    pub fn new(interested: usize, reached: usize, hits: usize) -> Self {
        debug_assert!(hits <= reached, "hits cannot exceed reached");
        debug_assert!(hits <= interested, "hits cannot exceed interested");
        Self {
            interested,
            reached,
            hits,
        }
    }

    /// Precision of this item's dissemination; 0 when nothing was reached.
    pub fn precision(&self) -> f64 {
        ratio(self.hits, self.reached)
    }

    /// Recall of this item's dissemination; 0 when nobody is interested.
    pub fn recall(&self) -> f64 {
        ratio(self.hits, self.interested)
    }

    /// F1-Score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        f1(self.precision(), self.recall())
    }

    /// Scores bundle for this single item.
    pub fn scores(&self) -> IrScores {
        IrScores {
            precision: self.precision(),
            recall: self.recall(),
            f1: self.f1(),
        }
    }
}

/// A precision/recall/F1 triple.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IrScores {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl IrScores {
    /// Builds the triple from precision and recall, deriving F1.
    pub fn from_pr(precision: f64, recall: f64) -> Self {
        Self {
            precision,
            recall,
            f1: f1(precision, recall),
        }
    }
}

/// Accumulates [`ItemOutcome`]s over a workload.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IrAggregate {
    outcomes: Vec<ItemOutcome>,
}

impl IrAggregate {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the outcome of one item's dissemination.
    pub fn push(&mut self, outcome: ItemOutcome) {
        self.outcomes.push(outcome);
    }

    /// Number of items recorded.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// All recorded outcomes, in insertion order.
    pub fn outcomes(&self) -> &[ItemOutcome] {
        &self.outcomes
    }

    /// Micro-averaged scores: counts are pooled across items before dividing,
    /// so items reaching many users weigh proportionally more. This matches
    /// the headline precision/recall numbers of the paper's tables.
    pub fn micro(&self) -> IrScores {
        let hits: usize = self.outcomes.iter().map(|o| o.hits).sum();
        let reached: usize = self.outcomes.iter().map(|o| o.reached).sum();
        let interested: usize = self.outcomes.iter().map(|o| o.interested).sum();
        let precision = ratio(hits, reached);
        let recall = ratio(hits, interested);
        IrScores {
            precision,
            recall,
            f1: f1(precision, recall),
        }
    }

    /// Macro-averaged scores: unweighted mean of per-item precision/recall.
    /// Items that reached nobody contribute precision 0, matching the paper's
    /// treatment of items lost by the network.
    pub fn macro_avg(&self) -> IrScores {
        if self.outcomes.is_empty() {
            return IrScores::default();
        }
        let n = self.outcomes.len() as f64;
        let precision = self.outcomes.iter().map(|o| o.precision()).sum::<f64>() / n;
        let recall = self.outcomes.iter().map(|o| o.recall()).sum::<f64>() / n;
        IrScores {
            precision,
            recall,
            f1: f1(precision, recall),
        }
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &IrAggregate) {
        self.outcomes.extend_from_slice(&other.outcomes);
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Harmonic mean of precision and recall; 0 when both are 0.
pub fn f1(precision: f64, recall: f64) -> f64 {
    let s = precision + recall;
    if s <= 0.0 {
        0.0
    } else {
        2.0 * precision * recall / s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_dissemination() {
        let o = ItemOutcome::new(10, 10, 10);
        assert_eq!(o.precision(), 1.0);
        assert_eq!(o.recall(), 1.0);
        assert_eq!(o.f1(), 1.0);
    }

    #[test]
    fn flooding_has_low_precision_full_recall() {
        // 100 users reached, only 35 interested: precision = like rate.
        let o = ItemOutcome::new(35, 100, 35);
        assert!((o.precision() - 0.35).abs() < 1e-12);
        assert_eq!(o.recall(), 1.0);
    }

    #[test]
    fn unreached_item_scores_zero() {
        let o = ItemOutcome::new(12, 0, 0);
        assert_eq!(o.precision(), 0.0);
        assert_eq!(o.recall(), 0.0);
        assert_eq!(o.f1(), 0.0);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let s = IrScores::from_pr(0.5, 1.0);
        assert!((s.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn micro_pools_counts() {
        let mut agg = IrAggregate::new();
        agg.push(ItemOutcome::new(10, 20, 10)); // p=0.5 r=1.0
        agg.push(ItemOutcome::new(10, 0, 0)); // lost item
        let micro = agg.micro();
        assert!((micro.precision - 0.5).abs() < 1e-12);
        assert!((micro.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn macro_weighs_items_equally() {
        let mut agg = IrAggregate::new();
        agg.push(ItemOutcome::new(10, 20, 10)); // p=0.5 r=1.0
        agg.push(ItemOutcome::new(10, 10, 10)); // p=1.0 r=1.0
        let mac = agg.macro_avg();
        assert!((mac.precision - 0.75).abs() < 1e-12);
        assert!((mac.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = IrAggregate::new();
        a.push(ItemOutcome::new(1, 1, 1));
        let mut b = IrAggregate::new();
        b.push(ItemOutcome::new(2, 2, 2));
        a.merge(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_aggregate_is_zero() {
        let agg = IrAggregate::new();
        assert_eq!(agg.micro(), IrScores::default());
        assert_eq!(agg.macro_avg(), IrScores::default());
    }
}
