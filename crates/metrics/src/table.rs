//! Minimal ASCII table renderer for the paper's tables (III–VI).

use serde::{Deserialize, Serialize};

/// A simple text table with a header row and aligned columns.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-literal rows.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with `|`-separated aligned columns and a rule under the header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(&widths) {
                line.push_str(&format!(" {cell:>w$} |", w = w));
            }
            line
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let rule_len = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimal places — the paper's table precision.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a message count the way the paper does (e.g. `4.6k`, `1.1M`).
pub fn human_count(x: f64) -> String {
    if x >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("Demo", &["Algorithm", "F1"]);
        t.row_str(&["WhatsUp", "0.60"]);
        t.row_str(&["Gossip", "0.51"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("WhatsUp"));
        let lines: Vec<&str> = s.lines().collect();
        // header + rule + 2 rows + title
        assert_eq!(lines.len(), 5);
        // all data lines same width
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row_str(&["only-one"]);
    }

    #[test]
    fn human_counts() {
        assert_eq!(human_count(512.0), "512");
        assert_eq!(human_count(4_600.0), "4.6k");
        assert_eq!(human_count(1_100_000.0), "1.1M");
    }

    #[test]
    fn f2_rounds() {
        assert_eq!(f2(0.567), "0.57");
    }
}
