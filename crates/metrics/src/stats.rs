//! Scalar statistics used throughout the experiment harnesses.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Linear-interpolated percentile (`q` in `[0, 100]`) of an unsorted slice.
/// Returns 0 for an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let q = q.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Five-number style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub p50: f64,
    pub p95: f64,
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample; all fields are 0 for an empty slice.
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self::default();
        }
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            count: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min,
            p50: percentile(xs, 50.0),
            p95: percentile(xs, 95.0),
            max,
        }
    }
}

/// Online mean/variance accumulator (Welford). Useful in hot loops where
/// materializing a `Vec<f64>` per series would churn the allocator.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1); 0 for fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        *self = Welford { n, mean, m2 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std-dev of this classic dataset is sqrt(32/7).
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 3.0, 2.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.p50, 2.0);
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [0.5, 1.5, 2.5, -3.0, 10.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.std_dev() - std_dev(&xs)).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        let mut a = Welford::new();
        xs.iter().for_each(|&x| a.push(x));
        let mut b = Welford::new();
        ys.iter().for_each(|&y| b.push(y));
        a.merge(&b);
        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        assert!((a.mean() - mean(&all)).abs() < 1e-12);
        assert!((a.std_dev() - std_dev(&all)).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn percentile_is_bounded(xs in prop::collection::vec(-1e6f64..1e6, 1..100), q in 0.0f64..100.0) {
            let p = percentile(&xs, q);
            let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p >= min - 1e-9 && p <= max + 1e-9);
        }

        #[test]
        fn welford_merge_any_split(xs in prop::collection::vec(-1e3f64..1e3, 2..60), split in 0usize..60) {
            let split = split.min(xs.len());
            let mut a = Welford::new();
            xs[..split].iter().for_each(|&x| a.push(x));
            let mut b = Welford::new();
            xs[split..].iter().for_each(|&x| b.push(x));
            a.merge(&b);
            prop_assert!((a.mean() - mean(&xs)).abs() < 1e-6);
            prop_assert!((a.std_dev() - std_dev(&xs)).abs() < 1e-6);
        }
    }
}
