//! Evaluation metrics for the WhatsUp reproduction.
//!
//! This crate provides the *user metrics* and *system metrics* of the paper
//! (§IV-C): precision, recall and F1-Score per news item and aggregated over a
//! workload, plus the statistical plumbing used by every experiment harness —
//! histograms, percentile summaries, x/y series for the figures, and ASCII
//! table rendering for the tables.
//!
//! Everything here is plain data with no protocol knowledge, so it is reused
//! by the simulator, the network runtimes and the benchmark harnesses alike.

pub mod cycles;
pub mod hist;
pub mod ir;
pub mod series;
pub mod stats;
pub mod table;

pub use cycles::{CycleSeries, CycleStats, RecoveryMetrics};
pub use hist::Histogram;
pub use ir::{IrAggregate, IrScores, ItemOutcome};
pub use series::{Series, SeriesSet};
pub use stats::{mean, percentile, std_dev, Summary};
pub use table::TextTable;
