//! Named x/y series — the data behind every figure the harnesses regenerate.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One plottable curve: a label plus `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Series {
    pub label: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Maximum y value, or `None` for an empty series.
    pub fn max_y(&self) -> Option<f64> {
        self.points.iter().map(|&(_, y)| y).fold(None, |acc, y| {
            Some(match acc {
                None => y,
                Some(m) => m.max(y),
            })
        })
    }

    /// The x at which y is maximal (first in case of ties).
    pub fn argmax(&self) -> Option<(f64, f64)> {
        let mut best: Option<(f64, f64)> = None;
        for &(x, y) in &self.points {
            match best {
                Some((_, by)) if y <= by => {}
                _ => best = Some((x, y)),
            }
        }
        best
    }

    /// Linear interpolation of y at `x`; clamps outside the x-range.
    /// Points must be pushed in increasing x order.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        if x <= self.points[0].0 {
            return Some(self.points[0].1);
        }
        if x >= self.points[self.points.len() - 1].0 {
            return Some(self.points[self.points.len() - 1].1);
        }
        for w in self.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if x >= x0 && x <= x1 {
                if x1 == x0 {
                    return Some(y0);
                }
                let t = (x - x0) / (x1 - x0);
                return Some(y0 * (1.0 - t) + y1 * t);
            }
        }
        None
    }
}

/// A figure: a set of curves sharing axes, renderable as aligned text columns
/// (the format the paper's gnuplot data files used).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SeriesSet {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
}

impl SeriesSet {
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    pub fn get(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders the set as a column-aligned table: one x column (union of all
    /// series' x values in order) and one column per series.
    pub fn render(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN x in series"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let mut header = format!("{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(header, " {:>16}", s.label);
        }
        let _ = writeln!(out, "{header}");
        for &x in &xs {
            let mut row = format!("{x:>12.3}");
            for s in &self.series {
                let cell = s
                    .points
                    .iter()
                    .find(|&&(px, _)| (px - x).abs() < 1e-12)
                    .map(|&(_, y)| format!("{y:.4}"))
                    .unwrap_or_else(|| "-".to_string());
                let _ = write!(row, " {cell:>16}");
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Series {
        let mut s = Series::new("f1");
        s.push(1.0, 0.2);
        s.push(2.0, 0.6);
        s.push(3.0, 0.4);
        s
    }

    #[test]
    fn max_and_argmax() {
        let s = sample();
        assert_eq!(s.max_y(), Some(0.6));
        assert_eq!(s.argmax(), Some((2.0, 0.6)));
        assert_eq!(Series::new("e").max_y(), None);
    }

    #[test]
    fn interpolation() {
        let s = sample();
        assert_eq!(s.interpolate(1.5), Some(0.4));
        assert_eq!(s.interpolate(0.0), Some(0.2)); // clamp low
        assert_eq!(s.interpolate(9.0), Some(0.4)); // clamp high
        assert_eq!(Series::new("e").interpolate(1.0), None);
    }

    #[test]
    fn render_aligns_multiple_series() {
        let mut set = SeriesSet::new("Fig", "fanout", "F1");
        set.add(sample());
        let mut s2 = Series::new("recall");
        s2.push(1.0, 0.9);
        s2.push(4.0, 1.0);
        set.add(s2);
        let text = set.render();
        assert!(text.contains("# Fig"));
        assert!(text.contains("f1"));
        assert!(text.contains("recall"));
        // x=4.0 exists only in series 2; series 1 renders "-".
        let line4 = text
            .lines()
            .find(|l| l.trim_start().starts_with("4.000"))
            .unwrap();
        assert!(line4.contains('-'));
    }

    #[test]
    fn get_by_label() {
        let mut set = SeriesSet::new("t", "x", "y");
        set.add(sample());
        assert!(set.get("f1").is_some());
        assert!(set.get("nope").is_none());
    }
}
