//! Fixed-bin histograms for the distribution figures (Tables IV, Figs. 6, 10, 11).

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with uniformly sized bins.
///
/// Out-of-range samples are clamped into the first/last bin so that totals
/// are conserved (the paper's popularity/sociability axes are bounded and we
/// never want to silently drop samples).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` bins covering `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of one bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Index of the bin a value falls into (clamped).
    pub fn bin_of(&self, x: f64) -> usize {
        if x <= self.lo {
            return 0;
        }
        let idx = ((x - self.lo) / self.bin_width()) as usize;
        idx.min(self.counts.len() - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        let idx = self.bin_of(x);
        self.counts[idx] += 1;
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, x: f64, n: u64) {
        let idx = self.bin_of(x);
        self.counts[idx] += n;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Center of bin `i` (useful as plot x-coordinate).
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Fraction of samples in each bin (empty histogram ⇒ all zeros).
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram lo mismatch");
        assert_eq!(self.hi, other.hi, "histogram hi mismatch");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram bins mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Per-bin mean of a y-value keyed by an x-value — the "recall vs popularity"
/// (Fig. 10) and "F1 vs sociability" (Fig. 11) shape: bucket items/users by x
/// and average their y within each bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedMean {
    lo: f64,
    hi: f64,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl BinnedMean {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && lo < hi);
        Self {
            lo,
            hi,
            sums: vec![0.0; bins],
            counts: vec![0; bins],
        }
    }

    fn bin_of(&self, x: f64) -> usize {
        if x <= self.lo {
            return 0;
        }
        let w = (self.hi - self.lo) / self.sums.len() as f64;
        (((x - self.lo) / w) as usize).min(self.sums.len() - 1)
    }

    /// Records a `(x, y)` observation.
    pub fn record(&mut self, x: f64, y: f64) {
        let i = self.bin_of(x);
        self.sums[i] += y;
        self.counts[i] += 1;
    }

    /// `(bin center, mean y, samples)` for every non-empty bin.
    pub fn rows(&self) -> Vec<(f64, f64, u64)> {
        let w = (self.hi - self.lo) / self.sums.len() as f64;
        self.sums
            .iter()
            .zip(&self.counts)
            .enumerate()
            .filter(|(_, (_, &c))| c > 0)
            .map(|(i, (&s, &c))| (self.lo + (i as f64 + 0.5) * w, s / c as f64, c))
            .collect()
    }

    /// Fraction of all samples per bin (the background distribution curves in
    /// Figs. 10–11).
    pub fn distribution(&self) -> Vec<(f64, f64)> {
        let total: u64 = self.counts.iter().sum();
        let w = (self.hi - self.lo) / self.sums.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let frac = if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                };
                (self.lo + (i as f64 + 0.5) * w, frac)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn records_into_correct_bin() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.record(0.05);
        h.record(0.95);
        h.record(0.5);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(7.0);
        h.record(1.0); // hi is exclusive; clamps to last bin
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 2);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        a.record(0.1);
        let mut b = Histogram::new(0.0, 1.0, 2);
        b.record(0.9);
        b.record(0.8);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 2]);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_geometry_mismatch() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let b = Histogram::new(0.0, 2.0, 2);
        a.merge(&b);
    }

    #[test]
    fn binned_mean_rows() {
        let mut bm = BinnedMean::new(0.0, 1.0, 2);
        bm.record(0.1, 1.0);
        bm.record(0.2, 3.0);
        bm.record(0.9, 10.0);
        let rows = bm.rows();
        assert_eq!(rows.len(), 2);
        assert!((rows[0].1 - 2.0).abs() < 1e-12);
        assert_eq!(rows[0].2, 2);
        assert!((rows[1].1 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn binned_mean_distribution_sums_to_one() {
        let mut bm = BinnedMean::new(0.0, 1.0, 4);
        for i in 0..8 {
            bm.record(i as f64 / 8.0, 0.0);
        }
        let total: f64 = bm.distribution().iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn totals_conserved(samples in prop::collection::vec(-2.0f64..3.0, 0..200)) {
            let mut h = Histogram::new(0.0, 1.0, 7);
            for &s in &samples {
                h.record(s);
            }
            prop_assert_eq!(h.total(), samples.len() as u64);
        }

        #[test]
        fn bin_of_in_range(x in -1e3f64..1e3) {
            let h = Histogram::new(-10.0, 10.0, 13);
            prop_assert!(h.bin_of(x) < 13);
        }
    }
}
