//! Per-cycle measurement series and the windowed/recovery aggregates
//! derived from them.
//!
//! The simulator's dynamic scenarios (crash waves, partition windows,
//! flash crowds) are invisible in a single end-of-run aggregate; news
//! recommendation is a *temporal* problem. A [`CycleSeries`] is the
//! time-resolved counterpart: one [`CycleStats`] row per gossip cycle,
//! carrying the raw counters everything else is derived from — first
//! receptions, hits, ground-truth interest at publication, message
//! traffic, population. Because every epidemic completes within its
//! publication cycle, pooling the counters of one cycle yields that
//! cycle's exact micro-averaged precision/recall, and pooling a window of
//! cycles yields the window's aggregate.
//!
//! [`CycleSeries::recovery`] turns the series into per-event recovery
//! metrics: given an anchor cycle (a crash wave firing, a partition
//! closing) and a pre-event baseline span, it reports how deep recall
//! dipped, when (if ever) it recovered to the baseline, and how many
//! messages the network spent getting there.
//!
//! Everything here is integer sums and ratios of them, folded in a fixed
//! order — a series built from deterministic counters is itself
//! bit-deterministic, which is what lets the engine promise bit-identical
//! time series across shard counts and transports.

use crate::ir::IrScores;
use serde::{Deserialize, Serialize};

/// Raw measurement counters of one gossip cycle (or a pooled window of
/// cycles — the counters are additive, except `live_nodes`, which pooling
/// takes from the *last* cycle of the window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleStats {
    /// First receptions among this cycle's published items (every item's
    /// epidemic completes within its publication cycle).
    pub first_receptions: u64,
    /// Liked first receptions.
    pub hits: u64,
    /// Ground-truth interested nodes (excluding sources) summed over the
    /// items published this cycle.
    pub interested: u64,
    /// News (dissemination) messages emitted this cycle, lost ones
    /// included.
    pub news_sent: u64,
    /// Gossip-layer (RPS + WUP) messages emitted this cycle.
    pub gossip_sent: u64,
    /// Population at the end of the cycle.
    pub live_nodes: u64,
    /// Nodes that crashed and rejoined fresh during the cycle.
    pub crashed: u64,
}

impl CycleStats {
    /// Adds another cycle's (or shard's) counters into this one.
    /// `live_nodes` sums too: shards report disjoint node ranges, so the
    /// fold across shards yields the population.
    pub fn merge(&mut self, other: &CycleStats) {
        self.first_receptions += other.first_receptions;
        self.hits += other.hits;
        self.interested += other.interested;
        self.news_sent += other.news_sent;
        self.gossip_sent += other.gossip_sent;
        self.live_nodes += other.live_nodes;
        self.crashed += other.crashed;
    }

    /// Micro-averaged precision/recall/F1 of the pooled counters.
    pub fn scores(&self) -> IrScores {
        let precision = ratio(self.hits, self.first_receptions);
        let recall = ratio(self.hits, self.interested);
        IrScores::from_pr(precision, recall)
    }

    /// Pooled recall, `None` when nothing was published (recall of an
    /// empty workload is undefined, not zero).
    pub fn recall(&self) -> Option<f64> {
        (self.interested > 0).then(|| ratio(self.hits, self.interested))
    }

    /// Pooled precision, `None` when nothing was received.
    pub fn precision(&self) -> Option<f64> {
        (self.first_receptions > 0).then(|| ratio(self.hits, self.first_receptions))
    }

    /// Total message traffic (news + gossip).
    pub fn messages(&self) -> u64 {
        self.news_sent + self.gossip_sent
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The per-cycle time series of one run: `cycles()[c]` holds cycle `c`'s
/// counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleSeries {
    cycles: Vec<CycleStats>,
}

impl CycleSeries {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the next cycle's folded counters.
    pub fn push(&mut self, stats: CycleStats) {
        self.cycles.push(stats);
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// All recorded cycles, index = cycle number.
    pub fn cycles(&self) -> &[CycleStats] {
        &self.cycles
    }

    /// Cycle `c`'s counters, if recorded.
    pub fn get(&self, cycle: u32) -> Option<&CycleStats> {
        self.cycles.get(cycle as usize)
    }

    /// Pools the counters of the half-open cycle window `[from, until)`
    /// (clamped to the recorded range). `live_nodes` is taken from the
    /// last cycle of the window — populations do not add up over time.
    pub fn pooled(&self, from: u32, until: u32) -> CycleStats {
        let until = (until as usize).min(self.cycles.len());
        let from = (from as usize).min(until);
        let mut pooled = CycleStats::default();
        for stats in &self.cycles[from..until] {
            pooled.merge(stats);
            pooled.live_nodes = stats.live_nodes;
        }
        pooled
    }

    /// Recovery metrics around an event at cycle `anchor`.
    ///
    /// The pre-event baseline is the pooled recall over the
    /// `baseline_cycles` cycles right before the anchor (cycles without
    /// publications contribute nothing). Scanning forward from the anchor,
    /// the dip is the lowest per-cycle recall seen before recovery, and
    /// recovery is the first cycle whose recall reaches the baseline
    /// again; cycles without publications cannot recover (recall is
    /// undefined there) but their message traffic still counts as spent.
    ///
    /// Returns `None` when the anchor lies outside the series or no
    /// publication precedes it (no baseline to recover to).
    pub fn recovery(&self, anchor: u32, baseline_cycles: u32) -> Option<RecoveryMetrics> {
        if (anchor as usize) >= self.cycles.len() {
            return None;
        }
        let base = self.pooled(anchor.saturating_sub(baseline_cycles), anchor);
        let baseline_recall = base.recall()?;
        let mut dip_recall = baseline_recall;
        let mut dip_cycle = anchor;
        let mut recovered_at = None;
        let mut messages_spent = 0u64;
        for (c, stats) in self.cycles.iter().enumerate().skip(anchor as usize) {
            messages_spent += stats.messages();
            if let Some(r) = stats.recall() {
                if r < dip_recall {
                    dip_recall = r;
                    dip_cycle = c as u32;
                }
                if r >= baseline_recall {
                    recovered_at = Some(c as u32);
                    break;
                }
            }
        }
        Some(RecoveryMetrics {
            anchor,
            baseline_recall,
            dip_depth: baseline_recall - dip_recall,
            dip_cycle,
            recovered_at,
            messages_spent,
        })
    }
}

impl FromIterator<CycleStats> for CycleSeries {
    fn from_iter<I: IntoIterator<Item = CycleStats>>(iter: I) -> Self {
        Self {
            cycles: iter.into_iter().collect(),
        }
    }
}

/// How one event played out: dip depth, time to recover, messages spent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryMetrics {
    /// The event cycle the window is anchored to.
    pub anchor: u32,
    /// Pooled recall over the baseline cycles before the anchor.
    pub baseline_recall: f64,
    /// Baseline recall minus the lowest per-cycle recall seen before
    /// recovery (0 when recall never dipped below the baseline).
    pub dip_depth: f64,
    /// Cycle of that lowest recall (the anchor itself when no dip).
    pub dip_cycle: u32,
    /// First cycle at/after the anchor whose recall reached the baseline
    /// again; `None` when the run ended still below it.
    pub recovered_at: Option<u32>,
    /// Messages (news + gossip) sent from the anchor through the recovery
    /// cycle (or through the end of the run when it never recovered).
    pub messages_spent: u64,
}

impl RecoveryMetrics {
    /// Cycles from the anchor until recall was back at the baseline.
    pub fn time_to_recover(&self) -> Option<u32> {
        self.recovered_at.map(|c| c - self.anchor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(hits: u64, interested: u64, news: u64, gossip: u64) -> CycleStats {
        CycleStats {
            first_receptions: hits + 2,
            hits,
            interested,
            news_sent: news,
            gossip_sent: gossip,
            live_nodes: 100,
            crashed: 0,
        }
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = stats(5, 10, 20, 30);
        a.merge(&stats(3, 6, 10, 10));
        assert_eq!(a.hits, 8);
        assert_eq!(a.interested, 16);
        assert_eq!(a.messages(), 70);
        assert_eq!(a.live_nodes, 200, "shards report disjoint populations");
    }

    #[test]
    fn scores_pool_counts() {
        let s = stats(5, 10, 0, 0); // 7 received, 5 hits, 10 interested
        let scores = s.scores();
        assert!((scores.precision - 5.0 / 7.0).abs() < 1e-12);
        assert!((scores.recall - 0.5).abs() < 1e-12);
        assert_eq!(s.recall(), Some(0.5));
        assert_eq!(CycleStats::default().recall(), None);
        assert_eq!(CycleStats::default().precision(), None);
        assert_eq!(CycleStats::default().scores(), IrScores::default());
    }

    #[test]
    fn pooled_clamps_and_keeps_last_population() {
        let series: CycleSeries = [stats(1, 2, 5, 5), stats(3, 4, 5, 5), stats(0, 0, 1, 1)]
            .into_iter()
            .collect();
        let w = series.pooled(0, 2);
        assert_eq!(w.hits, 4);
        assert_eq!(w.interested, 6);
        assert_eq!(w.live_nodes, 100);
        // Clamped past the end; empty window is all-zero.
        assert_eq!(series.pooled(1, 99).hits, 3);
        assert_eq!(series.pooled(5, 9), CycleStats::default());
    }

    fn recall_series(recalls: &[Option<(u64, u64)>]) -> CycleSeries {
        // Each entry: Some((hits, interested)) or None for a quiet cycle.
        recalls
            .iter()
            .map(|r| match r {
                Some((h, i)) => CycleStats {
                    first_receptions: *h,
                    hits: *h,
                    interested: *i,
                    news_sent: 10,
                    gossip_sent: 10,
                    live_nodes: 50,
                    crashed: 0,
                },
                None => CycleStats {
                    gossip_sent: 10,
                    live_nodes: 50,
                    ..CycleStats::default()
                },
            })
            .collect()
    }

    #[test]
    fn recovery_finds_dip_and_return() {
        // Baseline recall 0.8 (cycles 0-1), dip to 0.2 at cycle 2, back to
        // 0.9 ≥ 0.8 at cycle 4.
        let series = recall_series(&[
            Some((8, 10)),
            Some((8, 10)),
            Some((2, 10)),
            Some((5, 10)),
            Some((9, 10)),
            Some((9, 10)),
        ]);
        let r = series.recovery(2, 2).expect("baseline exists");
        assert!((r.baseline_recall - 0.8).abs() < 1e-12);
        assert!((r.dip_depth - 0.6).abs() < 1e-12);
        assert_eq!(r.dip_cycle, 2);
        assert_eq!(r.recovered_at, Some(4));
        assert_eq!(r.time_to_recover(), Some(2));
        // Cycles 2, 3 and 4: 20 messages each.
        assert_eq!(r.messages_spent, 60);
    }

    #[test]
    fn recovery_may_never_happen() {
        let series = recall_series(&[Some((9, 10)), Some((1, 10)), Some((2, 10))]);
        let r = series.recovery(1, 1).expect("baseline exists");
        assert_eq!(r.recovered_at, None);
        assert_eq!(r.time_to_recover(), None);
        assert!((r.dip_depth - 0.8).abs() < 1e-12);
        assert_eq!(r.messages_spent, 40, "spent through the end of the run");
    }

    #[test]
    fn recovery_skips_quiet_cycles_but_counts_their_traffic() {
        let series = recall_series(&[Some((8, 10)), None, None, Some((8, 10))]);
        let r = series.recovery(1, 1).expect("baseline exists");
        assert_eq!(r.recovered_at, Some(3));
        assert_eq!(r.dip_depth, 0.0);
        assert_eq!(r.dip_cycle, 1, "no dip: the anchor stands in");
        // Two quiet cycles at 10 msgs + the recovery cycle at 20.
        assert_eq!(r.messages_spent, 40);
    }

    #[test]
    fn recovery_needs_a_baseline_and_an_in_range_anchor() {
        let series = recall_series(&[None, Some((5, 10))]);
        assert!(series.recovery(1, 1).is_none(), "quiet baseline window");
        assert!(series.recovery(9, 2).is_none(), "anchor past the end");
        assert!(CycleSeries::new().recovery(0, 1).is_none());
    }

    #[test]
    fn immediate_recovery_has_zero_dip() {
        let series = recall_series(&[Some((8, 10)), Some((9, 10))]);
        let r = series.recovery(1, 1).expect("baseline exists");
        assert_eq!(r.recovered_at, Some(1));
        assert_eq!(r.time_to_recover(), Some(0));
        assert_eq!(r.dip_depth, 0.0);
    }
}
