//! Parameter sweeps, parallelized with rayon.
//!
//! Fig. 3 alone is ~100 independent simulations (4 protocols × ~8 fanouts ×
//! 3 datasets); each run is deterministic, so sweeping in parallel changes
//! nothing but wall-clock time.

use crate::config::{Protocol, SimConfig};
use crate::record::SimReport;
use crate::runner::Runner;
use crate::scenario::Scenario;
use rayon::prelude::*;
use whatsup_datasets::Dataset;
use whatsup_metrics::{Series, SeriesSet};

/// Runs `protocol` at every fanout in `fanouts`, in parallel.
pub fn fanout_sweep(
    dataset: &Dataset,
    protocol: Protocol,
    fanouts: &[usize],
    cfg: &SimConfig,
) -> Vec<SimReport> {
    scenario_fanout_sweep(dataset, protocol, fanouts, cfg, &Scenario::from_config(cfg))
}

/// A fanout sweep under an explicit scenario (same workload, environment
/// and event timeline at every point).
pub fn scenario_fanout_sweep(
    dataset: &Dataset,
    protocol: Protocol,
    fanouts: &[usize],
    cfg: &SimConfig,
    scenario: &Scenario,
) -> Vec<SimReport> {
    fanouts
        .par_iter()
        .map(|&f| {
            Runner::new(dataset, protocol.with_fanout(f))
                .config(cfg.clone())
                .scenario(scenario.clone())
                .run()
        })
        .collect()
}

/// One cell of a shards × fanout grid sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Engine shard count the cell ran on (a pure execution knob — cells
    /// that differ only in `shards` carry identical reports).
    pub shards: usize,
    /// Fanout knob of the cell's protocol, when it has one.
    pub fanout: Option<usize>,
    pub report: SimReport,
}

/// Runs one scenario across a shards × fanout grid — the `whatsup-sim
/// sweep` subcommand's engine. Every cell routes through the same
/// [`Runner`] path as a single run; cells execute in parallel (each is
/// deterministic, so parallelism changes nothing but wall-clock time).
///
/// A protocol without a fanout knob ignores the fanout axis
/// ([`Protocol::with_fanout`] is the identity there), so every cell of a
/// row would be identical — callers should reject that combination up
/// front, as the CLI does.
pub fn scenario_grid_sweep(
    dataset: &Dataset,
    protocol: Protocol,
    shard_counts: &[usize],
    fanouts: &[usize],
    cfg: &SimConfig,
    scenario: &Scenario,
) -> Vec<SweepCell> {
    // An empty fanout axis means "the protocol's own knob, untouched".
    let protocols: Vec<Protocol> = if fanouts.is_empty() {
        vec![protocol]
    } else {
        fanouts.iter().map(|&f| protocol.with_fanout(f)).collect()
    };
    let jobs: Vec<(usize, Protocol)> = shard_counts
        .iter()
        .flat_map(|&s| protocols.iter().map(move |&p| (s, p)))
        .collect();
    jobs.par_iter()
        .map(|&(shards, p)| {
            let report = Runner::new(dataset, p)
                .config(cfg.clone())
                .scenario(scenario.clone())
                .shards(shards)
                .run();
            SweepCell {
                shards,
                fanout: report.fanout,
                report,
            }
        })
        .collect()
}

/// Runs several protocols at every fanout, in parallel over the full grid.
pub fn grid_sweep(
    dataset: &Dataset,
    protocols: &[Protocol],
    fanouts: &[usize],
    cfg: &SimConfig,
) -> Vec<SimReport> {
    let jobs: Vec<Protocol> = protocols
        .iter()
        .flat_map(|p| fanouts.iter().map(move |&f| p.with_fanout(f)))
        .collect();
    jobs.par_iter()
        .map(|&p| Runner::new(dataset, p).config(cfg.clone()).run())
        .collect()
}

/// F1 vs fanout curves (Figs. 3a–3c) from sweep reports.
pub fn f1_vs_fanout(reports: &[SimReport], title: impl Into<String>) -> SeriesSet {
    let mut set = SeriesSet::new(title, "fanout", "F1-Score");
    for report in reports {
        let Some(f) = report.fanout else { continue };
        let label = report.protocol.clone();
        if set.get(&label).is_none() {
            set.add(Series::new(label.clone()));
        }
        let series = set
            .series
            .iter_mut()
            .find(|s| s.label == label)
            .expect("just added");
        series.push(f as f64, report.scores().f1);
    }
    for s in &mut set.series {
        s.points
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("fanout is finite"));
    }
    set
}

/// F1 vs message-cost curves (Figs. 3d–3f): x = news messages per cycle per
/// node, y = F1.
pub fn f1_vs_messages(reports: &[SimReport], title: impl Into<String>) -> SeriesSet {
    let mut set = SeriesSet::new(title, "msgs/cycle/node", "F1-Score");
    for report in reports {
        let label = report.protocol.clone();
        if set.get(&label).is_none() {
            set.add(Series::new(label.clone()));
        }
        let series = set
            .series
            .iter_mut()
            .find(|s| s.label == label)
            .expect("just added");
        series.push(report.messages_per_cycle_per_node(), report.scores().f1);
    }
    for s in &mut set.series {
        s.points
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("cost is finite"));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::run_protocol;
    use whatsup_datasets::{survey, SurveyConfig};

    fn dataset() -> Dataset {
        survey::generate(&SurveyConfig::paper().scaled(0.1), 77)
    }

    fn cfg() -> SimConfig {
        SimConfig {
            cycles: 14,
            publish_from: 2,
            measure_from: 5,
            ..Default::default()
        }
    }

    #[test]
    fn sweep_returns_one_report_per_fanout() {
        let d = dataset();
        let reports = fanout_sweep(&d, Protocol::WhatsUp { f_like: 0 }, &[2, 4], &cfg());
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].fanout, Some(2));
        assert_eq!(reports[1].fanout, Some(4));
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let d = dataset();
        let par = fanout_sweep(&d, Protocol::Gossip { fanout: 0 }, &[2, 3], &cfg());
        let seq: Vec<SimReport> = [2usize, 3]
            .iter()
            .map(|&f| run_protocol(&d, Protocol::Gossip { fanout: f }, &cfg()))
            .collect();
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.scores(), b.scores());
        }
    }

    #[test]
    fn grid_sweep_covers_every_cell_and_shards_stay_invisible() {
        let d = dataset();
        let cells = scenario_grid_sweep(
            &d,
            Protocol::WhatsUp { f_like: 0 },
            &[1, 2],
            &[3, 5],
            &cfg(),
            &crate::scenario::Scenario::default(),
        );
        assert_eq!(cells.len(), 4);
        for (f, cell) in [3usize, 5, 3, 5].iter().zip(&cells) {
            assert_eq!(cell.fanout, Some(*f));
        }
        // Same fanout, different shard count → bit-identical report.
        assert_eq!(cells[0].report, cells[2].report);
        assert_eq!(cells[1].report, cells[3].report);
        assert_ne!(cells[0].report.scores(), cells[1].report.scores());
        // An empty fanout axis keeps the protocol's own knob.
        let own = scenario_grid_sweep(
            &d,
            Protocol::WhatsUp { f_like: 4 },
            &[1],
            &[],
            &cfg(),
            &crate::scenario::Scenario::default(),
        );
        assert_eq!(own.len(), 1);
        assert_eq!(own[0].fanout, Some(4));
    }

    #[test]
    fn series_are_sorted_and_labeled() {
        let d = dataset();
        let reports = grid_sweep(
            &d,
            &[
                Protocol::WhatsUp { f_like: 0 },
                Protocol::Gossip { fanout: 0 },
            ],
            &[4, 2],
            &cfg(),
        );
        let set = f1_vs_fanout(&reports, "test");
        assert_eq!(set.series.len(), 2);
        for s in &set.series {
            assert!(s.points.windows(2).all(|w| w[0].0 <= w[1].0));
            assert_eq!(s.points.len(), 2);
        }
        let msg_set = f1_vs_messages(&reports, "test");
        assert_eq!(msg_set.series.len(), 2);
    }
}
