//! The cycle-based simulation engine for node-based protocols.
//!
//! Methodology (paper §IV/§V): time is a sequence of gossip cycles. Each
//! cycle:
//!
//! 1. every node runs one RPS and one WUP exchange (requests and the
//!    matching responses are delivered within the cycle);
//! 2. the items scheduled for the cycle are published and each epidemic
//!    runs to completion (hop-ordered FIFO), which matches the paper's use
//!    of the gossip cycle as time unit — dissemination is fast relative to
//!    clustering dynamics.
//!
//! Message loss (§V-E) applies to every message of every protocol layer.
//! The engine is a pure function of `(dataset, protocol, config)`.

use crate::config::{Protocol, SimConfig};
use crate::oracle::Oracle;
use crate::record::{ItemRecord, NodeIr, SimReport};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, VecDeque};
use whatsup_core::{NewsItem, NodeId, Opinions, OutMessage, Payload, Profile, WhatsUpNode};
use whatsup_datasets::Dataset;
use whatsup_graph::Graph;

/// A running simulation of one node-based protocol over one dataset.
pub struct Simulation {
    protocol: Protocol,
    cfg: SimConfig,
    dataset_name: String,
    items: Vec<NewsItem>,
    /// Cached content hashes of `items` (hashing is string-heavy).
    item_ids: Vec<whatsup_core::ItemId>,
    sources: Vec<NodeId>,
    /// cycle → dataset item indices published that cycle.
    schedule: Vec<Vec<u32>>,
    nodes: Vec<WhatsUpNode>,
    oracle: Oracle,
    records: Vec<ItemRecord>,
    rng: ChaCha8Rng,
    cycle: u32,
    gossip_messages: u64,
    news_messages_all: u64,
    news_messages_measured: u64,
    /// Liked first receptions per node during the current cycle (Fig. 7c).
    liked_this_cycle: Vec<u32>,
    /// Per-node delivery counters over measured items (Fig. 11).
    per_node: Vec<NodeIr>,
    /// Scratch: per-item first-reception marks, reused across items.
    reached_scratch: Vec<bool>,
}

impl Simulation {
    /// Builds a simulation.
    ///
    /// # Panics
    /// Panics if `protocol` is one of the global engines (cascade, pub/sub,
    /// centralized — use [`crate::engines::run_protocol`]) or if the config
    /// is invalid.
    pub fn new(dataset: &Dataset, protocol: Protocol, cfg: SimConfig) -> Self {
        cfg.validate().expect("invalid simulation config");
        let params = cfg
            .build_params(&protocol)
            .expect("protocol does not run on the node engine");
        let n = dataset.n_users();
        let item_cycles = cfg.schedule(dataset.n_items());
        let mut schedule = vec![Vec::new(); cfg.cycles as usize];
        let mut items = Vec::with_capacity(dataset.n_items());
        let mut sources = Vec::with_capacity(dataset.n_items());
        let mut id_to_index = HashMap::with_capacity(dataset.n_items());
        for spec in &dataset.items {
            let cycle = item_cycles[spec.index as usize];
            let item = NewsItem::new(
                format!("{}-news-{}", dataset.name, spec.index),
                format!("topic-{}", spec.topic),
                format!("https://news.example/{}/{}", dataset.name, spec.index),
                spec.source,
                cycle,
            );
            id_to_index.insert(item.id(), spec.index);
            schedule[cycle as usize].push(spec.index);
            items.push(item);
            sources.push(spec.source);
        }
        assert_eq!(id_to_index.len(), items.len(), "item id (hash) collision");
        let item_ids: Vec<whatsup_core::ItemId> = items.iter().map(|i| i.id()).collect();

        let oracle = Oracle::new(dataset.likes.clone(), id_to_index);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut nodes: Vec<WhatsUpNode> =
            (0..n as NodeId).map(|id| WhatsUpNode::new(id, params.clone())).collect();
        // Bootstrap: every node learns `bootstrap_degree` random contacts
        // (empty profiles), split across both layers, as a stand-in for the
        // paper's bootstrap server.
        for id in 0..n {
            let mut contacts: Vec<NodeId> = Vec::with_capacity(cfg.bootstrap_degree);
            while contacts.len() < cfg.bootstrap_degree.min(n - 1) {
                let c = rng.gen_range(0..n) as NodeId;
                if c != id as NodeId && !contacts.contains(&c) {
                    contacts.push(c);
                }
            }
            let wup_take = (contacts.len() / 2).max(1);
            nodes[id].seed_views(
                contacts.iter().map(|&c| (c, Profile::new())),
                contacts.iter().take(wup_take).map(|&c| (c, Profile::new())),
            );
        }
        let records = dataset
            .items
            .iter()
            .map(|spec| ItemRecord {
                index: spec.index,
                published_at: item_cycles[spec.index as usize],
                measured: item_cycles[spec.index as usize] >= cfg.measure_from,
                ..ItemRecord::default()
            })
            .collect();
        Self {
            protocol,
            cfg,
            dataset_name: dataset.name.clone(),
            items,
            item_ids,
            sources,
            schedule,
            nodes,
            oracle,
            records,
            rng,
            cycle: 0,
            gossip_messages: 0,
            news_messages_all: 0,
            news_messages_measured: 0,
            liked_this_cycle: vec![0; n],
            per_node: vec![NodeIr::default(); n],
            reached_scratch: vec![false; n],
        }
    }

    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    pub fn current_cycle(&self) -> u32 {
        self.cycle
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    pub fn node(&self, id: NodeId) -> &WhatsUpNode {
        &self.nodes[id as usize]
    }

    /// Liked first receptions per node during the last completed cycle.
    pub fn liked_receptions_last_cycle(&self, id: NodeId) -> u32 {
        self.liked_this_cycle[id as usize]
    }

    /// Runs all remaining cycles and reports.
    pub fn run(mut self) -> SimReport {
        while self.cycle < self.cfg.cycles {
            self.step();
        }
        self.report()
    }

    /// Advances one cycle: gossip phase, then publications.
    pub fn step(&mut self) {
        assert!(self.cycle < self.cfg.cycles, "simulation already finished");
        let t = self.cycle;
        self.liked_this_cycle.iter_mut().for_each(|c| *c = 0);

        // --- Gossip phase -------------------------------------------------
        let mut queue: VecDeque<(NodeId, OutMessage)> = VecDeque::new();
        for id in 0..self.nodes.len() {
            for msg in self.nodes[id].on_cycle(t, &mut self.rng) {
                queue.push_back((id as NodeId, msg));
            }
        }
        while let Some((from, msg)) = queue.pop_front() {
            self.gossip_messages += 1;
            if self.lost() {
                continue;
            }
            let to = msg.to as usize;
            let replies =
                self.nodes[to].on_message(from, msg.payload, t, &self.oracle, &mut self.rng);
            for r in replies {
                debug_assert!(
                    !matches!(r.payload, Payload::News(_)),
                    "news cannot appear in the gossip phase"
                );
                queue.push_back((msg.to, r));
            }
        }

        // --- Churn phase ----------------------------------------------------
        // Each node crashes with probability `churn_per_cycle` and rejoins
        // immediately as a fresh instance: profile, views and seen-set are
        // lost; the newcomer cold-starts from a random alive contact
        // (§II-D/E — gossip overlays self-heal, profiles rebuild within a
        // window).
        if self.cfg.churn_per_cycle > 0.0 {
            let n = self.nodes.len();
            for id in 0..n {
                if self.rng.gen_bool(self.cfg.churn_per_cycle) {
                    self.reset_node(id as NodeId);
                }
            }
        }

        // --- Publication phase --------------------------------------------
        let indices = std::mem::take(&mut self.schedule[t as usize]);
        for index in indices {
            self.disseminate(index, t);
        }
        self.cycle += 1;
    }

    /// Crashes `id` and rejoins it fresh (cold start from a random contact).
    pub fn reset_node(&mut self, id: NodeId) {
        let params = self.cfg.build_params(&self.protocol).expect("node engine protocol");
        let mut fresh = WhatsUpNode::new(id, params);
        let contact = loop {
            let c = self.rng.gen_range(0..self.nodes.len());
            if c != id as usize {
                break c;
            }
        };
        fresh.cold_start(self.nodes[contact].views_snapshot(), &self.oracle);
        self.nodes[id as usize] = fresh;
    }

    /// Publishes one item and runs its epidemic to completion.
    fn disseminate(&mut self, index: u32, t: u32) {
        let item = self.items[index as usize].clone();
        let item_id = item.id();
        let source = self.sources[index as usize];
        let measured = self.records[index as usize].measured;

        // Ground truth at publication (excluding the source).
        let interested: Vec<NodeId> =
            self.oracle.interested(index).into_iter().filter(|&u| u != source).collect();
        {
            let rec = &mut self.records[index as usize];
            rec.interested = interested.len() as u32;
        }
        if measured {
            for &u in &interested {
                self.per_node[u as usize].interested += 1;
            }
        }

        self.reached_scratch.iter_mut().for_each(|b| *b = false);
        if self.reached_scratch.len() < self.nodes.len() {
            self.reached_scratch.resize(self.nodes.len(), false);
        }

        let mut queue: VecDeque<(NodeId, OutMessage)> = VecDeque::new();
        let out = self.nodes[source as usize].publish(&item, t, &mut self.rng);
        self.record_forwards(index, source, &out);
        out.into_iter().for_each(|m| queue.push_back((source, m)));

        while let Some((from, msg)) = queue.pop_front() {
            let Payload::News(news) = &msg.payload else {
                unreachable!("only news flows in the publication phase")
            };
            debug_assert_eq!(news.header.id, item_id);
            {
                let rec = &mut self.records[index as usize];
                rec.news_sent += 1;
            }
            self.news_messages_all += 1;
            if measured {
                self.news_messages_measured += 1;
            }
            if self.lost() {
                continue;
            }
            let to = msg.to;
            let first = !self.nodes[to as usize].has_seen(item_id);
            if first && to != source {
                let sender_liked = self.oracle.likes(from, item_id);
                let receiver_likes = self.oracle.likes(to, item_id);
                let hop = news.hops + 1;
                let rec = &mut self.records[index as usize];
                rec.reached += 1;
                rec.infection_hops.push((hop, sender_liked));
                if measured {
                    self.per_node[to as usize].received += 1;
                }
                if receiver_likes {
                    rec.hits += 1;
                    rec.dislikes_at_liked_reception.push(news.dislikes);
                    self.liked_this_cycle[to as usize] += 1;
                    if measured {
                        self.per_node[to as usize].hits += 1;
                    }
                }
            }
            let replies = self.nodes[to as usize].on_message(
                from,
                msg.payload,
                t,
                &self.oracle,
                &mut self.rng,
            );
            if !replies.is_empty() {
                self.record_forwards(index, to, &replies);
                replies.into_iter().for_each(|m| queue.push_back((to, m)));
            }
        }
    }

    /// Records one forwarding action (Fig. 6): hop = forwarder's path
    /// distance (= outgoing `hops` field), classified by its opinion.
    fn record_forwards(&mut self, index: u32, node: NodeId, out: &[OutMessage]) {
        let Some(Payload::News(first)) = out.first().map(|m| &m.payload) else {
            return;
        };
        let liked = self.oracle.likes(node, first.header.id);
        self.records[index as usize].forward_hops.push((first.hops, liked));
    }

    #[inline]
    fn lost(&mut self) -> bool {
        self.cfg.loss > 0.0 && self.rng.gen_bool(self.cfg.loss)
    }

    /// Registers a node joining mid-run (§V-C): interests mirror
    /// `reference`, views inherited from a random contact, cold-start
    /// profile from the contact's RPS view (§II-D).
    pub fn add_joining_node(&mut self, reference: NodeId) -> NodeId {
        let id = self.oracle.add_clone_of(reference);
        let params =
            self.cfg.build_params(&self.protocol).expect("node engine protocol");
        let mut node = WhatsUpNode::new(id, params);
        let contact = self.rng.gen_range(0..self.nodes.len());
        node.cold_start(self.nodes[contact].views_snapshot(), &self.oracle);
        self.nodes.push(node);
        self.liked_this_cycle.push(0);
        self.per_node.push(NodeIr::default());
        self.reached_scratch.push(false);
        id
    }

    /// Swaps the ground-truth interests of two nodes (§V-C).
    pub fn swap_interests(&mut self, a: NodeId, b: NodeId) {
        self.oracle.swap_interests(a, b);
    }

    /// Mean live similarity between `id`'s profile and the *current*
    /// profiles of its WUP view members.
    pub fn live_view_similarity(&self, id: NodeId) -> f64 {
        let node = &self.nodes[id as usize];
        self.view_similarity_against(id, node.profile())
    }

    /// Fig. 7's y-axis: mean similarity between `id`'s *ground-truth
    /// interest profile* (its opinions on the items of the current profile
    /// window) and the live profiles of its WUP view members. Using the
    /// ground truth rather than the node's own lagging profile makes an
    /// interest switch visible immediately: the old view scores poorly for
    /// the new interests until WUP rebuilds it.
    pub fn interest_view_similarity(&self, id: NodeId) -> f64 {
        let gt = self.ground_truth_profile(id);
        self.view_similarity_against(id, &gt)
    }

    /// The windowed ground-truth profile of a node: its true opinion on
    /// every item published within the current profile window.
    pub fn ground_truth_profile(&self, id: NodeId) -> Profile {
        let window = self
            .cfg
            .build_params(&self.protocol)
            .map(|p| p.profile_window)
            .unwrap_or(13);
        let now = self.cycle;
        let cutoff = now.saturating_sub(window);
        Profile::from_entries(self.records.iter().filter_map(|rec| {
            let t = rec.published_at;
            if t >= now || t < cutoff {
                return None;
            }
            let liked = self.oracle.likes_index(id, rec.index);
            Some(whatsup_core::ProfileEntry {
                item: self.item_ids[rec.index as usize],
                timestamp: t,
                score: if liked { 1.0 } else { 0.0 },
            })
        }))
    }

    fn view_similarity_against(&self, id: NodeId, reference: &Profile) -> f64 {
        let node = &self.nodes[id as usize];
        let metric = node.params().metric;
        let neighbors = node.wup_neighbor_ids();
        if neighbors.is_empty() {
            return 0.0;
        }
        let sum: f64 = neighbors
            .iter()
            .map(|&nb| metric.score(reference, self.nodes[nb as usize].profile()))
            .sum();
        sum / neighbors.len() as f64
    }

    /// The current WUP overlay as a directed graph (Fig. 4 analyses).
    pub fn wup_overlay(&self) -> Graph {
        let mut g = Graph::new(self.nodes.len());
        for (u, node) in self.nodes.iter().enumerate() {
            for v in node.wup_neighbor_ids() {
                if (v as usize) < self.nodes.len() {
                    g.add_edge(u as u32, v);
                }
            }
        }
        g
    }

    /// Report for the cycles executed so far.
    pub fn report(&self) -> SimReport {
        SimReport {
            protocol: self.protocol.label(),
            dataset: self.dataset_name.clone(),
            fanout: self.protocol.fanout(),
            n_nodes: self.nodes.len(),
            cycles: self.cycle,
            items: self.records.clone(),
            per_node: self.per_node.clone(),
            news_messages: self.news_messages_measured,
            news_messages_all: self.news_messages_all,
            gossip_messages: self.gossip_messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_datasets::{survey, SurveyConfig};

    fn tiny_dataset() -> Dataset {
        survey::generate(&SurveyConfig::paper().scaled(0.12), 42)
    }

    fn quick_cfg() -> SimConfig {
        SimConfig { cycles: 20, publish_from: 2, measure_from: 8, ..Default::default() }
    }

    #[test]
    fn whatsup_run_produces_sane_report() {
        let d = tiny_dataset();
        let sim = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg());
        let report = sim.run();
        assert_eq!(report.n_nodes, d.n_users());
        assert!(report.measured_items() > 0);
        let s = report.scores();
        assert!(s.recall > 0.2, "recall collapsed: {s:?}");
        assert!(s.precision > 0.2, "precision collapsed: {s:?}");
        assert!(report.news_messages > 0);
        assert!(report.gossip_messages > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = tiny_dataset();
        let r1 = Simulation::new(&d, Protocol::WhatsUp { f_like: 4 }, quick_cfg()).run();
        let r2 = Simulation::new(&d, Protocol::WhatsUp { f_like: 4 }, quick_cfg()).run();
        assert_eq!(r1.scores(), r2.scores());
        assert_eq!(r1.news_messages, r2.news_messages);
        assert_eq!(r1.gossip_messages, r2.gossip_messages);
    }

    #[test]
    fn gossip_floods_with_high_recall_low_precision() {
        let d = tiny_dataset();
        let gossip =
            Simulation::new(&d, Protocol::Gossip { fanout: 5 }, quick_cfg()).run();
        let s = gossip.scores();
        assert!(s.recall > 0.9, "homogeneous gossip must flood: {s:?}");
        // Flooding precision ≈ mean like rate (well below 0.6).
        assert!(s.precision < 0.6, "flooding precision too high: {s:?}");
    }

    #[test]
    fn whatsup_beats_gossip_precision_at_same_fanout() {
        let d = tiny_dataset();
        let wu = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg()).run();
        let go = Simulation::new(&d, Protocol::Gossip { fanout: 5 }, quick_cfg()).run();
        assert!(
            wu.scores().precision > go.scores().precision,
            "whatsup {:?} vs gossip {:?}",
            wu.scores(),
            go.scores()
        );
    }

    #[test]
    fn loss_degrades_recall() {
        let d = tiny_dataset();
        let clean =
            Simulation::new(&d, Protocol::WhatsUp { f_like: 3 }, quick_cfg()).run();
        let lossy_cfg = SimConfig { loss: 0.5, ..quick_cfg() };
        let lossy =
            Simulation::new(&d, Protocol::WhatsUp { f_like: 3 }, lossy_cfg).run();
        assert!(
            lossy.scores().recall < clean.scores().recall,
            "50% loss must hurt recall: clean {:?} lossy {:?}",
            clean.scores(),
            lossy.scores()
        );
    }

    #[test]
    fn dislike_counters_stay_within_ttl() {
        let d = tiny_dataset();
        let report =
            Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg()).run();
        let dist = report.dislike_distribution(4);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for r in &report.items {
            assert!(r.dislikes_at_liked_reception.iter().all(|&x| x <= 4));
        }
    }

    #[test]
    fn overlay_graph_has_out_degree_bounded_by_view() {
        let d = tiny_dataset();
        let mut sim = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg());
        for _ in 0..10 {
            sim.step();
        }
        let g = sim.wup_overlay();
        assert_eq!(g.len(), d.n_users());
        for u in 0..g.len() as u32 {
            assert!(g.out_degree(u) <= 10, "view size bound violated");
        }
    }

    #[test]
    fn joining_node_integrates() {
        let d = tiny_dataset();
        let mut sim = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg());
        for _ in 0..6 {
            sim.step();
        }
        let joiner = sim.add_joining_node(0);
        assert_eq!(joiner as usize, d.n_users());
        for _ in 6..quick_cfg().cycles as usize {
            sim.step();
        }
        // The joiner must have acquired neighbors and a profile.
        assert!(!sim.node(joiner).wup_neighbor_ids().is_empty());
        assert!(sim.live_view_similarity(joiner) >= 0.0);
    }

    #[test]
    fn measured_flag_follows_threshold() {
        let d = tiny_dataset();
        let report =
            Simulation::new(&d, Protocol::WhatsUp { f_like: 4 }, quick_cfg()).run();
        for r in &report.items {
            assert_eq!(r.measured, r.published_at >= quick_cfg().measure_from);
        }
    }

    #[test]
    #[should_panic(expected = "does not run on the node engine")]
    fn global_protocols_rejected() {
        let d = tiny_dataset();
        let _ = Simulation::new(&d, Protocol::Cascade, quick_cfg());
    }
}
