//! The cycle-based simulation engine for node-based protocols.
//!
//! Methodology (paper §IV/§V): time is a sequence of gossip cycles. Each
//! cycle:
//!
//! 1. every node runs one RPS and one WUP exchange (requests and the
//!    matching responses are delivered within the cycle);
//! 2. the items scheduled for the cycle are published and each epidemic
//!    runs to completion (hop-ordered BFS), which matches the paper's use
//!    of the gossip cycle as time unit — dissemination is fast relative to
//!    clustering dynamics.
//!
//! Message loss (§V-E) applies to every message of every protocol layer.
//! The engine is a pure function of `(dataset, protocol, config)`.
//!
//! # Phased-round execution model
//!
//! A cycle advances through *phases*, each a deterministic fan-out over the
//! nodes followed by a deterministic sequential fold on the driving thread:
//!
//! 1. **Collect** — every node runs [`WhatsUpNode::on_cycle`] in parallel,
//!    emitting its RPS/WUP requests.
//! 2. **Route** — the emitted messages are grouped into per-receiver
//!    mailboxes, ordered by `(sender id, emission order)`.
//! 3. **Deliver** — receivers drain their mailboxes in parallel, each
//!    mutating only itself and emitting replies; replies feed the next
//!    route/deliver round until the cycle is quiet (requests, then
//!    responses — gossip needs exactly two delivery rounds).
//! 4. **Churn** — per-node crash coins are drawn in parallel; crashes are
//!    applied sequentially in node-id order (a rejoining node inherits a
//!    live contact's views).
//! 5. **Publish** — each scheduled item's epidemic runs as a BFS over the
//!    same route/deliver machinery: all copies at hop distance `h` are
//!    delivered (in parallel, per receiver) before any copy at `h + 1`.
//!
//! # Determinism contract
//!
//! Reports are **bit-identical across worker-thread counts** (including the
//! sequential case) for a fixed seed, because no randomness or ordering
//! leaks from the parallel sections:
//!
//! * every node draws from its own counter-based RNG stream, derived by
//!   [`node_stream`]`(seed, node, cycle, phase)` — never from a shared
//!   generator, and never dependent on how many other nodes exist or run
//!   first. Adding nodes (`add_joining_node`) therefore never shifts the
//!   streams of existing nodes;
//! * mailbox contents and the fold that applies per-receiver outcomes to
//!   the shared counters both follow fixed total orders (sender order,
//!   receiver order);
//! * message-loss coins are drawn from the *receiver's* stream at delivery
//!   time, in mailbox order.
//!
//! The interactive mutators (`add_joining_node`, `swap_interests`,
//! `reset_node`) draw from a dedicated engine RNG on the driving thread and
//! are deterministic in call order.

use crate::config::{Protocol, SimConfig};
use crate::oracle::Oracle;
use crate::record::{ItemRecord, NodeIr, SimReport};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use whatsup_core::{NewsItem, NodeId, Opinions, OutMessage, Params, Payload, Profile, WhatsUpNode};
use whatsup_datasets::Dataset;
use whatsup_graph::Graph;

/// Phase tags for [`node_stream`] derivation. Distinct phases of the same
/// cycle must never share a stream, or coins drawn in one phase would shift
/// draws in another depending on message volume.
pub mod phase {
    /// `on_cycle` emissions (RPS/WUP initiation).
    pub const CYCLE: u8 = 0;
    /// Gossip mailbox drains (request/response handling + loss coins).
    pub const GOSSIP: u8 = 1;
    /// Churn crash coin and rejoin contact choice.
    pub const CHURN: u8 = 2;
    /// News delivery (BEEP decisions + loss coins).
    pub const NEWS: u8 = 3;
}

/// SplitMix64 finalizer.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The counter-based per-node RNG stream for one `(cycle, phase)`.
///
/// A pure function of its arguments: independent of node count, execution
/// order and thread count. This is the engine's only source of randomness
/// inside a cycle.
pub fn node_stream(seed: u64, node: NodeId, cycle: u32, phase: u8) -> ChaCha8Rng {
    const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h = mix64(seed ^ GOLDEN.wrapping_mul(node as u64 ^ 0xfeed_5eed));
    h = mix64(h ^ GOLDEN.wrapping_mul(cycle as u64 + 1));
    h = mix64(h ^ GOLDEN.wrapping_mul(phase as u64 + 1));
    ChaCha8Rng::seed_from_u64(h)
}

/// Shared mutable base pointer for disjoint-index parallel phases.
///
/// Wrapped in a struct so it can cross the `Sync` bound of the parallel
/// driver; all dereferences stay inside [`for_nodes`], which guarantees
/// index disjointness.
struct RawSlice<T>(*mut T);

unsafe impl<T: Send> Sync for RawSlice<T> {}

impl<T> RawSlice<T> {
    /// # Safety
    /// The caller must guarantee `i` is in bounds and that no other thread
    /// holds a reference to slot `i` for the lifetime of the returned one.
    /// (A method rather than field access so closures capture the `Sync`
    /// wrapper, not the raw pointer.)
    #[allow(clippy::mut_from_ref)]
    unsafe fn at(&self, i: usize) -> &mut T {
        &mut *self.0.add(i)
    }
}

/// Runs `f` over the given node ids in parallel, returning the outputs in
/// `ids` order. `f` gets exclusive access to the node *and* its slot in
/// `scratch` (per-node RNG state shared across rounds of one phase).
///
/// # Panics
/// Asserts — unconditionally, in release builds too — that `ids` are
/// strictly increasing (and therefore disjoint). The assert is load-bearing
/// for the `RawSlice` safety argument below: duplicate ids would hand two
/// workers aliasing `&mut` to the same node. Do not downgrade it to
/// `debug_assert!`.
fn for_nodes<R, S, F>(nodes: &mut [WhatsUpNode], scratch: &mut [S], ids: &[NodeId], f: F) -> Vec<R>
where
    R: Send,
    S: Send,
    F: Fn(NodeId, &mut WhatsUpNode, &mut S) -> R + Sync,
{
    // The aliasing below is only sound for duplicate-free ids, so this
    // check must survive into release builds.
    assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "receiver ids must be sorted unique"
    );
    assert_eq!(nodes.len(), scratch.len());
    let node_base = RawSlice(nodes.as_mut_ptr());
    let scratch_base = RawSlice(scratch.as_mut_ptr());
    let n = nodes.len();
    rayon::map_indices(ids.len(), move |k| {
        let id = ids[k] as usize;
        assert!(id < n, "message addressed to unknown node {id}");
        // SAFETY: `ids` holds strictly increasing indices < n, each visited
        // by exactly one worker exactly once, so the two &mut never alias.
        let (node, slot) = unsafe { (node_base.at(id), scratch_base.at(id)) };
        f(id as NodeId, node, slot)
    })
}

/// Drains each receiver's mailbox in parallel: takes the mail, lazily
/// derives the receiver's `(cycle, phase)` stream, draws the per-message
/// loss coin from it in mailbox order, and feeds surviving messages to
/// `handle`, accumulating one `O` per receiver. The single home for the
/// mailbox-aliasing unsafe block shared by the gossip and news phases.
#[allow(clippy::too_many_arguments)]
fn deliver_round<O, F>(
    nodes: &mut [WhatsUpNode],
    phase_rngs: &mut [Option<ChaCha8Rng>],
    mailbox: &mut [Vec<(NodeId, Payload)>],
    receivers: &[NodeId],
    seed: u64,
    cycle: u32,
    phase_tag: u8,
    loss: f64,
    handle: F,
) -> Vec<O>
where
    O: Default + Send,
    F: Fn(NodeId, &mut WhatsUpNode, NodeId, Payload, &mut ChaCha8Rng, &mut O) + Sync,
{
    let mailbox_base = RawSlice(mailbox.as_mut_ptr());
    let n_slots = mailbox.len();
    for_nodes(nodes, phase_rngs, receivers, |id, node, rng_slot| {
        assert!((id as usize) < n_slots);
        // SAFETY: `for_nodes` visits each (duplicate-free) receiver id on
        // exactly one worker, and each drains only its own mailbox slot.
        let mail = std::mem::take(unsafe { mailbox_base.at(id as usize) });
        let rng = rng_slot.get_or_insert_with(|| node_stream(seed, id, cycle, phase_tag));
        let mut out = O::default();
        for (from, payload) in mail {
            if loss > 0.0 && rng.gen_bool(loss) {
                continue;
            }
            handle(id, node, from, payload, rng, &mut out);
        }
        out
    })
}

/// Per-receiver outcome of one news delivery round, folded sequentially in
/// receiver order after the parallel section.
#[derive(Default)]
struct NewsOutcome {
    /// Forwarded copies, stamped with this receiver as sender.
    replies: Vec<(NodeId, OutMessage)>,
    /// Set when this round delivered the receiver's first copy.
    first: Option<FirstReception>,
    /// `(hop, forwarder_liked)` when the receiver forwarded (Fig. 6).
    forward: Option<(u16, bool)>,
}

struct FirstReception {
    hop: u16,
    sender_liked: bool,
    receiver_likes: bool,
    dislikes: u8,
}

/// A running simulation of one node-based protocol over one dataset.
pub struct Simulation {
    protocol: Protocol,
    cfg: SimConfig,
    params: Params,
    dataset_name: String,
    items: Vec<NewsItem>,
    /// Cached content hashes of `items` (hashing is string-heavy).
    item_ids: Vec<whatsup_core::ItemId>,
    sources: Vec<NodeId>,
    /// cycle → dataset item indices published that cycle. Also serves the
    /// windowed ground-truth lookups (O(window), not O(items)).
    published_at_cycle: Vec<Vec<u32>>,
    nodes: Vec<WhatsUpNode>,
    oracle: Oracle,
    records: Vec<ItemRecord>,
    /// Driving-thread RNG for bootstrap and the interactive mutators; the
    /// cycle phases use [`node_stream`] exclusively.
    rng: ChaCha8Rng,
    cycle: u32,
    gossip_messages: u64,
    news_messages_all: u64,
    news_messages_measured: u64,
    /// Liked first receptions per node during the current cycle (Fig. 7c).
    liked_this_cycle: Vec<u32>,
    /// Per-node delivery counters over measured items (Fig. 11).
    per_node: Vec<NodeIr>,
    /// Scratch: per-node mailboxes, reused across rounds and cycles.
    mailbox: Vec<Vec<(NodeId, Payload)>>,
    /// Scratch: per-node phase RNGs (lazily derived per cycle+phase).
    phase_rngs: Vec<Option<ChaCha8Rng>>,
}

impl Simulation {
    /// Builds a simulation.
    ///
    /// # Panics
    /// Panics if `protocol` is one of the global engines (cascade, pub/sub,
    /// centralized — use [`crate::engines::run_protocol`]) or if the config
    /// is invalid.
    pub fn new(dataset: &Dataset, protocol: Protocol, cfg: SimConfig) -> Self {
        cfg.validate().expect("invalid simulation config");
        let params = cfg
            .build_params(&protocol)
            .expect("protocol does not run on the node engine");
        let n = dataset.n_users();
        let item_cycles = cfg.schedule(dataset.n_items());
        let mut schedule = vec![Vec::new(); cfg.cycles as usize];
        let mut items = Vec::with_capacity(dataset.n_items());
        let mut sources = Vec::with_capacity(dataset.n_items());
        let mut id_to_index = HashMap::with_capacity(dataset.n_items());
        for spec in &dataset.items {
            let cycle = item_cycles[spec.index as usize];
            let item = NewsItem::new(
                format!("{}-news-{}", dataset.name, spec.index),
                format!("topic-{}", spec.topic),
                format!("https://news.example/{}/{}", dataset.name, spec.index),
                spec.source,
                cycle,
            );
            id_to_index.insert(item.id(), spec.index);
            schedule[cycle as usize].push(spec.index);
            items.push(item);
            sources.push(spec.source);
        }
        assert_eq!(id_to_index.len(), items.len(), "item id (hash) collision");
        let item_ids: Vec<whatsup_core::ItemId> = items.iter().map(|i| i.id()).collect();
        let published_at_cycle = schedule;

        let oracle = Oracle::new(dataset.likes.clone(), id_to_index);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut nodes: Vec<WhatsUpNode> = (0..n as NodeId)
            .map(|id| WhatsUpNode::new(id, params.clone()))
            .collect();
        // Bootstrap: every node learns `bootstrap_degree` distinct random
        // contacts (empty profiles), split across both layers, as a stand-in
        // for the paper's bootstrap server. Partial Fisher–Yates over the
        // other `n - 1` ids: O(degree) per node, no rejection loop.
        for (id, node) in nodes.iter_mut().enumerate() {
            let take = cfg.bootstrap_degree.min(n - 1);
            let contacts: Vec<NodeId> = rand::seq::index::sample(&mut rng, n - 1, take)
                .into_iter()
                // Skip over `id` itself: [0, n-1) minus {id} ≅ shift ≥ id.
                .map(|c| if c >= id { c + 1 } else { c } as NodeId)
                .collect();
            let wup_take = (contacts.len() / 2).max(1);
            node.seed_views(
                contacts.iter().map(|&c| (c, Profile::new())),
                contacts.iter().take(wup_take).map(|&c| (c, Profile::new())),
            );
        }
        let records = dataset
            .items
            .iter()
            .map(|spec| ItemRecord {
                index: spec.index,
                published_at: item_cycles[spec.index as usize],
                measured: item_cycles[spec.index as usize] >= cfg.measure_from,
                ..ItemRecord::default()
            })
            .collect();
        Self {
            protocol,
            cfg,
            params,
            dataset_name: dataset.name.clone(),
            items,
            item_ids,
            sources,
            published_at_cycle,
            nodes,
            oracle,
            records,
            rng,
            cycle: 0,
            gossip_messages: 0,
            news_messages_all: 0,
            news_messages_measured: 0,
            liked_this_cycle: vec![0; n],
            per_node: vec![NodeIr::default(); n],
            mailbox: (0..n).map(|_| Vec::new()).collect(),
            phase_rngs: vec![None; n],
        }
    }

    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    pub fn current_cycle(&self) -> u32 {
        self.cycle
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    pub fn node(&self, id: NodeId) -> &WhatsUpNode {
        &self.nodes[id as usize]
    }

    /// Liked first receptions per node during the last completed cycle.
    pub fn liked_receptions_last_cycle(&self, id: NodeId) -> u32 {
        self.liked_this_cycle[id as usize]
    }

    /// The per-node RNG stream this simulation uses for `(node, cycle,
    /// phase)` — exposed so tests can assert stream stability.
    pub fn stream_for(&self, node: NodeId, cycle: u32, phase: u8) -> ChaCha8Rng {
        node_stream(self.cfg.seed, node, cycle, phase)
    }

    /// Runs all remaining cycles and reports.
    pub fn run(mut self) -> SimReport {
        while self.cycle < self.cfg.cycles {
            self.step();
        }
        self.report()
    }

    /// Routes `envelopes` into the per-node mailboxes and returns the
    /// sorted list of receivers with mail. Mailbox order is envelope order
    /// (deterministic: senders emit in id order within a round).
    fn route(&mut self, envelopes: Vec<(NodeId, OutMessage)>) -> Vec<NodeId> {
        let mut receivers: Vec<NodeId> = Vec::new();
        for (from, msg) in envelopes {
            let slot = &mut self.mailbox[msg.to as usize];
            if slot.is_empty() {
                receivers.push(msg.to);
            }
            slot.push((from, msg.payload));
        }
        receivers.sort_unstable();
        receivers
    }

    /// Advances one cycle: gossip phase, churn, then publications.
    pub fn step(&mut self) {
        assert!(self.cycle < self.cfg.cycles, "simulation already finished");
        let t = self.cycle;
        self.liked_this_cycle.iter_mut().for_each(|c| *c = 0);

        // --- Gossip phase -------------------------------------------------
        // Collect: every node's cycle tick, fanned out over the workers.
        let seed = self.cfg.seed;
        let all_ids: Vec<NodeId> = (0..self.nodes.len() as NodeId).collect();
        let outputs: Vec<Vec<OutMessage>> = for_nodes(
            &mut self.nodes,
            &mut self.phase_rngs,
            &all_ids,
            |id, node, _| {
                let mut rng = node_stream(seed, id, t, phase::CYCLE);
                node.on_cycle(t, &mut rng)
            },
        );
        let mut envelopes: Vec<(NodeId, OutMessage)> = Vec::new();
        for (id, out) in outputs.into_iter().enumerate() {
            envelopes.extend(out.into_iter().map(|m| (id as NodeId, m)));
        }

        // Route/deliver rounds until the cycle is quiet (two rounds for the
        // request/response gossip protocols).
        self.phase_rngs.iter_mut().for_each(|r| *r = None);
        let loss = self.cfg.loss;
        while !envelopes.is_empty() {
            self.gossip_messages += envelopes.len() as u64;
            let receivers = self.route(envelopes);
            let oracle = &self.oracle;
            let replies: Vec<Vec<(NodeId, OutMessage)>> = deliver_round(
                &mut self.nodes,
                &mut self.phase_rngs,
                &mut self.mailbox,
                &receivers,
                seed,
                t,
                phase::GOSSIP,
                loss,
                |id, node, from, payload, rng, out: &mut Vec<(NodeId, OutMessage)>| {
                    for reply in node.on_message(from, payload, t, oracle, rng) {
                        debug_assert!(
                            !matches!(reply.payload, Payload::News(_)),
                            "news cannot appear in the gossip phase"
                        );
                        out.push((id, reply));
                    }
                },
            );
            envelopes = replies.into_iter().flatten().collect();
        }

        // --- Churn phase ----------------------------------------------------
        // Each node crashes with probability `churn_per_cycle` and rejoins
        // immediately as a fresh instance: profile, views and seen-set are
        // lost; the newcomer cold-starts from a random alive contact
        // (§II-D/E — gossip overlays self-heal, profiles rebuild within a
        // window). Coins come from per-node streams (parallel); the resets
        // apply sequentially in id order because a rejoining node reads
        // another node's views.
        if self.cfg.churn_per_cycle > 0.0 && self.nodes.len() > 1 {
            let n = self.nodes.len();
            let churn = self.cfg.churn_per_cycle;
            let decisions: Vec<Option<usize>> = rayon::map_indices(n, |id| {
                let mut rng = node_stream(seed, id as NodeId, t, phase::CHURN);
                if rng.gen_bool(churn) {
                    Some(loop {
                        let c = rng.gen_range(0..n);
                        if c != id {
                            break c;
                        }
                    })
                } else {
                    None
                }
            });
            for (id, contact) in decisions.into_iter().enumerate() {
                if let Some(contact) = contact {
                    self.reset_node_from(id as NodeId, contact);
                }
            }
        }

        // --- Publication phase --------------------------------------------
        self.phase_rngs.iter_mut().for_each(|r| *r = None);
        let indices = self.published_at_cycle[t as usize].clone();
        for index in indices {
            self.disseminate(index, t);
        }
        self.cycle += 1;
    }

    /// Crashes `id` and rejoins it fresh, inheriting `contact`'s views.
    fn reset_node_from(&mut self, id: NodeId, contact: usize) {
        let mut fresh = WhatsUpNode::new(id, self.params.clone());
        fresh.cold_start(self.nodes[contact].views_snapshot(), &self.oracle);
        self.nodes[id as usize] = fresh;
    }

    /// Crashes `id` and rejoins it fresh (cold start from a random contact
    /// drawn from the engine RNG — interactive/driving-thread API).
    pub fn reset_node(&mut self, id: NodeId) {
        assert!(
            self.nodes.len() > 1,
            "a 1-node network has no rejoin contact"
        );
        let contact = loop {
            let c = self.rng.gen_range(0..self.nodes.len());
            if c != id as usize {
                break c;
            }
        };
        self.reset_node_from(id, contact);
    }

    /// Publishes one item and runs its epidemic to completion as a BFS:
    /// every copy at hop distance `h` is delivered (receiver-parallel)
    /// before any copy at `h + 1`.
    fn disseminate(&mut self, index: u32, t: u32) {
        let item = self.items[index as usize].clone();
        let item_id = item.id();
        let source = self.sources[index as usize];
        let measured = self.records[index as usize].measured;
        let seed = self.cfg.seed;
        let loss = self.cfg.loss;

        // Ground truth at publication (excluding the source).
        let interested: Vec<NodeId> = self
            .oracle
            .interested(index)
            .into_iter()
            .filter(|&u| u != source)
            .collect();
        self.records[index as usize].interested = interested.len() as u32;
        if measured {
            for &u in &interested {
                self.per_node[u as usize].interested += 1;
            }
        }

        // The source publishes on the driving thread, drawing from its NEWS
        // stream (shared with its later deliveries this cycle).
        let out = {
            let rng = self.phase_rngs[source as usize]
                .get_or_insert_with(|| node_stream(seed, source, t, phase::NEWS));
            self.nodes[source as usize].publish(&item, t, rng)
        };
        self.record_forwards(index, source, &out);
        let mut envelopes: Vec<(NodeId, OutMessage)> =
            out.into_iter().map(|m| (source, m)).collect();

        while !envelopes.is_empty() {
            let sent = envelopes.len() as u64;
            self.records[index as usize].news_sent += sent;
            self.news_messages_all += sent;
            if measured {
                self.news_messages_measured += sent;
            }
            let receivers = self.route(envelopes);
            let oracle = &self.oracle;
            let outcomes: Vec<NewsOutcome> = deliver_round(
                &mut self.nodes,
                &mut self.phase_rngs,
                &mut self.mailbox,
                &receivers,
                seed,
                t,
                phase::NEWS,
                loss,
                |id, node, from, payload, rng, outcome: &mut NewsOutcome| {
                    let Payload::News(news) = &payload else {
                        unreachable!("only news flows in the publication phase")
                    };
                    debug_assert_eq!(news.header.id, item_id);
                    if !node.has_seen(item_id) {
                        outcome.first = Some(FirstReception {
                            hop: news.hops + 1,
                            sender_liked: oracle.likes(from, item_id),
                            receiver_likes: oracle.likes(id, item_id),
                            dislikes: news.dislikes,
                        });
                    }
                    let replies = node.on_message(from, payload, t, oracle, rng);
                    if let Some(Payload::News(first_out)) = replies.first().map(|m| &m.payload) {
                        outcome.forward = Some((first_out.hops, oracle.likes(id, item_id)));
                    }
                    outcome.replies.extend(replies.into_iter().map(|m| (id, m)));
                },
            );
            // Fold outcomes into the shared records in receiver order.
            let mut next = Vec::new();
            for (&to, outcome) in receivers.iter().zip(outcomes) {
                if let Some(first) = outcome.first {
                    let rec = &mut self.records[index as usize];
                    rec.reached += 1;
                    rec.infection_hops.push((first.hop, first.sender_liked));
                    if measured {
                        self.per_node[to as usize].received += 1;
                    }
                    if first.receiver_likes {
                        rec.hits += 1;
                        rec.dislikes_at_liked_reception.push(first.dislikes);
                        self.liked_this_cycle[to as usize] += 1;
                        if measured {
                            self.per_node[to as usize].hits += 1;
                        }
                    }
                }
                if let Some((hop, liked)) = outcome.forward {
                    self.records[index as usize].forward_hops.push((hop, liked));
                }
                next.extend(outcome.replies);
            }
            envelopes = next;
        }
    }

    /// Records one forwarding action (Fig. 6): hop = forwarder's path
    /// distance (= outgoing `hops` field), classified by its opinion.
    fn record_forwards(&mut self, index: u32, node: NodeId, out: &[OutMessage]) {
        let Some(Payload::News(first)) = out.first().map(|m| &m.payload) else {
            return;
        };
        let liked = self.oracle.likes(node, first.header.id);
        self.records[index as usize]
            .forward_hops
            .push((first.hops, liked));
    }

    /// Registers a node joining mid-run (§V-C): interests mirror
    /// `reference`, views inherited from a random contact, cold-start
    /// profile from the contact's RPS view (§II-D).
    pub fn add_joining_node(&mut self, reference: NodeId) -> NodeId {
        let id = self.oracle.add_clone_of(reference);
        let mut node = WhatsUpNode::new(id, self.params.clone());
        let contact = self.rng.gen_range(0..self.nodes.len());
        node.cold_start(self.nodes[contact].views_snapshot(), &self.oracle);
        self.nodes.push(node);
        self.liked_this_cycle.push(0);
        self.per_node.push(NodeIr::default());
        self.mailbox.push(Vec::new());
        self.phase_rngs.push(None);
        id
    }

    /// Swaps the ground-truth interests of two nodes (§V-C).
    pub fn swap_interests(&mut self, a: NodeId, b: NodeId) {
        self.oracle.swap_interests(a, b);
    }

    /// Mean live similarity between `id`'s profile and the *current*
    /// profiles of its WUP view members.
    pub fn live_view_similarity(&self, id: NodeId) -> f64 {
        let node = &self.nodes[id as usize];
        self.view_similarity_against(id, node.profile())
    }

    /// Fig. 7's y-axis: mean similarity between `id`'s *ground-truth
    /// interest profile* (its opinions on the items of the current profile
    /// window) and the live profiles of its WUP view members. Using the
    /// ground truth rather than the node's own lagging profile makes an
    /// interest switch visible immediately: the old view scores poorly for
    /// the new interests until WUP rebuilds it.
    pub fn interest_view_similarity(&self, id: NodeId) -> f64 {
        let gt = self.ground_truth_profile(id);
        self.view_similarity_against(id, &gt)
    }

    /// The windowed ground-truth profile of a node: its true opinion on
    /// every item published within the current profile window. Uses the
    /// per-cycle publication index, so the scan is O(window · items/cycle),
    /// not O(total items).
    pub fn ground_truth_profile(&self, id: NodeId) -> Profile {
        let window = self.params.profile_window;
        let now = self.cycle;
        let cutoff = now.saturating_sub(window);
        let last = now.min(self.published_at_cycle.len() as u32);
        Profile::from_entries((cutoff..last).flat_map(|cycle| {
            self.published_at_cycle[cycle as usize]
                .iter()
                .map(move |&index| {
                    let liked = self.oracle.likes_index(id, index);
                    whatsup_core::ProfileEntry {
                        item: self.item_ids[index as usize],
                        timestamp: cycle,
                        score: if liked { 1.0 } else { 0.0 },
                    }
                })
        }))
    }

    fn view_similarity_against(&self, id: NodeId, reference: &Profile) -> f64 {
        let node = &self.nodes[id as usize];
        let metric = node.params().metric;
        let neighbors = node.wup_neighbor_ids();
        if neighbors.is_empty() {
            return 0.0;
        }
        let sum: f64 = neighbors
            .iter()
            .map(|&nb| metric.score(reference, self.nodes[nb as usize].profile()))
            .sum();
        sum / neighbors.len() as f64
    }

    /// The current WUP overlay as a directed graph (Fig. 4 analyses).
    pub fn wup_overlay(&self) -> Graph {
        let mut g = Graph::new(self.nodes.len());
        for (u, node) in self.nodes.iter().enumerate() {
            for v in node.wup_neighbor_ids() {
                if (v as usize) < self.nodes.len() {
                    g.add_edge(u as u32, v);
                }
            }
        }
        g
    }

    /// Report for the cycles executed so far.
    pub fn report(&self) -> SimReport {
        SimReport {
            protocol: self.protocol.label(),
            dataset: self.dataset_name.clone(),
            fanout: self.protocol.fanout(),
            n_nodes: self.nodes.len(),
            cycles: self.cycle,
            items: self.records.clone(),
            per_node: self.per_node.clone(),
            news_messages: self.news_messages_measured,
            news_messages_all: self.news_messages_all,
            gossip_messages: self.gossip_messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_datasets::{survey, SurveyConfig};

    fn tiny_dataset() -> Dataset {
        survey::generate(&SurveyConfig::paper().scaled(0.12), 42)
    }

    fn quick_cfg() -> SimConfig {
        SimConfig {
            cycles: 20,
            publish_from: 2,
            measure_from: 8,
            ..Default::default()
        }
    }

    #[test]
    fn whatsup_run_produces_sane_report() {
        let d = tiny_dataset();
        let sim = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg());
        let report = sim.run();
        assert_eq!(report.n_nodes, d.n_users());
        assert!(report.measured_items() > 0);
        let s = report.scores();
        assert!(s.recall > 0.2, "recall collapsed: {s:?}");
        assert!(s.precision > 0.2, "precision collapsed: {s:?}");
        assert!(report.news_messages > 0);
        assert!(report.gossip_messages > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = tiny_dataset();
        let r1 = Simulation::new(&d, Protocol::WhatsUp { f_like: 4 }, quick_cfg()).run();
        let r2 = Simulation::new(&d, Protocol::WhatsUp { f_like: 4 }, quick_cfg()).run();
        assert_eq!(r1.scores(), r2.scores());
        assert_eq!(r1.news_messages, r2.news_messages);
        assert_eq!(r1.gossip_messages, r2.gossip_messages);
        assert_eq!(r1, r2, "full reports must be bit-identical");
    }

    #[test]
    fn gossip_floods_with_high_recall_low_precision() {
        let d = tiny_dataset();
        let gossip = Simulation::new(&d, Protocol::Gossip { fanout: 5 }, quick_cfg()).run();
        let s = gossip.scores();
        assert!(s.recall > 0.9, "homogeneous gossip must flood: {s:?}");
        // Flooding precision ≈ mean like rate (well below 0.6).
        assert!(s.precision < 0.6, "flooding precision too high: {s:?}");
    }

    #[test]
    fn whatsup_beats_gossip_precision_at_same_fanout() {
        let d = tiny_dataset();
        let wu = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg()).run();
        let go = Simulation::new(&d, Protocol::Gossip { fanout: 5 }, quick_cfg()).run();
        assert!(
            wu.scores().precision > go.scores().precision,
            "whatsup {:?} vs gossip {:?}",
            wu.scores(),
            go.scores()
        );
    }

    #[test]
    fn loss_degrades_recall() {
        let d = tiny_dataset();
        let clean = Simulation::new(&d, Protocol::WhatsUp { f_like: 3 }, quick_cfg()).run();
        let lossy_cfg = SimConfig {
            loss: 0.5,
            ..quick_cfg()
        };
        let lossy = Simulation::new(&d, Protocol::WhatsUp { f_like: 3 }, lossy_cfg).run();
        assert!(
            lossy.scores().recall < clean.scores().recall,
            "50% loss must hurt recall: clean {:?} lossy {:?}",
            clean.scores(),
            lossy.scores()
        );
    }

    #[test]
    fn dislike_counters_stay_within_ttl() {
        let d = tiny_dataset();
        let report = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg()).run();
        let dist = report.dislike_distribution(4);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for r in &report.items {
            assert!(r.dislikes_at_liked_reception.iter().all(|&x| x <= 4));
        }
    }

    #[test]
    fn overlay_graph_has_out_degree_bounded_by_view() {
        let d = tiny_dataset();
        let mut sim = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg());
        for _ in 0..10 {
            sim.step();
        }
        let g = sim.wup_overlay();
        assert_eq!(g.len(), d.n_users());
        for u in 0..g.len() as u32 {
            assert!(g.out_degree(u) <= 10, "view size bound violated");
        }
    }

    #[test]
    fn joining_node_integrates() {
        let d = tiny_dataset();
        let mut sim = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg());
        for _ in 0..6 {
            sim.step();
        }
        let joiner = sim.add_joining_node(0);
        assert_eq!(joiner as usize, d.n_users());
        for _ in 6..quick_cfg().cycles as usize {
            sim.step();
        }
        // The joiner must have acquired neighbors and a profile.
        assert!(!sim.node(joiner).wup_neighbor_ids().is_empty());
        assert!(sim.live_view_similarity(joiner) >= 0.0);
    }

    #[test]
    fn measured_flag_follows_threshold() {
        let d = tiny_dataset();
        let report = Simulation::new(&d, Protocol::WhatsUp { f_like: 4 }, quick_cfg()).run();
        for r in &report.items {
            assert_eq!(r.measured, r.published_at >= quick_cfg().measure_from);
        }
    }

    #[test]
    fn churn_keeps_running_and_degrades_gracefully() {
        let d = tiny_dataset();
        let churny = SimConfig {
            churn_per_cycle: 0.05,
            ..quick_cfg()
        };
        let a = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, churny.clone()).run();
        let b = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, churny).run();
        assert_eq!(a, b, "churn must stay deterministic");
        assert!(a.scores().recall > 0.0);
    }

    #[test]
    #[should_panic(expected = "does not run on the node engine")]
    fn global_protocols_rejected() {
        let d = tiny_dataset();
        let _ = Simulation::new(&d, Protocol::Cascade, quick_cfg());
    }
}
