//! Interest dynamics: the joining-node and changing-node experiments
//! (paper §V-C, Fig. 7).
//!
//! Protocol of the experiment, following the paper:
//!
//! * pick a *reference* node; at `event_at` introduce a *joining* node with
//!   identical interests (cold start, §II-D);
//! * pick a random pair and *switch their interests* at `event_at`;
//! * every cycle, measure the mean live similarity between each tracked
//!   node and the members of its WUP view, plus the number of liked items
//!   it received that cycle (Fig. 7c);
//! * repeat with independent seeds and average.
//!
//! The choreography is expressed as a [`crate::scenario::Scenario`] event
//! timeline ([`Event::JoinClone`] + [`Event::SwapInterests`]) run through
//! the [`Runner`] — the engine fires the events at the right cycle on any
//! shard count; this module only samples the traces.

use crate::config::{Protocol, SimConfig};
use crate::runner::Runner;
use crate::scenario::{Event, Scenario, TimedEvent};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use whatsup_datasets::Dataset;

/// Configuration of the Fig. 7 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicsConfig {
    pub base: SimConfig,
    /// Cycle at which the joining node enters and the pair switches.
    pub event_at: u32,
    /// Independent repetitions to average over (the paper uses 100).
    pub repeats: usize,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        Self {
            base: SimConfig {
                cycles: 80,
                publish_from: 3,
                measure_from: 10,
                ..Default::default()
            },
            event_at: 40,
            repeats: 10,
        }
    }
}

/// Averaged traces for the three tracked roles.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DynamicsResult {
    /// Cycle indices of the samples.
    pub cycles: Vec<u32>,
    /// Mean live WUP-view similarity per cycle.
    pub reference_similarity: Vec<f64>,
    pub joining_similarity: Vec<f64>,
    pub changing_similarity: Vec<f64>,
    /// Mean liked items received per cycle (Fig. 7c).
    pub reference_liked: Vec<f64>,
    pub joining_liked: Vec<f64>,
    pub changing_liked: Vec<f64>,
}

impl DynamicsResult {
    /// First sampled cycle ≥ `event_at` at which the joining node's view
    /// similarity reaches `fraction` of the reference node's (the paper's
    /// convergence measure: 20 cycles for WhatsUp vs >100 for cosine).
    pub fn joining_convergence_cycle(&self, event_at: u32, fraction: f64) -> Option<u32> {
        self.convergence_of(&self.joining_similarity, event_at, fraction)
    }

    /// Same for the interest-changing node.
    pub fn changing_convergence_cycle(&self, event_at: u32, fraction: f64) -> Option<u32> {
        self.convergence_of(&self.changing_similarity, event_at, fraction)
    }

    /// Convergence requires *sustained* attainment: three consecutive
    /// samples at or above `fraction` of the reference (single-cycle
    /// touches are view-churn noise).
    fn convergence_of(&self, series: &[f64], event_at: u32, fraction: f64) -> Option<u32> {
        const SUSTAIN: usize = 3;
        let mut run = 0usize;
        let mut run_start: Option<u32> = None;
        for (i, &c) in self.cycles.iter().enumerate() {
            if c < event_at {
                continue;
            }
            let reference = self.reference_similarity[i];
            if reference > 0.0 && series[i] >= fraction * reference {
                if run == 0 {
                    run_start = Some(c);
                }
                run += 1;
                if run >= SUSTAIN {
                    return run_start.map(|s| s - event_at);
                }
            } else {
                run = 0;
                run_start = None;
            }
        }
        None
    }
}

/// Runs the dynamics experiment for one protocol. Repetitions run in
/// parallel; each repetition is independently seeded and deterministic.
pub fn run(dataset: &Dataset, protocol: Protocol, cfg: &DynamicsConfig) -> DynamicsResult {
    assert!(
        cfg.event_at < cfg.base.cycles,
        "event must happen during the run"
    );
    let traces: Vec<DynamicsResult> = (0..cfg.repeats)
        .into_par_iter()
        .map(|rep| run_once(dataset, protocol, cfg, rep as u64))
        .collect();
    average(traces)
}

fn run_once(
    dataset: &Dataset,
    protocol: Protocol,
    cfg: &DynamicsConfig,
    rep: u64,
) -> DynamicsResult {
    let mut base = cfg.base.clone();
    base.seed = base.seed.wrapping_add(rep.wrapping_mul(0x9e37_79b9));
    let mut pick = ChaCha8Rng::seed_from_u64(base.seed ^ 0xd1a9);
    let n = dataset.n_users();
    let reference = pick.gen_range(0..n) as u32;
    // The changing pair: two distinct nodes, also distinct from reference.
    let mut swap_a = pick.gen_range(0..n) as u32;
    let mut swap_b = pick.gen_range(0..n) as u32;
    while swap_a == reference {
        swap_a = pick.gen_range(0..n) as u32;
    }
    while swap_b == reference || swap_b == swap_a {
        swap_b = pick.gen_range(0..n) as u32;
    }

    // The §V-C choreography as a scenario timeline: the join and the swap
    // fire at the start of cycle `event_at`, join first (list order).
    let scenario = Scenario::from_config(&base).with_events(vec![
        TimedEvent {
            at: cfg.event_at,
            event: Event::JoinClone { reference },
        },
        TimedEvent {
            at: cfg.event_at,
            event: Event::SwapInterests {
                a: swap_a,
                b: swap_b,
            },
        },
    ]);
    // Joiners take the next free id, and this run has exactly one.
    let joiner = n as u32;
    let mut sim = Runner::new(dataset, protocol)
        .config(base.clone())
        .scenario(scenario)
        .build();
    let mut out = DynamicsResult::default();
    while sim.current_cycle() < base.cycles {
        sim.step();
        let t = sim.current_cycle() - 1;
        out.cycles.push(t);
        out.reference_similarity
            .push(sim.interest_view_similarity(reference));
        out.reference_liked
            .push(sim.liked_receptions_last_cycle(reference) as f64);
        out.changing_similarity
            .push(sim.interest_view_similarity(swap_a));
        out.changing_liked
            .push(sim.liked_receptions_last_cycle(swap_a) as f64);
        if t >= cfg.event_at {
            out.joining_similarity
                .push(sim.interest_view_similarity(joiner));
            out.joining_liked
                .push(sim.liked_receptions_last_cycle(joiner) as f64);
        } else {
            out.joining_similarity.push(0.0);
            out.joining_liked.push(0.0);
        }
    }
    out
}

fn average(traces: Vec<DynamicsResult>) -> DynamicsResult {
    let Some(first) = traces.first() else {
        return DynamicsResult::default();
    };
    let len = first.cycles.len();
    let k = traces.len() as f64;
    let mut out = DynamicsResult {
        cycles: first.cycles.clone(),
        ..Default::default()
    };
    for field in 0..6 {
        let mut acc = vec![0.0; len];
        for t in &traces {
            let src = match field {
                0 => &t.reference_similarity,
                1 => &t.joining_similarity,
                2 => &t.changing_similarity,
                3 => &t.reference_liked,
                4 => &t.joining_liked,
                _ => &t.changing_liked,
            };
            for (a, &v) in acc.iter_mut().zip(src) {
                *a += v;
            }
        }
        acc.iter_mut().for_each(|v| *v /= k);
        match field {
            0 => out.reference_similarity = acc,
            1 => out.joining_similarity = acc,
            2 => out.changing_similarity = acc,
            3 => out.reference_liked = acc,
            4 => out.joining_liked = acc,
            _ => out.changing_liked = acc,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_datasets::{survey, SurveyConfig};

    fn dataset() -> Dataset {
        survey::generate(&SurveyConfig::paper().scaled(0.1), 55)
    }

    fn small_cfg() -> DynamicsConfig {
        DynamicsConfig {
            base: SimConfig {
                cycles: 24,
                publish_from: 2,
                measure_from: 5,
                ..Default::default()
            },
            event_at: 12,
            repeats: 2,
        }
    }

    #[test]
    fn traces_have_full_length() {
        let d = dataset();
        let r = run(&d, Protocol::WhatsUp { f_like: 4 }, &small_cfg());
        assert_eq!(r.cycles.len(), 24);
        assert_eq!(r.reference_similarity.len(), 24);
        assert_eq!(r.joining_similarity.len(), 24);
        assert_eq!(r.changing_liked.len(), 24);
    }

    #[test]
    fn joiner_similarity_zero_before_event() {
        let d = dataset();
        let cfg = small_cfg();
        let r = run(&d, Protocol::WhatsUp { f_like: 4 }, &cfg);
        for (i, &c) in r.cycles.iter().enumerate() {
            if c < cfg.event_at {
                assert_eq!(r.joining_similarity[i], 0.0);
            }
        }
    }

    #[test]
    fn joiner_gains_similarity_after_event() {
        let d = dataset();
        let cfg = small_cfg();
        let r = run(&d, Protocol::WhatsUp { f_like: 4 }, &cfg);
        let after: f64 = r.joining_similarity.iter().rev().take(4).sum();
        assert!(
            after > 0.0,
            "joiner never clustered: {:?}",
            r.joining_similarity
        );
    }

    #[test]
    fn convergence_detector_requires_sustained_attainment() {
        let r = DynamicsResult {
            cycles: vec![0, 1, 2, 3, 4, 5, 6],
            reference_similarity: vec![0.5; 7],
            // Touches the bar at cycle 2 but drops; converges for good at 4.
            joining_similarity: vec![0.0, 0.1, 0.5, 0.1, 0.5, 0.5, 0.5],
            changing_similarity: vec![0.5, 0.0, 0.1, 0.45, 0.45, 0.45, 0.45],
            reference_liked: vec![0.0; 7],
            joining_liked: vec![0.0; 7],
            changing_liked: vec![0.0; 7],
        };
        assert_eq!(
            r.joining_convergence_cycle(1, 0.9),
            Some(3),
            "start of sustained run"
        );
        assert_eq!(r.changing_convergence_cycle(1, 0.8), Some(2));
        assert_eq!(r.joining_convergence_cycle(1, 1.1), None);
    }

    #[test]
    fn deterministic_across_calls() {
        let d = dataset();
        let a = run(&d, Protocol::WhatsUp { f_like: 4 }, &small_cfg());
        let b = run(&d, Protocol::WhatsUp { f_like: 4 }, &small_cfg());
        assert_eq!(a, b);
    }
}
