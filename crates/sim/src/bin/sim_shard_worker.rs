//! Shard worker process for the multi-process sharded engine.
//!
//! Protocol (all frames length-prefixed, little-endian `len:u32` + bytes):
//! the parent driver sends one init frame on stdin, then phase commands;
//! the worker writes one reply frame per command on stdout and exits on a
//! `Stop` command or when stdin closes. See
//! `whatsup_sim::engine::exchange` for the frame formats.

use std::io::{BufReader, BufWriter};
use whatsup_sim::engine::exchange::{decode_init, read_frame, write_frame};
use whatsup_sim::engine::shard::{serve, ShardState};

fn main() {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = BufReader::new(stdin.lock());
    let mut output = BufWriter::new(stdout.lock());

    let init_frame = read_frame(&mut input)
        .expect("read init frame")
        .expect("driver closed the pipe before init");
    let mut state = ShardState::from_init(decode_init(&init_frame));

    serve(
        &mut state,
        || read_frame(&mut input).expect("read command frame"),
        |frame| write_frame(&mut output, &frame).expect("write reply frame"),
    );
}
