//! Shard worker process for the multi-process and distributed sharded
//! engine.
//!
//! ```text
//! sim-shard-worker                      # stdio mode (spawned by the driver)
//! sim-shard-worker --listen <addr>      # socket mode (started before the driver)
//! ```
//!
//! Both modes speak the same conversation (see
//! `whatsup_sim::engine::exchange::stream`): the worker sends a versioned
//! hello, the driver answers with a handshake frame carrying this shard's
//! `ShardInit`, then one reply frame per command frame until `Stop`.
//!
//! In socket mode the worker binds `<addr>` (`host:port`; port `0` picks a
//! free one), prints `LISTEN <actual-addr>` on stdout so launchers can
//! discover the port, serves exactly one driver connection, and exits —
//! workers never outlive their run. Start the workers first, then the
//! driver (`whatsup-sim run … --transport socket --workers addr,…`).
//!
//! Exit status: `0` after an orderly `Stop`; `1` with a one-line stderr
//! message when the driver vanishes mid-run (EOF/broken pipe) or the
//! handshake fails; `2` for bad usage. A killed driver must never leave a
//! panic backtrace here.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpListener;
use std::process::ExitCode;
use whatsup_sim::engine::exchange::stream::{
    accept_handshake, run_worker, serve_stream, HANDSHAKE_TIMEOUT,
};

fn usage() -> ExitCode {
    eprintln!("usage: sim-shard-worker [--listen <host:port>]");
    ExitCode::from(2)
}

fn fail(err: impl std::fmt::Display) -> ExitCode {
    eprintln!("sim-shard-worker: {err}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => serve_stdio(),
        [flag, addr] if flag == "--listen" => serve_socket(addr),
        _ => usage(),
    }
}

/// Stdio mode: the driver is the parent process, frames ride the pipes.
fn serve_stdio() -> ExitCode {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = BufReader::new(stdin.lock());
    let mut output = BufWriter::new(stdout.lock());
    match run_worker(&mut input, &mut output) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}

/// Socket mode: bind, announce, serve one driver connection, exit.
fn serve_socket(addr: &str) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => return fail(format_args!("cannot listen on {addr}: {e}")),
    };
    match listener.local_addr() {
        Ok(local) => {
            // The launcher reads this line to learn the bound port
            // (relevant with `--listen host:0`).
            println!("LISTEN {local}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => return fail(format_args!("cannot read bound address: {e}")),
    }
    let (stream, peer) = match listener.accept() {
        Ok(conn) => conn,
        Err(e) => return fail(format_args!("accept failed: {e}")),
    };
    drop(listener);
    let _ = stream.set_nodelay(true);
    // A peer that connects and then says nothing must not wedge the
    // worker forever: bound the handshake reads, then let the lockstep
    // rounds block freely once the driver has proven itself.
    if stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT)).is_err() {
        return fail("cannot arm the handshake timeout");
    }
    let reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(e) => return fail(format_args!("cannot clone the connection: {e}")),
    };
    let mut input = BufReader::new(reader);
    let mut output = BufWriter::new(stream);
    let mut state = match accept_handshake(&mut input, &mut output) {
        Ok(state) => state,
        Err(e) => return fail(format_args!("driver {peer}: {e}")),
    };
    if output.get_ref().set_read_timeout(None).is_err() {
        return fail("cannot disarm the handshake timeout");
    }
    match serve_stream(&mut state, &mut input, &mut output) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(format_args!("driver {peer}: {e}")),
    }
}
