//! `whatsup-sim`: run a scenario file to a report JSON.
//!
//! ```text
//! whatsup-sim run <scenario.json> [--out <report.json>] [--shards N]
//!                 [--protocol anti-entropy]
//!                 [--multiprocess <sim-shard-worker path>]
//!                 [--transport socket --workers host:port,…]
//!                 [--supervise [--max-restarts N] [--checkpoint-every C]]
//! whatsup-sim compare <scenario.json> [--fanout F] [--out <table.txt>]
//! whatsup-sim render <report.json> [--out <table.txt>]
//! whatsup-sim sweep <scenario.json> [--shards N,N,…] [--fanouts F,F,…]
//!                   [--out <rows.jsonl>]
//! whatsup-sim check <report.json> [--require-recovery]
//! whatsup-sim echo <scenario.json>
//! ```
//!
//! * `run` executes the scenario (dataset recipe + protocol + config +
//!   scenario grammar — see the `whatsup_sim::scenario` module docs for the
//!   JSON schema) and writes the report summary JSON to `--out` (stdout by
//!   default). The summary carries a `schema_version`, the per-cycle
//!   series and the scenario's resolved measurement windows (recovery
//!   table included). Reports are a pure function of the file:
//!   bit-identical across `--shards` values and across the in-process,
//!   child-process and socket transports. `--transport socket` dials
//!   already-running `sim-shard-worker --listen` processes, one address
//!   per shard, in shard order — start the workers first, then the driver
//!   (see the engine module docs' "distributed topology" section). With an
//!   explicit `--shards N`, N must equal the worker count — a mismatch is
//!   a usage error caught before any dialing. `--supervise` (external
//!   transports only) turns worker crashes and hangs into checkpoint/replay
//!   recoveries: every `--checkpoint-every` cycles (default 5) each shard's
//!   state is snapshotted, and a failed worker is restarted — respawned
//!   child, or redialed address once a replacement listener takes it over —
//!   up to `--max-restarts` times per shard (default 3), with the run's
//!   report staying bit-identical to an undisturbed one (see the engine
//!   module docs' "supervision & recovery" section). `--protocol
//!   anti-entropy` overrides the file's protocol with the scuttlebutt
//!   anti-entropy engine (fanout taken from the file's protocol knob when
//!   it has one) — the quick way to replay a committed BEEP scenario under
//!   the alternative engine without editing the file.
//! * `compare` runs the scenario file twice — once under the file's own
//!   protocol and once under anti-entropy at the same fanout (or
//!   `--fanout`) — and renders one side-by-side text-table row per
//!   protocol: messages sent, recall/precision/F1 and time-to-recover
//!   (from the first recovery window). This is the head-to-head the
//!   anti-entropy engine exists for.
//! * `render` re-reads a report JSON written by `run` and renders its
//!   per-cycle `series` and resolved measurement `windows` as aligned
//!   text tables (the `whatsup-metrics` table format) — the human view of
//!   a report that was archived as JSON.
//! * `sweep` runs the scenario file across a `--shards` × `--fanouts`
//!   grid through the same Runner path, emitting one JSON row per cell
//!   (JSON Lines: `{"shards": …, "fanout": …, "report": …}`). Omitting
//!   `--fanouts` keeps the file's own protocol knob; omitting `--shards`
//!   sweeps only the file's shard count.
//! * `check` parses a report produced by `run`, validates its
//!   `schema_version` and verifies its shape (headline numbers, series
//!   columns, windows table) — the CI smoke test. `--require-recovery`
//!   additionally fails unless at least one window carries recovery
//!   metrics.
//! * `echo` parses, validates and re-renders a scenario file in canonical
//!   form (round-trip check / formatter).

use std::process::ExitCode;
use whatsup_metrics::table::{f2, human_count};
use whatsup_metrics::TextTable;
use whatsup_sim::sweep::scenario_grid_sweep;
use whatsup_sim::{
    Protocol, Runner, ScenarioFile, Supervision, Transport, REPORT_SCHEMA_VERSION, SERIES_COLUMNS,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  whatsup-sim run <scenario.json> [--out <report.json>] [--shards N] \
         [--protocol anti-entropy] [--multiprocess <worker>] \
         [--transport in-process|process|socket] \
         [--workers host:port,...] [--supervise [--max-restarts N] [--checkpoint-every C]]\n  \
         whatsup-sim compare <scenario.json> [--fanout F] [--out <table.txt>]\n  \
         whatsup-sim render <report.json> [--out <table.txt>]\n  \
         whatsup-sim sweep <scenario.json> [--shards N,N,...] \
         [--fanouts F,F,...] [--out <rows.jsonl>]\n  whatsup-sim check <report.json> \
         [--require-recovery]\n  whatsup-sim echo <scenario.json>"
    );
    ExitCode::from(2)
}

fn fail(what: &str, err: impl std::fmt::Display) -> ExitCode {
    eprintln!("whatsup-sim: {what}: {err}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("compare") => compare(&args[1..]),
        Some("render") => render(&args[1..]),
        Some("sweep") => sweep(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("echo") => echo(&args[1..]),
        _ => usage(),
    }
}

/// Folds the `--transport` / `--multiprocess` / `--workers` flags into one
/// [`Transport`], rejecting contradictory combinations.
fn resolve_transport(
    kind: Option<String>,
    worker: Option<String>,
    workers: Option<String>,
    shards: Option<usize>,
) -> Result<Transport, String> {
    // `--multiprocess <path>` keeps working as a shorthand for
    // `--transport process` with the worker path attached.
    let kind = match (kind.as_deref(), &worker) {
        (None, Some(_)) => "process",
        (Some(k), _) => k,
        (None, None) => "in-process",
    };
    match kind {
        "in-process" => {
            if workers.is_some() {
                return Err("--workers only applies to --transport socket".into());
            }
            if worker.is_some() {
                return Err("--multiprocess conflicts with --transport in-process".into());
            }
            Ok(Transport::InProcess)
        }
        "process" => {
            if workers.is_some() {
                return Err("--workers only applies to --transport socket".into());
            }
            let worker = worker.ok_or("--transport process needs --multiprocess <worker path>")?;
            Ok(Transport::Process(worker.into()))
        }
        "socket" => {
            if worker.is_some() {
                return Err("--multiprocess conflicts with --transport socket".into());
            }
            let list = workers.ok_or("--transport socket needs --workers host:port,...")?;
            let list = Transport::parse_workers(&list)?;
            // The shard count *is* the worker count on the socket
            // transport; an explicit --shards must agree. Caught here, so
            // a mismatched invocation fails before any worker is dialed.
            if let Some(n) = shards {
                if n != list.len() {
                    return Err(format!(
                        "--shards {n} does not match the {} --workers address(es) — on \
                         --transport socket the shard count is the worker count (drop \
                         --shards or pass one address per shard)",
                        list.len()
                    ));
                }
            }
            Ok(Transport::Socket(list))
        }
        other => Err(format!(
            "unknown transport '{other}' (expected in-process, process or socket)"
        )),
    }
}

fn load(path: &str) -> Result<ScenarioFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    ScenarioFile::from_json_str(&text).map_err(|e| format!("{path}: {e}"))
}

/// Loads a scenario file and runs every validation that needs the dataset
/// size — shared by `run` and `sweep`.
fn load_for_run(path: &str) -> Result<(ScenarioFile, whatsup_datasets::Dataset), String> {
    let file = load(path)?;
    file.scenario
        .validate_for_global(&file.protocol)
        .map_err(|e| format!("{path}: {e}"))?;
    let dataset = file.dataset.build();
    // Event node ids can only be range-checked once the dataset size is
    // known — catch them here instead of panicking mid-run.
    file.scenario
        .validate_events(dataset.n_users())
        .map_err(|e| format!("{path}: {e}"))?;
    Ok((file, dataset))
}

/// Maps a `--protocol` override name onto a [`Protocol`], inheriting the
/// scenario file's fanout knob where the override needs one.
fn parse_protocol_override(name: &str, file_protocol: Protocol) -> Result<Protocol, String> {
    match name {
        "anti-entropy" | "anti_entropy" => Ok(Protocol::AntiEntropy {
            fanout: file_protocol.fanout().unwrap_or(3),
        }),
        other => Err(format!(
            "unknown protocol override '{other}' (supported: anti-entropy)"
        )),
    }
}

/// Writes `text` to `out` (or stdout when `None`), treating a broken pipe
/// as a normal end of consumption. `note` is logged to stderr on a
/// successful file write.
fn emit(text: &str, out: Option<&str>, note: &str) -> ExitCode {
    match out {
        None => {
            use std::io::Write;
            let mut stdout = std::io::stdout();
            match stdout
                .write_all(text.as_bytes())
                .and_then(|()| stdout.flush())
            {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
                Err(e) => fail("cannot write to stdout", e),
            }
        }
        Some(out) => match std::fs::write(out, text) {
            Ok(()) => {
                eprintln!("wrote {out}: {note}");
                ExitCode::SUCCESS
            }
            Err(e) => fail("cannot write output", format!("{out}: {e}")),
        },
    }
}

/// Parses a `--shards 1,2,4`-style comma list of non-negative integers.
fn parse_usize_list(list: &str) -> Option<Vec<usize>> {
    let parts: Vec<&str> = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if parts.is_empty() {
        return None;
    }
    parts.iter().map(|p| p.parse::<usize>().ok()).collect()
}

fn sweep(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut out = None;
    let mut shard_counts: Option<Vec<usize>> = None;
    let mut fanouts: Vec<usize> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(v) if !v.starts_with("--") => out = Some(v.clone()),
                _ => return usage(),
            },
            "--shards" => match it.next().and_then(|v| parse_usize_list(v)) {
                Some(list) => shard_counts = Some(list),
                None => return usage(),
            },
            "--fanouts" => match it.next().and_then(|v| parse_usize_list(v)) {
                Some(list) => fanouts = list,
                None => return usage(),
            },
            flag if flag.starts_with("--") => return usage(),
            _ if path.is_none() => path = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    let (file, dataset) = match load_for_run(&path) {
        Ok(loaded) => loaded,
        Err(e) => return fail("invalid scenario", e),
    };
    // A fanout axis on a knob-less protocol would silently run identical
    // cells — reject it instead.
    if !fanouts.is_empty() && file.protocol.fanout().is_none() {
        return fail(
            "invalid sweep",
            format!(
                "{}: protocol {} has no fanout knob — drop --fanouts",
                path,
                file.protocol.label()
            ),
        );
    }
    // No --shards axis = the file's own shard count, a 1×F grid.
    let shard_counts = shard_counts.unwrap_or_else(|| vec![file.config.shards]);
    let cells = scenario_grid_sweep(
        &dataset,
        file.protocol,
        &shard_counts,
        &fanouts,
        &file.config,
        &file.scenario,
    );
    // JSON Lines: one compact row per grid cell, in grid order.
    let mut rows = String::new();
    for cell in &cells {
        use serde::json::Value;
        let row = Value::object(vec![
            ("shards", Value::Number(cell.shards as f64)),
            (
                "fanout",
                cell.fanout
                    .map(|f| Value::Number(f as f64))
                    .unwrap_or(Value::Null),
            ),
            ("report", cell.report.summary_json()),
        ]);
        rows.push_str(&row.to_string());
        rows.push('\n');
    }
    let note = format!(
        "{} rows ({} shard counts × {} fanouts)",
        cells.len(),
        shard_counts.len(),
        fanouts.len().max(1)
    );
    emit(&rows, out.as_deref(), &note)
}

fn run(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut out = None;
    let mut shards = None;
    let mut worker = None;
    let mut transport_kind = None;
    let mut workers = None;
    let mut supervise = false;
    let mut max_restarts = None;
    let mut checkpoint_every = None;
    let mut protocol_override = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(v) if !v.starts_with("--") => out = Some(v.clone()),
                _ => return usage(),
            },
            "--shards" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => shards = Some(n),
                None => return usage(),
            },
            "--protocol" => match it.next() {
                Some(v) if !v.starts_with("--") => protocol_override = Some(v.clone()),
                _ => return usage(),
            },
            "--multiprocess" => match it.next() {
                Some(v) if !v.starts_with("--") => worker = Some(v.clone()),
                _ => return usage(),
            },
            "--transport" => match it.next() {
                Some(v) if !v.starts_with("--") => transport_kind = Some(v.clone()),
                _ => return usage(),
            },
            "--workers" => match it.next() {
                Some(v) if !v.starts_with("--") => workers = Some(v.clone()),
                _ => return usage(),
            },
            "--supervise" => supervise = true,
            "--max-restarts" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) => max_restarts = Some(n),
                None => return usage(),
            },
            "--checkpoint-every" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n > 0 => checkpoint_every = Some(n),
                _ => return usage(),
            },
            flag if flag.starts_with("--") => return usage(),
            _ if path.is_none() => path = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    let transport = match resolve_transport(transport_kind, worker, workers, shards) {
        Ok(t) => t,
        Err(e) => return fail("invalid transport", e),
    };
    if (max_restarts.is_some() || checkpoint_every.is_some()) && !supervise {
        return fail(
            "invalid transport",
            "--max-restarts/--checkpoint-every need --supervise",
        );
    }
    if supervise && transport == Transport::InProcess {
        return fail(
            "invalid transport",
            "--supervise needs an external transport (--multiprocess or --transport socket) — \
             in-process shards have no workers to restart",
        );
    }
    let (file, dataset) = match load_for_run(&path) {
        Ok(loaded) => loaded,
        Err(e) => return fail("invalid scenario", e),
    };
    let protocol = match protocol_override.as_deref() {
        None => file.protocol,
        Some(name) => match parse_protocol_override(name, file.protocol) {
            Ok(p) => p,
            Err(e) => return fail("invalid protocol override", e),
        },
    };
    let mut runner = Runner::new(&dataset, protocol)
        .config(file.config.clone())
        .scenario(file.scenario.clone())
        .transport(transport);
    if supervise {
        let defaults = Supervision::default();
        runner = runner.supervised(
            max_restarts.unwrap_or(defaults.max_restarts),
            checkpoint_every.unwrap_or(defaults.checkpoint_every),
        );
    }
    if let Some(n) = shards {
        runner = runner.shards(n);
    }
    let report = match runner.try_run() {
        Ok(report) => report,
        Err(e) => return fail("run failed", e),
    };
    // One-line run summary (stderr, never part of the report): peak RSS
    // and where the nodes ended up. Shard counts live here and not in the
    // report because the report is byte-identical across shard counts.
    let shard_counts = whatsup_sim::engine::planned_shard_node_counts(
        dataset.n_users(),
        shards.unwrap_or(file.config.shards),
        &file.scenario,
    );
    eprintln!(
        "run: {} cycles, {} messages, peak rss {:.1} MiB, {} shard(s) with {:?} nodes",
        report.cycles,
        report.news_messages_all + report.gossip_messages,
        peak_rss_mb(),
        shard_counts.len(),
        shard_counts
    );
    let json = report.summary_json().pretty() + "\n";
    let note = format!(
        "{} on {} ({} nodes, F1 {:.3}, {} windows)",
        report.protocol,
        report.dataset,
        report.n_nodes,
        report.scores().f1,
        report.windows.len()
    );
    emit(&json, out.as_deref(), &note)
}

/// One `compare` table row: traffic, scores and recovery speed of a
/// finished report. Time-to-recover comes from the first window carrying
/// recovery metrics — `-` when the scenario declares none, `never` when
/// recall did not climb back within the run.
fn comparison_row(report: &whatsup_sim::SimReport) -> Vec<String> {
    let s = report.scores();
    let messages = report.news_messages_all + report.gossip_messages;
    let ttr = report
        .windows
        .iter()
        .find_map(|w| w.recovery.as_ref())
        .map_or_else(
            || "-".to_string(),
            |r| {
                r.time_to_recover()
                    .map_or_else(|| "never".to_string(), |t| t.to_string())
            },
        );
    vec![
        report.protocol.clone(),
        human_count(messages as f64),
        human_count(report.news_messages_all as f64),
        human_count(report.gossip_messages as f64),
        f2(s.recall),
        f2(s.precision),
        f2(s.f1),
        ttr,
    ]
}

fn compare(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut out = None;
    let mut fanout = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(v) if !v.starts_with("--") => out = Some(v.clone()),
                _ => return usage(),
            },
            "--fanout" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(f) if f > 0 => fanout = Some(f),
                _ => return usage(),
            },
            flag if flag.starts_with("--") => return usage(),
            _ if path.is_none() => path = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    let (file, dataset) = match load_for_run(&path) {
        Ok(loaded) => loaded,
        Err(e) => return fail("invalid scenario", e),
    };
    if matches!(file.protocol, Protocol::AntiEntropy { .. }) {
        return fail(
            "invalid comparison",
            format!(
                "{path}: the file's protocol already is anti-entropy — point compare at the \
                 scenario's BEEP/gossip form"
            ),
        );
    }
    // The anti-entropy side runs at the file protocol's fanout unless
    // --fanout overrides it, so the head-to-head is knob-for-knob fair.
    let anti = Protocol::AntiEntropy {
        fanout: fanout.or(file.protocol.fanout()).unwrap_or(3),
    };
    let run_one = |protocol: Protocol| {
        Runner::new(&dataset, protocol)
            .config(file.config.clone())
            .scenario(file.scenario.clone())
            .try_run()
    };
    let baseline = match run_one(file.protocol) {
        Ok(report) => report,
        Err(e) => return fail("baseline run failed", e),
    };
    let anti_report = match run_one(anti) {
        Ok(report) => report,
        Err(e) => return fail("anti-entropy run failed", e),
    };
    let mut table = TextTable::new(
        format!(
            "{} vs {} on {} ({} nodes, {} cycles)",
            baseline.protocol,
            anti_report.protocol,
            baseline.dataset,
            baseline.n_nodes,
            baseline.cycles
        ),
        &[
            "Protocol",
            "Messages",
            "News",
            "Gossip",
            "Recall",
            "Precision",
            "F1",
            "TimeToRecover",
        ],
    );
    table.row(&comparison_row(&baseline));
    table.row(&comparison_row(&anti_report));
    emit(&table.render(), out.as_deref(), "comparison table (2 rows)")
}

fn render(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(v) if !v.starts_with("--") => out = Some(v.clone()),
                _ => return usage(),
            },
            flag if flag.starts_with("--") => return usage(),
            _ if path.is_none() => path = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    let path = path.as_str();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return fail("cannot read report", format!("{path}: {e}")),
    };
    let value = match serde::json::parse(&text) {
        Ok(value) => value,
        Err(e) => return fail("report is not valid JSON", e),
    };
    match value.get("schema_version").and_then(|v| v.as_u64()) {
        Some(v) if v == u64::from(REPORT_SCHEMA_VERSION) => {}
        _ => {
            return fail(
                "report schema",
                format!(
                    "{path}: missing or unsupported schema_version — this binary renders \
                     v{REPORT_SCHEMA_VERSION} reports (produce one with whatsup-sim run)"
                ),
            )
        }
    }
    let str_of = |key: &str| {
        value
            .get(key)
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let heading = format!("{} on {}", str_of("protocol"), str_of("dataset"));

    // Per-cycle series: one row per cycle, the columns exactly as `run`
    // wrote them (and `check` validates them).
    let mut header = vec!["cycle"];
    header.extend(SERIES_COLUMNS);
    let mut series_table = TextTable::new(format!("{heading} — per-cycle series"), &header);
    let series = value.get("series");
    let column = |key: &str| {
        series
            .and_then(|s| s.get(key))
            .and_then(|c| c.as_array())
            .map(<[serde::json::Value]>::to_vec)
            .unwrap_or_default()
    };
    let columns: Vec<(&str, Vec<serde::json::Value>)> = SERIES_COLUMNS
        .iter()
        .map(|key| (*key, column(key)))
        .collect();
    let n_cycles = columns.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
    for cycle in 0..n_cycles {
        let mut row = vec![cycle.to_string()];
        for (key, cells) in &columns {
            row.push(match cells.get(cycle).and_then(|v| v.as_f64()) {
                // The derived ratio columns are null on quiet cycles.
                None => "-".to_string(),
                Some(x) if matches!(*key, "recall" | "precision") => f2(x),
                Some(x) => format!("{x:.0}"),
            });
        }
        series_table.row(&row);
    }

    // Measurement windows, recovery metrics inline.
    let mut windows_table = TextTable::new(
        format!("{heading} — measurement windows"),
        &[
            "Window",
            "Cycles",
            "Items",
            "Recall",
            "Precision",
            "F1",
            "News",
            "Gossip",
            "DipDepth",
            "TimeToRecover",
            "MessagesSpent",
        ],
    );
    let windows = value
        .get("windows")
        .and_then(|w| w.as_array())
        .map(<[serde::json::Value]>::to_vec)
        .unwrap_or_default();
    for w in &windows {
        let num = |key: &str| w.get(key).and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
        let score = |key: &str| {
            w.get("scores")
                .and_then(|s| s.get(key))
                .and_then(|v| v.as_f64())
                .map_or_else(|| "-".to_string(), f2)
        };
        let recovery = w
            .get("recovery")
            .filter(|r| !matches!(r, serde::json::Value::Null));
        let rec_num = |key: &str| {
            recovery
                .and_then(|r| r.get(key))
                .and_then(|v| v.as_f64())
                .map_or_else(|| "-".to_string(), |x| format!("{x:.0}"))
        };
        let dip = recovery
            .and_then(|r| r.get("dip_depth"))
            .and_then(|v| v.as_f64())
            .map_or_else(|| "-".to_string(), f2);
        windows_table.row(&[
            w.get("name")
                .and_then(|n| n.as_str())
                .unwrap_or("?")
                .to_string(),
            format!("[{:.0}, {:.0})", num("from"), num("until")),
            format!("{:.0}", num("items")),
            score("recall"),
            score("precision"),
            score("f1"),
            human_count(num("news_sent")),
            human_count(num("gossip_sent")),
            dip,
            rec_num("time_to_recover"),
            rec_num("messages_spent"),
        ]);
    }

    let text = format!("{}\n{}", series_table.render(), windows_table.render());
    let note = format!("{n_cycles} cycles, {} windows", windows.len());
    emit(&text, out.as_deref(), &note)
}

fn check(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut require_recovery = false;
    for arg in args {
        match arg.as_str() {
            "--require-recovery" => require_recovery = true,
            flag if flag.starts_with("--") => return usage(),
            _ if path.is_none() => path = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    let path = path.as_str();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return fail("cannot read report", format!("{path}: {e}")),
    };
    let value = match serde::json::parse(&text) {
        Ok(value) => value,
        Err(e) => return fail("report is not valid JSON", e),
    };
    // Schema version gates everything else: an unknown version means the
    // rest of the shape cannot be trusted, so reject it with a clean error
    // instead of a cascade of shape violations.
    match value.get("schema_version").and_then(|v| v.as_u64()) {
        Some(v) if v == u64::from(REPORT_SCHEMA_VERSION) => {}
        Some(v) => {
            return fail(
                "report schema",
                format!(
                    "{path}: schema_version {v} is not supported — this binary \
                     reads v{REPORT_SCHEMA_VERSION}"
                ),
            )
        }
        None => {
            return fail(
                "report schema",
                format!(
                    "{path}: missing schema_version — not a whatsup-sim report, \
                     or one predating the versioned schema"
                ),
            )
        }
    }
    // The summary shape `run` promises: every key a downstream consumer
    // (CI, dashboards) relies on, with sane ranges.
    let scores = value.get("scores");
    let checks: [(&str, bool); 6] = [
        (
            "protocol is a string",
            value.get("protocol").and_then(|v| v.as_str()).is_some(),
        ),
        (
            "dataset is a string",
            value.get("dataset").and_then(|v| v.as_str()).is_some(),
        ),
        (
            "n_nodes is a positive number",
            value
                .get("n_nodes")
                .and_then(|v| v.as_u64())
                .is_some_and(|n| n > 0),
        ),
        (
            "cycles is a positive number",
            value
                .get("cycles")
                .and_then(|v| v.as_u64())
                .is_some_and(|n| n > 0),
        ),
        (
            "scores.{precision,recall,f1} are probabilities",
            scores.is_some_and(|s| {
                ["precision", "recall", "f1"].iter().all(|k| {
                    s.get(k)
                        .and_then(|v| v.as_f64())
                        .is_some_and(|x| (0.0..=1.0).contains(&x))
                })
            }),
        ),
        (
            "message counters are numbers",
            ["news_messages", "news_messages_all", "gossip_messages"]
                .iter()
                .all(|k| value.get(k).and_then(|v| v.as_f64()).is_some()),
        ),
    ];
    for (what, ok) in checks {
        if !ok {
            return fail("report shape", format!("{path}: {what} — violated"));
        }
    }
    // Per-cycle series: every column an equally long array of numbers (the
    // derived recall/precision columns allow null on quiet cycles).
    let Some(series) = value.get("series") else {
        return fail("report shape", format!("{path}: series object missing"));
    };
    let mut column_len = None;
    for key in SERIES_COLUMNS {
        let Some(column) = series.get(key).and_then(|c| c.as_array()) else {
            return fail(
                "report shape",
                format!("{path}: series.{key} is not an array"),
            );
        };
        if *column_len.get_or_insert(column.len()) != column.len() {
            return fail(
                "report shape",
                format!("{path}: series.{key} length differs from its siblings"),
            );
        }
        if !column
            .iter()
            .all(|v| v.as_f64().is_some() || matches!(v, serde::json::Value::Null))
        {
            return fail(
                "report shape",
                format!("{path}: series.{key} holds a non-number"),
            );
        }
    }
    // Measurement windows: named, cycle-ranged, with probability scores;
    // recovery is null or a metrics object.
    let Some(windows) = value.get("windows").and_then(|w| w.as_array()) else {
        return fail("report shape", format!("{path}: windows array missing"));
    };
    let mut recoveries = 0usize;
    for w in windows {
        let name = w.get("name").and_then(|n| n.as_str());
        let Some(name) = name.filter(|n| !n.is_empty()) else {
            return fail(
                "report shape",
                format!("{path}: window without a non-empty name"),
            );
        };
        let shaped = w.get("from").and_then(|v| v.as_u64()).is_some()
            && w.get("until").and_then(|v| v.as_u64()).is_some()
            && w.get("scores").is_some_and(|s| {
                ["precision", "recall", "f1"].iter().all(|k| {
                    s.get(k)
                        .and_then(|v| v.as_f64())
                        .is_some_and(|x| (0.0..=1.0).contains(&x))
                })
            });
        if !shaped {
            return fail(
                "report shape",
                format!("{path}: window {name:?} is missing cycles or scores"),
            );
        }
        match w.get("recovery") {
            Some(serde::json::Value::Null) | None => {}
            Some(r) => {
                let shaped = ["anchor", "baseline_recall", "dip_depth", "messages_spent"]
                    .iter()
                    .all(|k| r.get(k).and_then(|v| v.as_f64()).is_some());
                if !shaped {
                    return fail(
                        "report shape",
                        format!("{path}: window {name:?} has a malformed recovery block"),
                    );
                }
                recoveries += 1;
            }
        }
    }
    if require_recovery && recoveries == 0 {
        return fail(
            "report shape",
            format!("{path}: no window carries recovery metrics (--require-recovery)"),
        );
    }
    println!(
        "{path}: ok ({} windows, {recoveries} with recovery)",
        windows.len()
    );
    ExitCode::SUCCESS
}

/// The process's peak resident set in MiB (`VmHWM`, Linux); 0 elsewhere.
/// On the external transports this covers the driver process only — the
/// shard workers account for their own memory.
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().strip_suffix("kB"))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

fn echo(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    match load(path) {
        Ok(file) => {
            println!("{}", file.to_json().pretty());
            ExitCode::SUCCESS
        }
        Err(e) => fail("invalid scenario", e),
    }
}
