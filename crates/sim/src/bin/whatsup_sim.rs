//! `whatsup-sim`: run a scenario file to a report JSON.
//!
//! ```text
//! whatsup-sim run <scenario.json> [--out <report.json>] [--shards N]
//!                 [--multiprocess <sim-shard-worker path>]
//!                 [--transport socket --workers host:port,…]
//! whatsup-sim check <report.json>
//! whatsup-sim echo <scenario.json>
//! ```
//!
//! * `run` executes the scenario (dataset recipe + protocol + config +
//!   scenario grammar — see the `whatsup_sim::scenario` module docs for the
//!   JSON schema) and writes the report summary JSON to `--out` (stdout by
//!   default). Reports are a pure function of the file: bit-identical
//!   across `--shards` values and across the in-process, child-process and
//!   socket transports. `--transport socket` dials already-running
//!   `sim-shard-worker --listen` processes, one address per shard, in
//!   shard order — start the workers first, then the driver (see the
//!   engine module docs' "distributed topology" section).
//! * `check` parses a report produced by `run` and verifies its shape —
//!   the CI smoke test.
//! * `echo` parses, validates and re-renders a scenario file in canonical
//!   form (round-trip check / formatter).

use std::process::ExitCode;
use whatsup_sim::{Runner, ScenarioFile, Transport};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  whatsup-sim run <scenario.json> [--out <report.json>] [--shards N] \
         [--multiprocess <worker>] [--transport in-process|process|socket] \
         [--workers host:port,...]\n  whatsup-sim check <report.json>\n  \
         whatsup-sim echo <scenario.json>"
    );
    ExitCode::from(2)
}

fn fail(what: &str, err: impl std::fmt::Display) -> ExitCode {
    eprintln!("whatsup-sim: {what}: {err}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("echo") => echo(&args[1..]),
        _ => usage(),
    }
}

/// Folds the `--transport` / `--multiprocess` / `--workers` flags into one
/// [`Transport`], rejecting contradictory combinations.
fn resolve_transport(
    kind: Option<String>,
    worker: Option<String>,
    workers: Option<String>,
    shards: Option<usize>,
) -> Result<Transport, String> {
    // `--multiprocess <path>` keeps working as a shorthand for
    // `--transport process` with the worker path attached.
    let kind = match (kind.as_deref(), &worker) {
        (None, Some(_)) => "process",
        (Some(k), _) => k,
        (None, None) => "in-process",
    };
    match kind {
        "in-process" => {
            if workers.is_some() {
                return Err("--workers only applies to --transport socket".into());
            }
            if worker.is_some() {
                return Err("--multiprocess conflicts with --transport in-process".into());
            }
            Ok(Transport::InProcess)
        }
        "process" => {
            if workers.is_some() {
                return Err("--workers only applies to --transport socket".into());
            }
            let worker = worker.ok_or("--transport process needs --multiprocess <worker path>")?;
            Ok(Transport::Process(worker.into()))
        }
        "socket" => {
            if worker.is_some() {
                return Err("--multiprocess conflicts with --transport socket".into());
            }
            if shards.is_some() {
                return Err(
                    "--shards conflicts with --transport socket (the shard count is the \
                     worker count)"
                        .into(),
                );
            }
            let list = workers.ok_or("--transport socket needs --workers host:port,...")?;
            Ok(Transport::Socket(Transport::parse_workers(&list)?))
        }
        other => Err(format!(
            "unknown transport '{other}' (expected in-process, process or socket)"
        )),
    }
}

fn load(path: &str) -> Result<ScenarioFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    ScenarioFile::from_json_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut out = None;
    let mut shards = None;
    let mut worker = None;
    let mut transport_kind = None;
    let mut workers = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(v) if !v.starts_with("--") => out = Some(v.clone()),
                _ => return usage(),
            },
            "--shards" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => shards = Some(n),
                None => return usage(),
            },
            "--multiprocess" => match it.next() {
                Some(v) if !v.starts_with("--") => worker = Some(v.clone()),
                _ => return usage(),
            },
            "--transport" => match it.next() {
                Some(v) if !v.starts_with("--") => transport_kind = Some(v.clone()),
                _ => return usage(),
            },
            "--workers" => match it.next() {
                Some(v) if !v.starts_with("--") => workers = Some(v.clone()),
                _ => return usage(),
            },
            flag if flag.starts_with("--") => return usage(),
            _ if path.is_none() => path = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    let transport = match resolve_transport(transport_kind, worker, workers, shards) {
        Ok(t) => t,
        Err(e) => return fail("invalid transport", e),
    };
    let file = match load(&path) {
        Ok(file) => file,
        Err(e) => return fail("invalid scenario", e),
    };
    if let Err(e) = file.scenario.validate_for_global(&file.protocol) {
        return fail("invalid scenario", format!("{path}: {e}"));
    }
    let dataset = file.dataset.build();
    // Event node ids can only be range-checked once the dataset size is
    // known — catch them here instead of panicking mid-run.
    if let Err(e) = file.scenario.validate_events(dataset.n_users()) {
        return fail("invalid scenario", format!("{path}: {e}"));
    }
    let mut runner = Runner::new(&dataset, file.protocol)
        .config(file.config.clone())
        .scenario(file.scenario.clone())
        .transport(transport);
    if let Some(n) = shards {
        runner = runner.shards(n);
    }
    let report = match runner.try_run() {
        Ok(report) => report,
        Err(e) => return fail("run failed", e),
    };
    let json = report.summary_json().pretty();
    match out {
        None => {
            // write_all instead of println!: a closed pipe (e.g. `| head`)
            // is a normal way for the consumer to stop reading, not a
            // crash — but any other write failure must flip the exit code.
            use std::io::Write;
            let mut stdout = std::io::stdout();
            match stdout
                .write_all(json.as_bytes())
                .and_then(|()| stdout.write_all(b"\n"))
                .and_then(|()| stdout.flush())
            {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
                Err(e) => fail("cannot write report to stdout", e),
            }
        }
        Some(out) => match std::fs::write(&out, json + "\n") {
            Ok(()) => {
                eprintln!(
                    "wrote {out}: {} on {} ({} nodes, F1 {:.3})",
                    report.protocol,
                    report.dataset,
                    report.n_nodes,
                    report.scores().f1
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail("cannot write report", format!("{out}: {e}")),
        },
    }
}

fn check(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return fail("cannot read report", format!("{path}: {e}")),
    };
    let value = match serde::json::parse(&text) {
        Ok(value) => value,
        Err(e) => return fail("report is not valid JSON", e),
    };
    // The summary shape `run` promises: every key a downstream consumer
    // (CI, dashboards) relies on, with sane ranges.
    let scores = value.get("scores");
    let checks: [(&str, bool); 6] = [
        (
            "protocol is a string",
            value.get("protocol").and_then(|v| v.as_str()).is_some(),
        ),
        (
            "dataset is a string",
            value.get("dataset").and_then(|v| v.as_str()).is_some(),
        ),
        (
            "n_nodes is a positive number",
            value
                .get("n_nodes")
                .and_then(|v| v.as_u64())
                .is_some_and(|n| n > 0),
        ),
        (
            "cycles is a positive number",
            value
                .get("cycles")
                .and_then(|v| v.as_u64())
                .is_some_and(|n| n > 0),
        ),
        (
            "scores.{precision,recall,f1} are probabilities",
            scores.is_some_and(|s| {
                ["precision", "recall", "f1"].iter().all(|k| {
                    s.get(k)
                        .and_then(|v| v.as_f64())
                        .is_some_and(|x| (0.0..=1.0).contains(&x))
                })
            }),
        ),
        (
            "message counters are numbers",
            ["news_messages", "news_messages_all", "gossip_messages"]
                .iter()
                .all(|k| value.get(k).and_then(|v| v.as_f64()).is_some()),
        ),
    ];
    for (what, ok) in checks {
        if !ok {
            return fail("report shape", format!("{path}: {what} — violated"));
        }
    }
    println!("{path}: ok");
    ExitCode::SUCCESS
}

fn echo(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    match load(path) {
        Ok(file) => {
            println!("{}", file.to_json().pretty());
            ExitCode::SUCCESS
        }
        Err(e) => fail("invalid scenario", e),
    }
}
