//! Alternative dissemination engines beyond the per-node gossip stack.
//!
//! # Four-way engine comparison
//!
//! | Engine | Assumptions | Message complexity | Failure model |
//! |---|---|---|---|
//! | **BEEP gossip** (`crate::engine`, protocols `whatsup`/`gossip`/`cf_*`) | Per-node state only; partial views via RPS/WUP sampling; no global knowledge | Per item: `O(reached · fanout)` push copies, plus a steady `O(n · view)` gossip layer per cycle | Crash-stop with instant cold rejoin from a contact's view; hard timeouts implicit in view aging; loses profile/view/seen state |
//! | **Cascade** ([`cascade`]) | Explicit social graph, global knowledge of edges; forwards only on likes | Per item: `O(Σ likers' degrees)` — bounded by the likers' neighborhoods, which caps recall | None: the walk is a one-shot BFS, nodes never fail |
//! | **Centralized pub/sub & C-WhatsUp** ([`pubsub`], [`centralized`]) | Omniscient reliable server; complete subscription/interest knowledge | Per item: exactly one message per subscriber (pub/sub) or per selected receiver (C-WhatsUp) | None: the server is assumed reliable (scenario validation rejects churn/loss for these) |
//! | **Anti-entropy** ([`antientropy`]) | Full membership list known; only *state* is reconciled; versioned single-writer records | Per cycle: `O(n · fanout)` datagrams of ≤ `datagram_budget` bytes each, independent of item count (keys batch into deltas); eventual delivery | Phi-accrual suspicion from heartbeat inter-arrival history — a continuous scale, no hard timeout; crashes have real downtime and rejoin with a bumped incarnation |
//!
//! Cascade and the centralized engines do not run per-cycle: they walk a
//! server-side model once per item ([`Runner`] validates that scenarios
//! with environments/events are not asked of them). The anti-entropy
//! engine *is* per-cycle and supports the full scenario grid, which is
//! what makes its recovery metrics comparable against BEEP's.
//!
//! [`run_protocol`] dispatches uniformly so sweeps and harnesses treat all
//! protocols alike.

pub mod antientropy;
pub mod cascade;
pub mod centralized;
pub mod pubsub;

use crate::config::{Protocol, SimConfig};
use crate::record::{ItemRecord, SimReport};
use crate::runner::Runner;
use whatsup_datasets::Dataset;
use whatsup_metrics::{CycleSeries, CycleStats};

/// Runs any protocol over a dataset and returns its report (the classic
/// entry point, kept as a thin [`Runner`] shorthand).
pub fn run_protocol(dataset: &Dataset, protocol: Protocol, cfg: &SimConfig) -> SimReport {
    Runner::new(dataset, protocol).config(cfg.clone()).run()
}

/// Folds per-item records into a per-cycle series for the one-shot
/// engines (cascade, pub/sub, centralized): each item's walk completes
/// within its publication cycle, so everything it caused lands there.
/// `live_nodes` stays the full population — these engines have no churn —
/// and `gossip_sent` stays zero — they have no gossip layer.
pub(crate) fn series_from_items(
    items: &[ItemRecord],
    cfg: &SimConfig,
    n_nodes: usize,
) -> CycleSeries {
    if !cfg.collect_series {
        return CycleSeries::default();
    }
    let mut stats = vec![CycleStats::default(); cfg.cycles as usize];
    for rec in items {
        let Some(s) = stats.get_mut(rec.published_at as usize) else {
            continue;
        };
        s.first_receptions += u64::from(rec.reached);
        s.hits += u64::from(rec.hits);
        s.interested += u64::from(rec.interested);
        s.news_sent += rec.news_sent;
    }
    let mut series = CycleSeries::new();
    for mut s in stats {
        s.live_nodes = n_nodes as u64;
        series.push(s);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_datasets::{digg, DiggConfig};

    #[test]
    fn dispatch_covers_all_protocols() {
        let d = digg::generate(&DiggConfig::paper().scaled(0.06), 3);
        let cfg = SimConfig {
            cycles: 12,
            publish_from: 1,
            measure_from: 4,
            ..Default::default()
        };
        for p in [
            Protocol::WhatsUp { f_like: 3 },
            Protocol::Cascade,
            Protocol::CPubSub,
            Protocol::CWhatsUp { f_like: 3 },
            Protocol::AntiEntropy { fanout: 3 },
        ] {
            let r = run_protocol(&d, p, &cfg);
            assert_eq!(r.protocol, p.label());
            assert!(r.measured_items() > 0, "{} produced no items", p.label());
        }
    }
}
