//! Alternative dissemination engines: the paper's non-gossip baselines.
//!
//! These do not run on the per-node `whatsup-core` stack: cascade walks the
//! explicit social graph, and the two centralized engines (`C-Pub/Sub`,
//! `C-WhatsUp`) assume a server with global knowledge. [`run_protocol`]
//! dispatches uniformly so sweeps and harnesses treat all protocols alike.

pub mod cascade;
pub mod centralized;
pub mod pubsub;

use crate::config::{Protocol, SimConfig};
use crate::record::SimReport;
use crate::runner::Runner;
use whatsup_datasets::Dataset;

/// Runs any protocol over a dataset and returns its report (the classic
/// entry point, kept as a thin [`Runner`] shorthand).
pub fn run_protocol(dataset: &Dataset, protocol: Protocol, cfg: &SimConfig) -> SimReport {
    Runner::new(dataset, protocol).config(cfg.clone()).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_datasets::{digg, DiggConfig};

    #[test]
    fn dispatch_covers_all_protocols() {
        let d = digg::generate(&DiggConfig::paper().scaled(0.06), 3);
        let cfg = SimConfig {
            cycles: 12,
            publish_from: 1,
            measure_from: 4,
            ..Default::default()
        };
        for p in [
            Protocol::WhatsUp { f_like: 3 },
            Protocol::Cascade,
            Protocol::CPubSub,
            Protocol::CWhatsUp { f_like: 3 },
        ] {
            let r = run_protocol(&d, p, &cfg);
            assert_eq!(r.protocol, p.label());
            assert!(r.measured_items() > 0, "{} produced no items", p.label());
        }
    }
}
