//! Delta packing: greedy fill of one datagram's byte budget with the
//! entries a digest proved the peer is missing (chitchat's UDP sizing).

use super::digest::DigestIndex;
use super::state::Replica;
use whatsup_core::NodeId;
use whatsup_net::codec::{DeltaEntry, ANTI_ENTROPY_HEADER_BYTES};

/// Builds the delta a replica owes a peer, given the peer's digest:
/// owners ascending, each owner's missing entries in ascending version
/// order, greedily packed until `budget` bytes (frame header included).
/// Packing stops at the first entry that does not fit — the cut is safe
/// because ascending version order makes every prefix resumable.
///
/// The returned byte size is the exact encoded frame size; it never
/// exceeds `budget` (property-tested).
pub fn pack_delta(
    replica: &Replica,
    digest: &DigestIndex<'_>,
    budget: usize,
) -> (Vec<DeltaEntry>, usize) {
    let mut entries = Vec::new();
    let mut bytes = ANTI_ENTROPY_HEADER_BYTES;
    'owners: for (id, rec) in replica.records.iter().enumerate() {
        let node = id as NodeId;
        let Some(after) = digest.version_floor(node, rec) else {
            continue;
        };
        for entry in rec.entries_after(node, after) {
            let cost = entry.wire_bytes();
            if bytes + cost > budget {
                break 'owners;
            }
            bytes += cost;
            entries.push(entry);
        }
    }
    (entries, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_net::codec::{encode_delta, DigestLine};

    fn populated() -> Replica {
        let mut r = Replica::new(3);
        r.set_heartbeat(0, 0);
        r.set_profile(0, 0xfeed);
        for item in 0..10 {
            r.insert_news(0, item, 1);
        }
        r
    }

    #[test]
    fn packing_respects_the_budget_exactly() {
        let r = populated();
        let empty: Vec<DigestLine> = Vec::new();
        let digest = DigestIndex::new(&empty);
        for budget in [64, 80, 120, 200, 4096] {
            let (entries, bytes) = pack_delta(&r, &digest, budget);
            assert!(bytes <= budget, "{bytes} > {budget}");
            let frame = encode_delta(9, &entries).unwrap();
            assert_eq!(frame.len(), bytes, "declared size must match the encoding");
        }
    }

    #[test]
    fn tight_budget_truncates_then_resumes() {
        let r = populated();
        let empty: Vec<DigestLine> = Vec::new();
        let (first, _) = pack_delta(&r, &DigestIndex::new(&empty), 80);
        assert!(!first.is_empty());
        assert!(first.len() < 12, "80 bytes cannot hold all 12 entries");
        // Apply the partial delta, re-digest, and the next delta resumes.
        let mut peer = Replica::new(3);
        for e in &first {
            assert!(peer.apply(2, e));
        }
        let lines = peer.digest(3);
        let (second, _) = pack_delta(&r, &DigestIndex::new(&lines), 4096);
        assert_eq!(first.len() + second.len(), 12, "no entry lost at the cut");
    }

    #[test]
    fn fresh_peer_gets_nothing() {
        let r = populated();
        let lines = r.digest(3);
        let (entries, bytes) = pack_delta(&r, &DigestIndex::new(&lines), 4096);
        assert!(entries.is_empty());
        assert_eq!(bytes, ANTI_ENTROPY_HEADER_BYTES);
    }
}
