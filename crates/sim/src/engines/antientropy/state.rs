//! Versioned per-node state and the replica each node keeps of it.
//!
//! Only the owner ever writes new versions of its record — everyone else
//! replicates it verbatim through deltas. That single-writer rule is what
//! makes `(incarnation, version)` a total order per owner and the digest a
//! complete summary: "send me everything of yours newer than v".

use std::collections::BTreeMap;
use whatsup_core::NodeId;
use whatsup_net::codec::{DeltaEntry, DeltaValue, DigestLine};

/// One owner's versioned state as replicated across the network.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeRecord {
    /// Bumped every time the owner rejoins after a crash; a higher
    /// incarnation replaces the record wholesale.
    pub incarnation: u32,
    /// `(version, cycle stamp)` of the owner's latest heartbeat.
    pub heartbeat: Option<(u64, u32)>,
    /// `(version, digest)` of the owner's interest profile.
    pub profile: Option<(u64, u64)>,
    /// Owned news keys: item index → `(version, publication cycle)`.
    pub news: BTreeMap<u32, (u64, u32)>,
    /// Highest version present in this copy of the record (the digest
    /// line; for a partial copy this is the resume point).
    pub max_version: u64,
}

impl NodeRecord {
    /// All entries with `version > after`, ascending by version, as wire
    /// entries for owner `node`. Ascending order is the convergence
    /// invariant: a budget cut mid-list leaves `max_version` at exactly
    /// the last applied entry, so the next digest resumes from the cut.
    pub fn entries_after(&self, node: NodeId, after: u64) -> Vec<DeltaEntry> {
        let mut out = Vec::new();
        if let Some((v, cycle)) = self.heartbeat {
            if v > after {
                out.push(self.entry(node, v, DeltaValue::Heartbeat(cycle)));
            }
        }
        if let Some((v, digest)) = self.profile {
            if v > after {
                out.push(self.entry(node, v, DeltaValue::ProfileDigest(digest)));
            }
        }
        for (&item, &(v, published_at)) in &self.news {
            if v > after {
                out.push(self.entry(node, v, DeltaValue::NewsKey { item, published_at }));
            }
        }
        out.sort_unstable_by_key(|e| e.version);
        out
    }

    fn entry(&self, node: NodeId, version: u64, value: DeltaValue) -> DeltaEntry {
        DeltaEntry {
            node,
            incarnation: self.incarnation,
            version,
            value,
        }
    }
}

/// One node's replica of the whole population's records, plus its own
/// version counter (for the record it owns).
#[derive(Debug, Clone, Default)]
pub struct Replica {
    /// Indexed by owner id; missing/default = nothing known yet.
    pub records: Vec<NodeRecord>,
    /// The owner-side version counter for this replica's own record.
    pub next_version: u64,
}

impl Replica {
    /// Fresh replica knowing nothing (all records empty at incarnation 0).
    pub fn new(n: usize) -> Self {
        Replica {
            records: vec![NodeRecord::default(); n],
            next_version: 0,
        }
    }

    fn record_mut(&mut self, node: NodeId) -> &mut NodeRecord {
        let idx = node as usize;
        if idx >= self.records.len() {
            self.records.resize(idx + 1, NodeRecord::default());
        }
        &mut self.records[idx]
    }

    /// Allocates the next version of this replica's own record.
    pub fn bump(&mut self) -> u64 {
        self.next_version += 1;
        self.next_version
    }

    /// Owner-side write: stamps the own record's heartbeat at `cycle`.
    pub fn set_heartbeat(&mut self, own: NodeId, cycle: u32) {
        let v = self.bump();
        let rec = self.record_mut(own);
        rec.heartbeat = Some((v, cycle));
        rec.max_version = v;
    }

    /// Owner-side write: publishes the own profile digest.
    pub fn set_profile(&mut self, own: NodeId, digest: u64) {
        let v = self.bump();
        let rec = self.record_mut(own);
        rec.profile = Some((v, digest));
        rec.max_version = v;
    }

    /// Owner-side write: inserts (or re-inserts after a crash) a news key.
    pub fn insert_news(&mut self, own: NodeId, item: u32, published_at: u32) {
        let v = self.bump();
        let rec = self.record_mut(own);
        rec.news.insert(item, (v, published_at));
        rec.max_version = v;
    }

    /// The digest over every node this replica knows of (`0..n`): the
    /// highest `(incarnation, version)` held per owner. `n` is the current
    /// population so late joiners are advertised as `(0, 0)` and peers
    /// fill them in.
    pub fn digest(&self, n: usize) -> Vec<DigestLine> {
        (0..n)
            .map(|id| {
                let rec = self.records.get(id);
                DigestLine {
                    node: id as NodeId,
                    incarnation: rec.map_or(0, |r| r.incarnation),
                    max_version: rec.map_or(0, |r| r.max_version),
                }
            })
            .collect()
    }

    /// Applies one delta entry; returns `true` if the entry was new (and
    /// therefore mutated the replica). Entries for `own` are ignored —
    /// the owner is the single writer of its record.
    pub fn apply(&mut self, own: NodeId, e: &DeltaEntry) -> bool {
        if e.node == own {
            return false;
        }
        let rec = self.record_mut(e.node);
        if e.incarnation < rec.incarnation {
            return false;
        }
        if e.incarnation > rec.incarnation {
            // The owner rejoined: its old record is dead state.
            *rec = NodeRecord {
                incarnation: e.incarnation,
                ..NodeRecord::default()
            };
        }
        let newer = match e.value {
            DeltaValue::Heartbeat(cycle) => {
                if rec.heartbeat.is_none_or(|(v, _)| e.version > v) {
                    rec.heartbeat = Some((e.version, cycle));
                    true
                } else {
                    false
                }
            }
            DeltaValue::ProfileDigest(digest) => {
                if rec.profile.is_none_or(|(v, _)| e.version > v) {
                    rec.profile = Some((e.version, digest));
                    true
                } else {
                    false
                }
            }
            DeltaValue::NewsKey { item, published_at } => {
                let slot = rec.news.get(&item);
                if slot.is_none_or(|&(v, _)| e.version > v) {
                    rec.news.insert(item, (e.version, published_at));
                    true
                } else {
                    false
                }
            }
        };
        if newer {
            rec.max_version = rec.max_version.max(e.version);
        }
        newer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_writes_are_monotone_and_digested() {
        let mut r = Replica::new(3);
        r.set_heartbeat(1, 0);
        r.set_profile(1, 0xabcd);
        r.insert_news(1, 7, 2);
        let d = r.digest(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d[1].max_version, 3);
        assert_eq!(d[0].max_version, 0);
        let entries = r.records[1].entries_after(1, 0);
        assert_eq!(entries.len(), 3);
        assert!(entries.windows(2).all(|w| w[0].version < w[1].version));
        assert_eq!(r.records[1].entries_after(1, 2).len(), 1);
    }

    #[test]
    fn apply_is_idempotent_and_version_gated() {
        let mut owner = Replica::new(2);
        owner.set_heartbeat(0, 5);
        let entries = owner.records[0].entries_after(0, 0);
        let mut peer = Replica::new(2);
        assert!(peer.apply(1, &entries[0]));
        assert!(!peer.apply(1, &entries[0]), "re-apply must be a no-op");
        assert_eq!(peer.records[0].heartbeat, Some((1, 5)));
        // Own record is never writable through deltas.
        assert!(!peer.apply(0, &entries[0]));
    }

    #[test]
    fn higher_incarnation_replaces_the_record() {
        let mut peer = Replica::new(2);
        peer.apply(
            1,
            &DeltaEntry {
                node: 0,
                incarnation: 0,
                version: 9,
                value: DeltaValue::NewsKey {
                    item: 3,
                    published_at: 1,
                },
            },
        );
        assert_eq!(peer.records[0].max_version, 9);
        // Incarnation 1 arrives: the old news key is dead state.
        peer.apply(
            1,
            &DeltaEntry {
                node: 0,
                incarnation: 1,
                version: 1,
                value: DeltaValue::Heartbeat(4),
            },
        );
        assert_eq!(peer.records[0].incarnation, 1);
        assert_eq!(peer.records[0].max_version, 1);
        assert!(peer.records[0].news.is_empty());
        // Stale incarnation-0 entries are ignored from now on.
        assert!(!peer.apply(
            1,
            &DeltaEntry {
                node: 0,
                incarnation: 0,
                version: 10,
                value: DeltaValue::Heartbeat(2),
            }
        ));
    }
}
