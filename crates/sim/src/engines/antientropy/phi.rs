//! Phi-accrual failure detection (Hayashibara et al.) in cycle units.
//!
//! Every node keeps, per peer, the cycles between *observed heartbeat
//! advances* — an advance is seeing a strictly newer `(incarnation,
//! heartbeat version)` for the peer through any gossip path. Suspicion is
//! continuous: `φ = -log10 P(staleness)` under an exponential
//! inter-arrival model, i.e. `φ = 0.434 · staleness / mean interval`.
//! The caller compares φ against a threshold; nothing here is a hard
//! timeout, so a slow-but-alive peer accrues suspicion smoothly and a
//! single fresh heartbeat clears it.

use whatsup_core::NodeId;

/// log10(e): converts the exponential tail exponent to φ's log10 scale.
const LOG10_E: f64 = std::f64::consts::LOG10_E;

/// Inter-arrival samples kept per peer (chitchat uses a sliding window
/// too; a short one adapts quickly after churn).
const WINDOW: usize = 8;

/// Per-peer arrival history inside one observer.
#[derive(Debug, Clone, Default)]
struct PeerHistory {
    /// Highest `(incarnation, heartbeat version)` observed.
    last_seen: (u32, u64),
    /// Cycle of the last observed advance.
    last_change: u32,
    /// Ring of the last [`WINDOW`] inter-arrival intervals, in cycles.
    intervals: Vec<f64>,
    next_slot: usize,
}

impl PeerHistory {
    fn record(&mut self, cycle: u32) {
        let gap = f64::from(cycle - self.last_change);
        if gap > 0.0 {
            if self.intervals.len() < WINDOW {
                self.intervals.push(gap);
            } else {
                self.intervals[self.next_slot] = gap;
            }
            self.next_slot = (self.next_slot + 1) % WINDOW;
        }
        self.last_change = cycle;
    }

    fn phi(&self, now: u32) -> f64 {
        // Under two samples there is no cadence to be suspicious against.
        if self.intervals.len() < 2 {
            return 0.0;
        }
        let mean = self.intervals.iter().sum::<f64>() / self.intervals.len() as f64;
        let staleness = f64::from(now.saturating_sub(self.last_change));
        LOG10_E * staleness / mean.max(f64::EPSILON)
    }
}

/// One node's phi-accrual detector over all of its peers.
#[derive(Debug, Clone, Default)]
pub struct PhiDetector {
    peers: Vec<PeerHistory>,
}

impl PhiDetector {
    pub fn new(n: usize) -> Self {
        PhiDetector {
            peers: vec![PeerHistory::default(); n],
        }
    }

    fn peer_mut(&mut self, peer: NodeId) -> &mut PeerHistory {
        let idx = peer as usize;
        if idx >= self.peers.len() {
            self.peers.resize(idx + 1, PeerHistory::default());
        }
        &mut self.peers[idx]
    }

    /// Feeds one observed heartbeat for `peer`. Only a strictly newer
    /// `(incarnation, version)` counts as an arrival; replays of state the
    /// observer already had do not reset staleness.
    pub fn observe(&mut self, peer: NodeId, incarnation: u32, version: u64, cycle: u32) {
        let h = self.peer_mut(peer);
        if (incarnation, version) > h.last_seen {
            h.last_seen = (incarnation, version);
            h.record(cycle);
        }
    }

    /// Current suspicion level for `peer` at `now`.
    pub fn phi(&self, peer: NodeId, now: u32) -> f64 {
        self.peers.get(peer as usize).map_or(0.0, |h| h.phi(now))
    }

    /// Whether `peer` is suspected at `now` under `threshold`.
    pub fn suspects(&self, peer: NodeId, now: u32, threshold: f64) -> bool {
        self.phi(peer, now) > threshold
    }

    /// Clears all history (the observer itself crashed and cold-starts).
    pub fn reset(&mut self) {
        self.peers
            .iter_mut()
            .for_each(|h| *h = PeerHistory::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_grows_with_staleness_and_clears_on_arrival() {
        let mut d = PhiDetector::new(2);
        // Heartbeats observed every cycle for a while.
        for c in 1..=5 {
            d.observe(1, 0, c as u64, c);
        }
        assert!(d.phi(1, 5) < 0.1);
        // Staleness accrues: φ at 3 cycles > φ at 1 cycle.
        assert!(d.phi(1, 8) > d.phi(1, 6));
        assert!(d.suspects(1, 12, 1.0), "7 cycles stale at cadence 1");
        // One fresh heartbeat clears the suspicion entirely.
        d.observe(1, 0, 6, 12);
        assert!(d.phi(1, 12) < 0.1);
    }

    #[test]
    fn replays_do_not_reset_staleness() {
        let mut d = PhiDetector::new(2);
        d.observe(1, 0, 1, 1);
        d.observe(1, 0, 2, 2);
        d.observe(1, 0, 3, 3);
        let before = d.phi(1, 9);
        d.observe(1, 0, 3, 9); // same version again: not an arrival
        assert_eq!(d.phi(1, 9), before);
        // A newer incarnation at a lower version is an arrival.
        d.observe(1, 1, 1, 9);
        assert!(d.phi(1, 9) < before);
    }

    #[test]
    fn too_little_history_never_suspects() {
        let mut d = PhiDetector::new(2);
        assert!(!d.suspects(1, 50, 0.1));
        d.observe(1, 0, 1, 1);
        assert!(!d.suspects(1, 50, 0.1), "one sample is no cadence");
    }
}
