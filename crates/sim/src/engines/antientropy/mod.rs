//! Scuttlebutt anti-entropy with phi-accrual failure detection.
//!
//! The modern point of comparison the ROADMAP asks for: instead of BEEP's
//! push gossip with hard crash timeouts, every node keeps a *versioned
//! replica* of the whole population's state (heartbeat, profile digest,
//! owned news keys — one monotone version counter per owner) and
//! reconciles it pairwise, Cassandra/chitchat style:
//!
//! 1. **Syn** — the initiator sends a compact digest: per known node, the
//!    highest `(incarnation, version)` it holds.
//! 2. **SynAck** — the responder answers with a delta (entries strictly
//!    newer than the digest, greedily packed to
//!    [`crate::config::SimConfig::datagram_budget`] bytes) plus its own
//!    digest.
//! 3. **Ack** — the initiator closes with the delta the responder's digest
//!    asks for.
//!
//! Partial deltas are first-class: entries for one owner are always packed
//! in ascending version order, so a budget-truncated exchange leaves the
//! receiver's per-owner maximum at a resumable point and repeated rounds
//! converge (property-tested in `crates/sim/tests/antientropy.rs`).
//!
//! **Failure detection** is phi-accrual instead of a hard timeout: each
//! node tracks, per peer, the history of cycles between *observed
//! heartbeat advances* (an advance arrives through any gossip path) and
//! computes `φ = log10-scale suspicion = 0.434 · staleness / mean
//! interval`. A peer is suspected when φ exceeds
//! [`crate::config::SimConfig::phi_threshold`]; suspected peers are
//! excluded from partner selection until a fresh heartbeat clears them.
//! Crashed nodes stay dark for [`crate::config::SimConfig::down_cycles`]
//! cycles and rejoin with a bumped incarnation (the node engine's instant
//! resets would leave φ nothing to detect).
//!
//! News dissemination rides the same reconciliation: publishing inserts a
//! versioned *news key* into the source's own record, and the key reaches
//! every node through anti-entropy. `ItemRecord::news_sent` therefore
//! counts news-key entries packed into emitted deltas (lost datagrams
//! included), while `gossip_messages` counts the datagrams themselves —
//! news keys travel *inside* gossip datagrams, not as separate frames.
//!
//! The engine runs under the full scenario grid (crash waves, mass joins,
//! Gilbert–Elliott loss, partitions, timeline events, measurement
//! windows) with the same deterministic counter-based ChaCha8 streams as
//! the sharded engine; reports are bit-identical across repeated runs.

pub mod delta;
pub mod digest;
pub mod engine;
pub mod phi;
pub mod state;

pub use engine::{run, run_scenario, run_with_detection, DetectionReport};
