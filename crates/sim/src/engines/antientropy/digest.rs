//! Digest-side reconciliation: deciding, per owner, which versions a peer
//! is missing from the `(incarnation, max_version)` lines it advertised.

use super::state::NodeRecord;
use whatsup_core::NodeId;
use whatsup_net::codec::DigestLine;

/// Lookup over a received digest. Digest lines arrive sorted by node id
/// (the sender builds them that way); a node absent from the digest is
/// treated as `(0, 0)` — the receiver knows nothing about it, which is
/// exactly how late joiners become visible.
#[derive(Debug, Clone, Copy)]
pub struct DigestIndex<'a> {
    lines: &'a [DigestLine],
}

impl<'a> DigestIndex<'a> {
    pub fn new(lines: &'a [DigestLine]) -> Self {
        debug_assert!(
            // lint:allow(wire-panic) in bounds: windows(2) yields exactly-2-element slices
            lines.windows(2).all(|w| w[0].node < w[1].node),
            "digest lines must be sorted by node"
        );
        DigestIndex { lines }
    }

    /// The advertised `(incarnation, max_version)` for `node`.
    pub fn advertised(&self, node: NodeId) -> (u32, u64) {
        match self.lines.binary_search_by_key(&node, |l| l.node) {
            // lint:allow(wire-panic) in bounds: binary_search Ok index is always valid
            Ok(i) => (self.lines[i].incarnation, self.lines[i].max_version),
            Err(_) => (0, 0),
        }
    }

    /// The version floor to send from for `rec` (owned by `node`):
    /// `Some(after)` means "send every entry with `version > after`",
    /// `None` means the peer is already as fresh as (or fresher than) us.
    pub fn version_floor(&self, node: NodeId, rec: &NodeRecord) -> Option<u64> {
        let (inc, max_version) = self.advertised(node);
        if rec.incarnation > inc {
            // The peer holds a dead incarnation: resend everything.
            (rec.max_version > 0).then_some(0)
        } else if rec.incarnation == inc && rec.max_version > max_version {
            Some(max_version)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::state::Replica;
    use super::*;

    #[test]
    fn floors_follow_incarnation_then_version() {
        let mut r = Replica::new(2);
        r.set_heartbeat(0, 1);
        r.set_heartbeat(0, 2);
        let rec = &r.records[0];
        let line = |incarnation, max_version| {
            vec![DigestLine {
                node: 0,
                incarnation,
                max_version,
            }]
        };
        // Peer is behind on versions: send from its max.
        let lines = line(0, 1);
        assert_eq!(DigestIndex::new(&lines).version_floor(0, rec), Some(1));
        // Peer is current: nothing to send.
        let lines = line(0, 2);
        assert_eq!(DigestIndex::new(&lines).version_floor(0, rec), None);
        // Peer holds a dead incarnation: full resend.
        let mut rejoined = r.clone();
        rejoined.records[0].incarnation = 1;
        let lines = line(0, 99);
        assert_eq!(
            DigestIndex::new(&lines).version_floor(0, &rejoined.records[0]),
            Some(0)
        );
        // Peer is a fresher incarnation than us: we have nothing for it.
        let lines = line(2, 0);
        assert_eq!(DigestIndex::new(&lines).version_floor(0, rec), None);
        // Node absent from the digest counts as (0, 0).
        let empty: Vec<DigestLine> = Vec::new();
        assert_eq!(DigestIndex::new(&empty).version_floor(0, rec), Some(0));
    }
}
