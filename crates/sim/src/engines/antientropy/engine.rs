//! The anti-entropy cycle loop: heartbeats, scuttlebutt exchanges, churn
//! with real downtime, publications as news keys, and phi evaluation.
//!
//! Determinism contract (same as the sharded engine): every random draw
//! comes from a counter-based ChaCha8 stream keyed by `(seed, node,
//! cycle, phase)` or from the single driver RNG seeded with `cfg.seed`,
//! and every loop runs in ascending id order — repeated runs at the same
//! seed are bit-identical.
//!
//! Phase streams: partner selection draws from each initiator's GOSSIP
//! stream; per-delivery loss coins draw from the *receiver's* NEWS stream
//! (lazily created per cycle, sequential draws — mirroring the sharded
//! engine's receiver-side coins); Gilbert–Elliott channel flips from the
//! CHANNEL stream and crash coins from the CHURN stream use exactly the
//! sharded engine's draw rules, so the environment models mean the same
//! thing under both engines.

use super::delta::pack_delta;
use super::digest::DigestIndex;
use super::phi::PhiDetector;
use super::state::Replica;
use crate::config::SimConfig;
use crate::engine::{node_stream, phase};
use crate::oracle::{ItemIndexMap, Oracle};
use crate::record::{ItemRecord, NodeIr, SimReport};
use crate::scenario::{Event, LossModel, Scenario, WindowSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use whatsup_core::{NewsItem, NodeId};
use whatsup_datasets::Dataset;
use whatsup_metrics::{CycleSeries, CycleStats};
use whatsup_net::codec::{DeltaEntry, DeltaValue};

/// What the phi-accrual layer concluded over the run: every crash victim,
/// when it was first suspected by any live observer *while actually
/// down*, and every suspicion raised against a node that was up.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DetectionReport {
    /// The φ threshold the run used.
    pub threshold: f64,
    /// `(node, crash cycle)` for every churn-phase crash.
    pub victims: Vec<(NodeId, u32)>,
    /// `(victim, cycle)` of the first suspicion raised against each victim
    /// during one of its down windows.
    pub detections: Vec<(NodeId, u32)>,
    /// `(cycle, observer, peer)` suspicion transitions against up peers.
    pub false_positives: Vec<(u32, NodeId, NodeId)>,
}

impl DetectionReport {
    /// Victims no observer ever suspected while they were down.
    pub fn undetected(&self) -> Vec<NodeId> {
        self.victims
            .iter()
            .map(|&(v, _)| v)
            .filter(|v| !self.detections.iter().any(|&(d, _)| d == *v))
            .collect()
    }
}

/// Runs anti-entropy under the default scenario derived from `cfg`.
pub fn run(dataset: &Dataset, cfg: &SimConfig, fanout: usize) -> SimReport {
    run_scenario(dataset, cfg, &Scenario::from_config(cfg), fanout)
}

/// Runs anti-entropy under an explicit scenario.
///
/// # Panics
/// Panics if the config or scenario is invalid.
pub fn run_scenario(
    dataset: &Dataset,
    cfg: &SimConfig,
    scenario: &Scenario,
    fanout: usize,
) -> SimReport {
    run_with_detection(dataset, cfg, scenario, fanout).0
}

/// [`run_scenario`] plus the phi-accrual [`DetectionReport`].
pub fn run_with_detection(
    dataset: &Dataset,
    cfg: &SimConfig,
    scenario: &Scenario,
    fanout: usize,
) -> (SimReport, DetectionReport) {
    cfg.validate().expect("invalid simulation config");
    scenario.validate(cfg).expect("invalid scenario");
    let n = dataset.n_users();
    assert!(n > 0, "dataset has no users");
    assert!(fanout > 0, "anti-entropy needs a fanout ≥ 1");
    scenario.validate_events(n).expect("invalid scenario");

    let mut engine = Engine::new(dataset, cfg, scenario, fanout);
    for cycle in 0..cfg.cycles {
        engine.run_cycle(cycle);
    }
    engine.into_reports()
}

struct Engine<'a> {
    cfg: &'a SimConfig,
    scenario: &'a Scenario,
    fanout: usize,
    dataset_name: String,
    oracle: Oracle,
    /// Item index → publishing node.
    sources: Vec<NodeId>,
    /// Current population (grows on joins; includes down nodes).
    n: usize,
    replicas: Vec<Replica>,
    detectors: Vec<PhiDetector>,
    /// End-of-previous-cycle suspicion matrix, observer-major. Feeds
    /// partner selection and the transition bookkeeping.
    suspected: Vec<Vec<bool>>,
    up: Vec<bool>,
    rejoin_at: Vec<Option<u32>>,
    incarnation: Vec<u32>,
    /// Bumped on interest swaps so the profile digest re-propagates.
    profile_epoch: Vec<u32>,
    /// Items each source has durably published (re-inserted on rejoin).
    owned_items: Vec<Vec<u32>>,
    /// Items scheduled while their source was down, inserted at rejoin.
    pending_publish: Vec<Vec<u32>>,
    /// Gilbert–Elliott channel state; belongs to the network, survives
    /// crashes (same rule as the sharded engine).
    channel_bad: Vec<bool>,
    /// Per-receiver loss-coin streams for the current cycle.
    phase_rngs: Vec<Option<ChaCha8Rng>>,
    /// item → node → already counted as a first reception. Global and
    /// crash-proof, so re-learning state after a rejoin never recounts.
    seen: Vec<Vec<bool>>,
    /// item → node → liked, frozen at publication (source excluded).
    /// Dissemination spans cycles here, so the ground truth must be
    /// pinned: a clone joining (or an interest swap) after publication
    /// must not shift an already-published item's interested set.
    liked_at_publish: Vec<Vec<bool>>,
    records: Vec<ItemRecord>,
    per_node: Vec<NodeIr>,
    series: CycleSeries,
    cycle_stats: CycleStats,
    gossip_messages: u64,
    news_all: u64,
    news_measured: u64,
    /// Driving RNG for join references (mirrors the sharded driver).
    driver_rng: ChaCha8Rng,
    published_at_cycle: Vec<Vec<u32>>,
    detection: DetectionReport,
    cycles_run: u32,
}

impl<'a> Engine<'a> {
    fn new(dataset: &Dataset, cfg: &'a SimConfig, scenario: &'a Scenario, fanout: usize) -> Self {
        let n = dataset.n_users();
        let topics: Vec<u32> = dataset.items.iter().map(|spec| spec.topic).collect();
        let item_cycles = scenario.workload.schedule(cfg, &topics);
        let mut published_at_cycle = vec![Vec::new(); cfg.cycles as usize];
        let mut id_to_index =
            ItemIndexMap::with_capacity_and_hasher(dataset.n_items(), Default::default());
        for spec in &dataset.items {
            published_at_cycle[item_cycles[spec.index as usize] as usize].push(spec.index);
            // The id map is only needed so the oracle can be constructed;
            // anti-entropy addresses items by dataset index throughout.
            let item = NewsItem::new(
                format!("{}-news-{}", dataset.name, spec.index),
                format!("topic-{}", spec.topic),
                format!("https://news.example/{}/{}", dataset.name, spec.index),
                spec.source,
                item_cycles[spec.index as usize],
            );
            id_to_index.insert(item.id(), spec.index);
        }
        let records: Vec<ItemRecord> = dataset
            .items
            .iter()
            .map(|spec| ItemRecord {
                index: spec.index,
                published_at: item_cycles[spec.index as usize],
                measured: item_cycles[spec.index as usize] >= cfg.measure_from,
                ..ItemRecord::default()
            })
            .collect();
        let mut engine = Engine {
            cfg,
            scenario,
            fanout,
            dataset_name: dataset.name.clone(),
            oracle: Oracle::new(dataset.likes.clone(), id_to_index),
            sources: dataset.items.iter().map(|spec| spec.source).collect(),
            n,
            replicas: (0..n).map(|_| Replica::new(n)).collect(),
            detectors: (0..n).map(|_| PhiDetector::new(n)).collect(),
            suspected: vec![vec![false; n]; n],
            up: vec![true; n],
            rejoin_at: vec![None; n],
            incarnation: vec![0; n],
            profile_epoch: vec![0; n],
            owned_items: vec![Vec::new(); n],
            pending_publish: vec![Vec::new(); n],
            channel_bad: vec![false; n],
            phase_rngs: vec![None; n],
            seen: vec![vec![false; n]; dataset.n_items()],
            liked_at_publish: vec![Vec::new(); dataset.n_items()],
            records,
            per_node: vec![NodeIr::default(); n],
            series: CycleSeries::default(),
            cycle_stats: CycleStats::default(),
            gossip_messages: 0,
            news_all: 0,
            news_measured: 0,
            driver_rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            published_at_cycle,
            detection: DetectionReport {
                threshold: cfg.phi_threshold,
                ..DetectionReport::default()
            },
            cycles_run: 0,
        };
        for id in 0..n as NodeId {
            let digest = engine.profile_digest(id);
            engine.replicas[id as usize].set_profile(id, digest);
        }
        engine
    }

    /// Opaque-on-the-wire profile digest: a hash of the node's identity
    /// and interest epoch (the wire never carries profile content).
    fn profile_digest(&self, id: NodeId) -> u64 {
        let mut h = self.cfg.seed
            ^ (u64::from(id) << 32)
            ^ (u64::from(self.profile_epoch[id as usize]) << 8)
            ^ u64::from(self.incarnation[id as usize]);
        // SplitMix64 finalizer.
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }

    fn run_cycle(&mut self, cycle: u32) {
        // --- Cycle start: rejoins, mass joins, timeline events -----------
        for id in 0..self.n {
            if self.rejoin_at[id] == Some(cycle) {
                self.rejoin(id as NodeId);
            }
        }
        for _ in 0..self.scenario.environment.churn.joins_at(cycle) {
            let reference = self.driver_rng.gen_range(0..self.n) as NodeId;
            self.join_clone(reference);
        }
        let due: Vec<Event> = self
            .scenario
            .events
            .iter()
            .filter(|e| e.at == cycle)
            .map(|e| e.event)
            .collect();
        for event in due {
            self.apply_event(event);
        }

        // --- Heartbeats: every up node stamps the cycle ------------------
        for id in 0..self.n {
            if self.up[id] {
                self.replicas[id].set_heartbeat(id as NodeId, cycle);
            }
        }

        // --- Environment for this cycle ----------------------------------
        self.advance_channels(cycle);
        self.phase_rngs.iter_mut().for_each(|r| *r = None);
        let cut = self.partition_cut(cycle);

        // --- Gossip: every up node initiates `fanout` exchanges ----------
        for u in 0..self.n {
            if !self.up[u] {
                continue;
            }
            for v in self.select_partners(u as NodeId, cycle) {
                self.exchange(u as NodeId, v, cycle, cut);
            }
        }

        // --- Churn: crash coins from each node's CHURN stream ------------
        let rate = self.scenario.environment.churn.crash_rate(cycle);
        if rate > 0.0 && self.n > 1 {
            for id in 0..self.n {
                if !self.up[id] {
                    continue;
                }
                let mut rng = node_stream(self.cfg.seed, id as NodeId, cycle, phase::CHURN);
                if rng.gen_bool(rate) {
                    self.crash(id as NodeId, cycle);
                }
            }
        }

        // --- Publications ------------------------------------------------
        let indices = std::mem::take(&mut self.published_at_cycle[cycle as usize]);
        for index in indices {
            self.publish(index, cycle);
        }

        // --- Phi evaluation + suspicion transitions ----------------------
        self.evaluate_suspicion(cycle);

        // --- Measurement flush -------------------------------------------
        let mut stats = std::mem::take(&mut self.cycle_stats);
        stats.live_nodes = self.n as u64;
        if self.cfg.collect_series {
            self.series.push(stats);
        }
        self.cycles_run = cycle + 1;
    }

    // --- Membership ------------------------------------------------------

    fn join_clone(&mut self, reference: NodeId) {
        let id = self.oracle.add_clone_of(reference);
        debug_assert_eq!(id as usize, self.n);
        self.n += 1;
        self.replicas.push(Replica::new(self.n));
        self.detectors.push(PhiDetector::new(self.n));
        self.suspected.push(vec![false; self.n]);
        self.up.push(true);
        self.rejoin_at.push(None);
        self.incarnation.push(0);
        self.profile_epoch.push(0);
        self.owned_items.push(Vec::new());
        self.pending_publish.push(Vec::new());
        self.channel_bad.push(false);
        self.phase_rngs.push(None);
        self.per_node.push(NodeIr::default());
        let digest = self.profile_digest(id);
        self.replicas[id as usize].set_profile(id, digest);
    }

    fn crash(&mut self, id: NodeId, cycle: u32) {
        self.up[id as usize] = false;
        self.rejoin_at[id as usize] = Some(cycle + self.cfg.down_cycles);
        self.cycle_stats.crashed += 1;
        self.detection.victims.push((id, cycle));
    }

    /// Rejoin after downtime: bumped incarnation, cold replica, durable
    /// state (profile, published news keys) re-inserted under fresh
    /// versions. The phi history and suspicion row restart from scratch.
    fn rejoin(&mut self, id: NodeId) {
        let idx = id as usize;
        self.up[idx] = true;
        self.rejoin_at[idx] = None;
        self.incarnation[idx] += 1;
        self.cold_restart(id);
    }

    fn apply_event(&mut self, event: Event) {
        match event {
            Event::JoinClone { reference } => self.join_clone(reference),
            Event::SwapInterests { a, b } => {
                self.oracle.swap_interests(a, b);
                for id in [a, b] {
                    self.profile_epoch[id as usize] += 1;
                    if self.up[id as usize] {
                        let digest = self.profile_digest(id);
                        self.replicas[id as usize].set_profile(id, digest);
                    }
                }
            }
            Event::ResetNode { node } => {
                // Instant cold restart (the node engine's reset semantics):
                // no downtime, but a bumped incarnation and a fresh replica.
                self.incarnation[node as usize] += 1;
                self.rejoin_at[node as usize] = None;
                self.up[node as usize] = true;
                self.cold_restart(node);
                self.cycle_stats.crashed += 1;
            }
        }
    }

    /// Fresh-replica cold start for `id` at its current incarnation:
    /// everything learned is dropped; the profile digest and every durably
    /// published news key are re-inserted under fresh versions so the
    /// bumped incarnation re-propagates them.
    fn cold_restart(&mut self, id: NodeId) {
        let idx = id as usize;
        self.replicas[idx] = Replica::new(self.n);
        self.detectors[idx] = PhiDetector::new(self.n);
        self.suspected[idx] = vec![false; self.n];
        let digest = self.profile_digest(id);
        self.replicas[idx].set_profile(id, digest);
        let deferred = std::mem::take(&mut self.pending_publish[idx]);
        self.owned_items[idx].extend(deferred);
        let owned = self.owned_items[idx].clone();
        for item in owned {
            let published_at = self.records[item as usize].published_at;
            self.replicas[idx].insert_news(id, item, published_at);
        }
        // Carry the bumped incarnation into the owner's own record so its
        // digest and outgoing entries advertise the new epoch.
        self.replicas[idx].records[idx].incarnation = self.incarnation[idx];
    }

    // --- Environment ------------------------------------------------------

    /// Mirrors the sharded engine's per-cycle Gilbert–Elliott chain
    /// advance: one flip coin per node from its CHANNEL stream, drawn only
    /// when the flip probability is nonzero.
    fn advance_channels(&mut self, cycle: u32) {
        let LossModel::GilbertElliott {
            good_to_bad,
            bad_to_good,
            ..
        } = self.scenario.environment.loss
        else {
            return;
        };
        for id in 0..self.n {
            let bad = &mut self.channel_bad[id];
            let flip = if *bad { bad_to_good } else { good_to_bad };
            if flip > 0.0 {
                let mut rng = node_stream(self.cfg.seed, id as NodeId, cycle, phase::CHANNEL);
                if rng.gen_bool(flip) {
                    *bad = !*bad;
                }
            }
        }
    }

    fn partition_cut(&self, cycle: u32) -> Option<NodeId> {
        if let LossModel::Partition {
            from,
            until,
            frontier,
        } = self.scenario.environment.loss
        {
            if cycle >= from && cycle < until {
                return Some((frontier * self.n as f64).floor() as NodeId);
            }
        }
        None
    }

    /// Whether one `from → to` datagram is dropped at delivery time. Same
    /// rules as the sharded engine: constant/Gilbert–Elliott draw one coin
    /// from the receiver's per-cycle stream (never when the effective
    /// probability is zero); partition drops are deterministic.
    fn dropped(&mut self, from: NodeId, to: NodeId, cycle: u32, cut: Option<NodeId>) -> bool {
        match self.scenario.environment.loss {
            LossModel::Constant { p } => p > 0.0 && self.coin(to, cycle, p),
            LossModel::GilbertElliott { p_good, p_bad, .. } => {
                let p = if self.channel_bad[to as usize] {
                    p_bad
                } else {
                    p_good
                };
                p > 0.0 && self.coin(to, cycle, p)
            }
            LossModel::Partition { .. } => match cut {
                Some(cut) => (from < cut) != (to < cut),
                None => false,
            },
        }
    }

    fn coin(&mut self, receiver: NodeId, cycle: u32, p: f64) -> bool {
        let seed = self.cfg.seed;
        let rng = self.phase_rngs[receiver as usize]
            .get_or_insert_with(|| node_stream(seed, receiver, cycle, phase::NEWS));
        rng.gen_bool(p)
    }

    // --- Gossip ------------------------------------------------------------

    /// The initiator's partners this cycle: `fanout` distinct peers drawn
    /// from its GOSSIP stream over the nodes it does not suspect.
    fn select_partners(&self, u: NodeId, cycle: u32) -> Vec<NodeId> {
        // A node that joined this cycle is absent from older suspicion
        // rows (they are resized at the end-of-cycle evaluation) — absent
        // means not suspected.
        let row = &self.suspected[u as usize];
        let candidates: Vec<NodeId> = (0..self.n as NodeId)
            .filter(|&v| v != u && !row.get(v as usize).copied().unwrap_or(false))
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let take = self.fanout.min(candidates.len());
        let mut rng = node_stream(self.cfg.seed, u, cycle, phase::GOSSIP);
        rand::seq::index::sample(&mut rng, candidates.len(), take)
            .into_iter()
            .map(|i| candidates[i])
            .collect()
    }

    /// One three-way scuttlebutt exchange `u → v`: Syn (digest), SynAck
    /// (delta + digest), Ack (delta). Every datagram counts as one gossip
    /// message even when it is lost; a drop or a down responder truncates
    /// the rest of the handshake.
    fn exchange(&mut self, u: NodeId, v: NodeId, cycle: u32, cut: Option<NodeId>) {
        // Syn: u → v carries u's digest.
        self.count_datagram();
        if !self.up[v as usize] || self.dropped(u, v, cycle, cut) {
            return;
        }
        // SynAck: v → u carries Δ(v | u's digest) and v's digest.
        let u_digest = self.replicas[u as usize].digest(self.n);
        let (delta_vu, _) = pack_delta(
            &self.replicas[v as usize],
            &DigestIndex::new(&u_digest),
            self.cfg.datagram_budget,
        );
        self.count_news_entries(&delta_vu);
        self.count_datagram();
        if self.dropped(v, u, cycle, cut) {
            return;
        }
        self.apply_delta(u, &delta_vu, cycle);
        // Ack: u → v carries Δ(u | v's digest).
        let v_digest = self.replicas[v as usize].digest(self.n);
        let (delta_uv, _) = pack_delta(
            &self.replicas[u as usize],
            &DigestIndex::new(&v_digest),
            self.cfg.datagram_budget,
        );
        self.count_news_entries(&delta_uv);
        self.count_datagram();
        if self.dropped(u, v, cycle, cut) {
            return;
        }
        self.apply_delta(v, &delta_uv, cycle);
    }

    fn count_datagram(&mut self) {
        self.gossip_messages += 1;
        self.cycle_stats.gossip_sent += 1;
    }

    /// News-key entries packed into an emitted delta count as news copies
    /// sent (lost ones included — the paper's "number of sent messages").
    fn count_news_entries(&mut self, delta: &[DeltaEntry]) {
        for e in delta {
            if let DeltaValue::NewsKey { item, .. } = e.value {
                let rec = &mut self.records[item as usize];
                rec.news_sent += 1;
                self.news_all += 1;
                self.cycle_stats.news_sent += 1;
                if rec.measured {
                    self.news_measured += 1;
                }
            }
        }
    }

    fn apply_delta(&mut self, receiver: NodeId, delta: &[DeltaEntry], cycle: u32) {
        for e in delta {
            if let DeltaValue::Heartbeat(_) = e.value {
                self.detectors[receiver as usize].observe(e.node, e.incarnation, e.version, cycle);
            }
            let applied = self.replicas[receiver as usize].apply(receiver, e);
            if applied {
                if let DeltaValue::NewsKey { item, .. } = e.value {
                    self.reception(receiver, item);
                }
            }
        }
    }

    /// First reception of `item` by `receiver` (globally deduplicated, so
    /// state re-learned after a crash never recounts).
    fn reception(&mut self, receiver: NodeId, item: u32) {
        let row = &mut self.seen[item as usize];
        let idx = receiver as usize;
        if idx >= row.len() {
            row.resize(idx + 1, false);
        }
        if row[idx] {
            return;
        }
        row[idx] = true;
        let likes = self.liked_at_publish[item as usize]
            .get(idx)
            .copied()
            .unwrap_or(false);
        let rec = &mut self.records[item as usize];
        rec.reached += 1;
        self.cycle_stats.first_receptions += 1;
        if likes {
            rec.hits += 1;
            rec.dislikes_at_liked_reception.push(0);
            self.cycle_stats.hits += 1;
        }
        if rec.measured {
            self.per_node[idx].received += 1;
            if likes {
                self.per_node[idx].hits += 1;
            }
        }
    }

    // --- Publications ------------------------------------------------------

    fn publish(&mut self, index: u32, cycle: u32) {
        let source = self.sources[index as usize];
        // Freeze the ground truth: the interested set at publication is
        // what the item is scored against for the rest of the run.
        let mut liked = vec![false; self.n];
        let mut interested = 0u32;
        for u in self.oracle.interested(index) {
            if u != source {
                liked[u as usize] = true;
                interested += 1;
            }
        }
        let rec = &mut self.records[index as usize];
        rec.interested = interested;
        self.cycle_stats.interested += u64::from(interested);
        if rec.measured {
            for (u, _) in liked.iter().enumerate().filter(|(_, l)| **l) {
                self.per_node[u].interested += 1;
            }
        }
        self.liked_at_publish[index as usize] = liked;
        if self.up[source as usize] {
            self.owned_items[source as usize].push(index);
            self.replicas[source as usize].insert_news(source, index, cycle);
        } else {
            // The source is dark: the key enters the network at rejoin.
            self.pending_publish[source as usize].push(index);
        }
    }

    // --- Phi bookkeeping ---------------------------------------------------

    /// End-of-cycle suspicion sweep: every up observer re-evaluates φ for
    /// every peer; transitions into suspicion are classified as a
    /// detection (peer actually down) or a false positive (peer up). Down
    /// observers keep their frozen matrix rows until they rejoin.
    fn evaluate_suspicion(&mut self, cycle: u32) {
        let threshold = self.cfg.phi_threshold;
        for observer in 0..self.n {
            if !self.up[observer] {
                continue;
            }
            if self.suspected[observer].len() < self.n {
                self.suspected[observer].resize(self.n, false);
            }
            for peer in 0..self.n {
                if peer == observer {
                    continue;
                }
                let now_suspect =
                    self.detectors[observer].suspects(peer as NodeId, cycle, threshold);
                let was = self.suspected[observer][peer];
                if now_suspect && !was {
                    if self.up[peer] {
                        self.detection.false_positives.push((
                            cycle,
                            observer as NodeId,
                            peer as NodeId,
                        ));
                    } else if !self
                        .detection
                        .detections
                        .iter()
                        .any(|&(v, _)| v == peer as NodeId)
                    {
                        self.detection.detections.push((peer as NodeId, cycle));
                    }
                }
                self.suspected[observer][peer] = now_suspect;
            }
        }
    }

    // --- Report ------------------------------------------------------------

    fn into_reports(self) -> (SimReport, DetectionReport) {
        let mut report = SimReport {
            protocol: "Anti-Entropy".into(),
            dataset: self.dataset_name,
            fanout: Some(self.fanout),
            n_nodes: self.n,
            cycles: self.cycles_run,
            items: self.records,
            per_node: self.per_node,
            news_messages: self.news_measured,
            news_messages_all: self.news_all,
            gossip_messages: self.gossip_messages,
            series: self.series,
            windows: Vec::new(),
        };
        report.windows = self
            .scenario
            .measurements
            .iter()
            .map(|m| {
                let (from, until, recovery) = match &m.window {
                    WindowSpec::Cycles { from, until } => {
                        (*from, (*until).min(report.cycles), None)
                    }
                    WindowSpec::Recovery { anchor, baseline } => {
                        let at = anchor
                            .resolve(self.scenario)
                            .expect("anchor validated against the scenario");
                        let recovery = report.series.recovery(at, *baseline);
                        let until = recovery
                            .and_then(|r| r.recovered_at)
                            .map(|c| c + 1)
                            .unwrap_or(report.cycles);
                        (at, until, recovery)
                    }
                };
                report.window_report(&m.name, from, until, recovery)
            })
            .collect();
        (report, self.detection)
    }
}
