//! C-WhatsUp: the centralized variant with global knowledge
//! (paper §IV-B, Fig. 9).
//!
//! A server "gathers the global knowledge of all the profiles of its users
//! and news items" and "instantaneously updates node and item profiles"
//! (§V-G): every user's windowed profile is current the moment an item is
//! published — no gossip staleness, no partial sample. Dissemination then
//! mirrors BEEP with the gossip-sampled WUP view replaced by the *exact*
//! global similarity pools: on a like, the server delivers `fLIKE` copies
//! drawn from the top-`2·fLIKE` users closest to the liker (cosine over
//! user profiles) and `fLIKE` more from the top-`2·fLIKE` users best
//! correlated with the *item profile*; on a dislike it delivers to the
//! `fDISLIKE = 1` user most similar to the item profile, up to `TTL`
//! times. Already-covered users are simply not re-delivered (SIR damping).
//!
//! This bounds what decentralization costs WhatsUp: the paper reports that
//! the centralized variant gains ~17% precision, loses ~14% recall, and
//! ends up ~5% ahead in F1 — the same shape this engine reproduces.

use crate::config::SimConfig;
use crate::record::{ItemRecord, SimReport};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;
use whatsup_core::{cosine_similarity, NewsItem, Profile};
use whatsup_datasets::Dataset;

const TTL: u8 = 4;
const F_DISLIKE: usize = 1;

/// Runs C-WhatsUp with like-fanout `f_like` under the uniform publication
/// schedule. The server is reliable, so `cfg.loss` is ignored (the paper
/// compares against the ideal).
pub fn run(dataset: &Dataset, f_like: usize, cfg: &SimConfig) -> SimReport {
    run_scheduled(dataset, f_like, cfg, &cfg.schedule(dataset.n_items()))
}

/// [`run`] with an explicit item → publication-cycle schedule (the
/// scenario workload layer; `schedule[i]` is item `i`'s cycle).
pub fn run_scheduled(
    dataset: &Dataset,
    f_like: usize,
    cfg: &SimConfig,
    schedule: &[u32],
) -> SimReport {
    let n = dataset.n_users();
    let window = 13u32;

    let mut profiles: Vec<Profile> = vec![Profile::new(); n];
    let mut items_out = Vec::with_capacity(dataset.n_items());
    let mut news_measured = 0u64;
    let mut news_all = 0u64;

    // Items in publication order, cycle by cycle.
    let mut order: Vec<u32> = (0..dataset.n_items() as u32).collect();
    order.sort_by_key(|&i| schedule[i as usize]);

    let mut current_cycle = 0u32;
    for &index in &order {
        let spec = &dataset.items[index as usize];
        let published_at = schedule[index as usize];
        // Advance the clock: purge profile windows on cycle boundaries.
        while current_cycle < published_at {
            current_cycle += 1;
            let cutoff = current_cycle.saturating_sub(window);
            for p in &mut profiles {
                p.purge_older_than(cutoff);
            }
        }
        let measured = published_at >= cfg.measure_from;
        let source = spec.source;
        let item = NewsItem::new(
            format!("{}-news-{}", dataset.name, index),
            format!("topic-{}", spec.topic),
            format!("https://news.example/{}/{}", dataset.name, index),
            source,
            published_at,
        );
        let item_id = item.id();
        let interested = dataset
            .likes
            .interested_users(index as usize)
            .into_iter()
            .filter(|&u| u != source)
            .count() as u32;

        let mut rec = ItemRecord {
            index,
            published_at,
            interested,
            measured,
            ..ItemRecord::default()
        };

        let mut seen = vec![false; n];
        seen[source as usize] = true;
        let mut item_profile = Profile::new();

        // Global knowledge, instantaneous profile updates (§V-G): the
        // server maintains every user's opinion on every (windowed) item
        // the moment it is published — the limit case of "gathering the
        // global knowledge of all the profiles of its users".
        for (u, profile) in profiles.iter_mut().enumerate() {
            profile.rate(
                item_id,
                published_at,
                dataset.likes.likes(u, index as usize),
            );
        }
        item_profile.aggregate_user_profile(&profiles[source as usize]);

        // Queue of pending deliveries: (user, dislike counter, hop).
        // A selected user that already received the item is simply not
        // delivered again (the SIR "removed" state), which is what throttles
        // the centralized epidemic.
        let mut pick = ChaCha8Rng::seed_from_u64(cfg.seed ^ item_id ^ 0xc0ffee);
        let mut queue: VecDeque<(u32, u8, u16)> = VecDeque::new();
        let deliver = |targets: Vec<u32>,
                       seen: &mut Vec<bool>,
                       queue: &mut VecDeque<(u32, u8, u16)>,
                       rec: &mut ItemRecord,
                       dislikes: u8,
                       hop: u16| {
            for t in targets {
                if seen[t as usize] {
                    continue;
                }
                seen[t as usize] = true;
                rec.news_sent += 1;
                queue.push_back((t, dislikes, hop));
            }
        };

        // Initial placement: the source is the item's first liker, so the
        // server applies the like rule to it — fLIKE random picks from the
        // source-similarity pool and from the item-profile pool. For the
        // very first items (empty profiles everywhere) a deterministic
        // fallback seeds random users — the server has to show fresh items
        // to someone before any correlation exists.
        let src_pool = top_k_all(&profiles, source as usize, 2 * f_like, |p| {
            cosine_similarity(&profiles[source as usize], p)
        });
        let item_pool = top_k_all(&profiles, source as usize, 2 * f_like, |p| {
            cosine_similarity(&item_profile, p)
        });
        let mut first = sample_k(src_pool, f_like, &mut pick);
        first.extend(sample_k(item_pool, f_like, &mut pick));
        first.sort_unstable();
        first.dedup();
        if first.is_empty() {
            let mut fallback = ChaCha8Rng::seed_from_u64(cfg.seed ^ item_id);
            first = (0..f_like)
                .map(|_| fallback.gen_range(0..n as u32))
                .filter(|&u| u != source)
                .collect();
            first.sort_unstable();
            first.dedup();
        }
        deliver(first, &mut seen, &mut queue, &mut rec, 0, 1);
        rec.forward_hops.push((0, true));

        while let Some((user, dislikes, hop)) = queue.pop_front() {
            let u = user as usize;
            let likes = dataset.likes.likes(u, index as usize);
            rec.reached += 1;
            rec.infection_hops.push((hop, true));
            if likes {
                rec.hits += 1;
                rec.dislikes_at_liked_reception.push(dislikes);
                // Fold the liker into the item (community) profile.
                item_profile.aggregate_user_profile(&profiles[u]);
                rec.forward_hops.push((hop, true));
                // The server replaces WhatsUp's gossip-sampled WUP view by
                // the exact global top-2·fLIKE similarity pools, then — like
                // BEEP — delivers to fLIKE random members of each pool:
                // (a) the pool closest to the liker by user-profile cosine;
                // (b) the pool best correlated with the evolving item
                // profile. Already-covered selections are dropped by
                // `deliver` (SIR damping).
                let pool_user = top_k_all(&profiles, u, 2 * f_like, |p| {
                    cosine_similarity(&profiles[u], p)
                });
                let pool_item = top_k_all(&profiles, u, 2 * f_like, |p| {
                    cosine_similarity(&item_profile, p)
                });
                let by_user = sample_k(pool_user, f_like, &mut pick);
                let by_item = sample_k(pool_item, f_like, &mut pick);
                deliver(by_user, &mut seen, &mut queue, &mut rec, dislikes, hop + 1);
                deliver(by_item, &mut seen, &mut queue, &mut rec, dislikes, hop + 1);
            } else {
                if dislikes < TTL {
                    rec.forward_hops.push((hop, false));
                    let targets = top_k_all(&profiles, u, F_DISLIKE, |p| {
                        cosine_similarity(&item_profile, p)
                    });
                    deliver(
                        targets,
                        &mut seen,
                        &mut queue,
                        &mut rec,
                        dislikes + 1,
                        hop + 1,
                    );
                }
            }
        }

        news_all += rec.news_sent;
        if measured {
            news_measured += rec.news_sent;
        }
        items_out.push(rec);
    }
    items_out.sort_by_key(|r| r.index);

    let series = super::series_from_items(&items_out, cfg, n);
    SimReport {
        protocol: "C-WhatsUp".into(),
        dataset: dataset.name.clone(),
        fanout: Some(f_like),
        n_nodes: n,
        cycles: cfg.cycles,
        items: items_out,
        per_node: Vec::new(),
        news_messages: news_measured,
        news_messages_all: news_all,
        gossip_messages: 0,
        series,
        windows: Vec::new(),
    }
}

/// Uniform sample of `k` entries from a candidate pool (deterministic given
/// the caller's RNG) — the server-side analogue of BEEP's random selection
/// within the WUP view.
fn sample_k(mut pool: Vec<u32>, k: usize, rng: &mut ChaCha8Rng) -> Vec<u32> {
    use rand::seq::SliceRandom;
    pool.shuffle(rng);
    pool.truncate(k);
    pool
}

/// Like [`top_k_by`] but over *all* users except `exclude`, covered or not —
/// the per-liker neighborhood of the paper's description. Selections that
/// were already covered are dropped at delivery time, which is what damps
/// the centralized epidemic.
fn top_k_all(
    profiles: &[Profile],
    exclude: usize,
    k: usize,
    score: impl Fn(&Profile) -> f64,
) -> Vec<u32> {
    let mut scored: Vec<(f64, u32)> = profiles
        .iter()
        .enumerate()
        .filter(|&(u, _)| u != exclude)
        .map(|(u, p)| (score(p), u as u32))
        .filter(|&(s, _)| s > 0.0)
        .collect();
    scored.sort_by(|(sa, ua), (sb, ub)| {
        sb.partial_cmp(sa)
            .expect("similarity is never NaN")
            .then(ua.cmp(ub))
    });
    scored.truncate(k);
    scored.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;
    use whatsup_datasets::{survey, SurveyConfig};

    fn dataset() -> Dataset {
        survey::generate(&SurveyConfig::paper().scaled(0.12), 33)
    }

    fn cfg() -> SimConfig {
        SimConfig {
            cycles: 20,
            publish_from: 2,
            measure_from: 8,
            ..Default::default()
        }
    }

    #[test]
    fn centralized_produces_sane_scores() {
        let d = dataset();
        let r = run(&d, 5, &cfg());
        let s = r.scores();
        assert!(s.precision > 0.2, "{s:?}");
        assert!(s.recall > 0.2, "{s:?}");
        assert!(r.news_messages > 0);
    }

    #[test]
    fn centralized_beats_or_matches_decentralized_f1() {
        // Global knowledge should give at least comparable quality
        // (the paper reports decentralized within ~5%).
        let d = dataset();
        let c = run(&d, 5, &cfg());
        let w = crate::Runner::new(&d, Protocol::WhatsUp { f_like: 5 })
            .config(cfg())
            .run();
        assert!(
            c.scores().f1 + 0.1 >= w.scores().f1,
            "centralized {:?} vs decentralized {:?}",
            c.scores(),
            w.scores()
        );
    }

    #[test]
    fn dislike_counters_bounded_by_ttl() {
        let d = dataset();
        let r = run(&d, 4, &cfg());
        for item in &r.items {
            assert!(item.dislikes_at_liked_reception.iter().all(|&x| x <= TTL));
        }
    }

    #[test]
    fn deterministic() {
        let d = dataset();
        let a = run(&d, 4, &cfg());
        let b = run(&d, 4, &cfg());
        assert_eq!(a.scores(), b.scores());
        assert_eq!(a.news_messages_all, b.news_messages_all);
    }

    #[test]
    fn top_k_all_is_deterministic_and_filtered() {
        let profiles = vec![Profile::new(); 4];
        let top = top_k_all(&profiles, 1, 2, |_| 1.0);
        assert_eq!(top, vec![0, 2], "ties break on lower id, exclusion skipped");
        let none = top_k_all(&profiles, 1, 2, |_| 0.0);
        assert!(
            none.is_empty(),
            "zero-correlation candidates never selected"
        );
    }

    #[test]
    fn sample_k_bounds_and_determinism() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let s = sample_k(vec![1, 2, 3, 4, 5], 3, &mut rng);
        assert_eq!(s.len(), 3);
        let mut rng2 = ChaCha8Rng::seed_from_u64(4);
        let s2 = sample_k(vec![1, 2, 3, 4, 5], 3, &mut rng2);
        assert_eq!(s, s2);
        let mut rng3 = ChaCha8Rng::seed_from_u64(4);
        assert_eq!(sample_k(vec![9], 3, &mut rng3), vec![9]);
    }
}
