//! Explicit social cascade (paper §IV-B, Table V — the Digg baseline).
//!
//! "Whenever a node likes a news item, it forwards it to all of its explicit
//! social neighbors." Dissemination therefore only follows friendship
//! edges: an item can never escape the social neighborhood of its likers,
//! which is why cascade recall is so low (0.09 on the paper's Digg trace)
//! despite decent precision.

use crate::config::SimConfig;
use crate::record::{ItemRecord, SimReport};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;
use whatsup_datasets::Dataset;

/// Runs the cascade baseline under the uniform publication schedule.
///
/// # Panics
/// Panics if the dataset has no explicit social graph.
pub fn run(dataset: &Dataset, cfg: &SimConfig) -> SimReport {
    run_scheduled(dataset, cfg, &cfg.schedule(dataset.n_items()))
}

/// [`run`] with an explicit item → publication-cycle schedule (the
/// scenario workload layer; `schedule[i]` is item `i`'s cycle).
pub fn run_scheduled(dataset: &Dataset, cfg: &SimConfig, schedule: &[u32]) -> SimReport {
    let graph = dataset
        .social
        .as_ref()
        .expect("cascade requires a dataset with an explicit social graph");
    let n = dataset.n_users();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    let mut items = Vec::with_capacity(dataset.n_items());
    let mut news_measured = 0u64;
    let mut news_all = 0u64;

    for spec in &dataset.items {
        let index = spec.index as usize;
        let published_at = schedule[index];
        let measured = published_at >= cfg.measure_from;
        let source = spec.source;
        let interested = dataset
            .likes
            .interested_users(index)
            .into_iter()
            .filter(|&u| u != source)
            .count() as u32;

        let mut rec = ItemRecord {
            index: spec.index,
            published_at,
            interested,
            measured,
            ..ItemRecord::default()
        };

        // BFS along friendship edges; only likers forward.
        let mut seen = vec![false; n];
        seen[source as usize] = true;
        let mut queue: VecDeque<(u32, u16)> = VecDeque::new(); // (node, hop)

        // The source liked (generated) the item: it forwards to all friends.
        rec.forward_hops.push((0, true));
        for &f in graph.neighbors(source) {
            rec.news_sent += 1;
            queue.push_back((f, 1));
        }
        while let Some((node, hop)) = queue.pop_front() {
            if cfg.loss > 0.0 && rng.gen_bool(cfg.loss) {
                continue;
            }
            if seen[node as usize] {
                continue;
            }
            seen[node as usize] = true;
            let likes = dataset.likes.likes(node as usize, index);
            rec.reached += 1;
            rec.infection_hops.push((hop, true)); // cascade only forwards on like
            if likes {
                rec.hits += 1;
                rec.dislikes_at_liked_reception.push(0);
                rec.forward_hops.push((hop, true));
                for &f in graph.neighbors(node) {
                    rec.news_sent += 1;
                    queue.push_back((f, hop + 1));
                }
            }
        }
        news_all += rec.news_sent;
        if measured {
            news_measured += rec.news_sent;
        }
        items.push(rec);
    }

    let series = super::series_from_items(&items, cfg, n);
    SimReport {
        protocol: "Cascade".into(),
        dataset: dataset.name.clone(),
        fanout: None,
        n_nodes: n,
        cycles: cfg.cycles,
        items,
        per_node: Vec::new(),
        news_messages: news_measured,
        news_messages_all: news_all,
        gossip_messages: 0,
        series,
        windows: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_datasets::{digg, DiggConfig};

    fn dataset() -> Dataset {
        digg::generate(&DiggConfig::paper().scaled(0.15), 9)
    }

    #[test]
    fn cascade_reaches_fewer_than_interested() {
        let d = dataset();
        let r = run(&d, &SimConfig::default());
        let s = r.scores();
        assert!(s.recall < 0.9, "cascade recall should be limited: {s:?}");
        assert!(s.precision > 0.0);
        assert!(r.news_messages_all > 0);
    }

    #[test]
    fn cascade_is_deterministic() {
        let d = dataset();
        let a = run(&d, &SimConfig::default());
        let b = run(&d, &SimConfig::default());
        assert_eq!(a.scores(), b.scores());
        assert_eq!(a.news_messages_all, b.news_messages_all);
    }

    #[test]
    fn loss_reduces_reach() {
        let d = dataset();
        let clean = run(&d, &SimConfig::default());
        let lossy = run(
            &d,
            &SimConfig {
                loss: 0.6,
                ..Default::default()
            },
        );
        assert!(lossy.scores().recall <= clean.scores().recall);
    }

    #[test]
    #[should_panic(expected = "explicit social graph")]
    fn requires_social_graph() {
        let mut d = dataset();
        d.social = None;
        let _ = run(&d, &SimConfig::default());
    }

    #[test]
    fn series_reconciles_with_item_records() {
        let d = dataset();
        let r = run(&d, &SimConfig::default());
        assert_eq!(r.series.len(), r.cycles as usize);
        let all = r.series.pooled(0, r.cycles);
        assert_eq!(all.news_sent, r.news_messages_all);
        assert_eq!(all.gossip_sent, 0, "cascade has no gossip layer");
        assert_eq!(
            all.first_receptions,
            r.items.iter().map(|i| u64::from(i.reached)).sum::<u64>()
        );
        assert_eq!(
            all.hits,
            r.items.iter().map(|i| u64::from(i.hits)).sum::<u64>()
        );
    }

    #[test]
    fn reached_bounded_by_population() {
        let d = dataset();
        let r = run(&d, &SimConfig::default());
        for item in &r.items {
            assert!((item.reached as usize) < d.n_users());
            assert!(item.hits <= item.reached);
        }
    }
}
