//! C-Pub/Sub: the ideal centralized topic-based publish/subscribe
//! (paper §IV-B, Table V).
//!
//! A user subscribes to a topic if she likes at least one item of that
//! topic. The server disseminates every item to all subscribers of its
//! topic along a spanning tree (one message per subscriber — minimal
//! message complexity). By construction recall is 1 (every interested user
//! likes the item, hence at least one item of its topic, hence is
//! subscribed); precision is bounded by topic granularity — the topics are
//! the coarse RSS-feed labels ([`Dataset::pubsub_topic`]), not the latent
//! interest structure, exactly as the paper extracts them "from keywords
//! associated with the RSS feeds".

use crate::config::SimConfig;
use crate::record::{ItemRecord, SimReport};
use whatsup_datasets::Dataset;

/// Subscription table: `subscribers[topic]` = users liking ≥ 1 item of it.
pub fn subscriptions(dataset: &Dataset) -> Vec<Vec<u32>> {
    let n = dataset.n_users();
    let mut subs: Vec<Vec<u32>> = vec![Vec::new(); dataset.n_pubsub_topics() as usize];
    for (topic, list) in subs.iter_mut().enumerate() {
        let topic = topic as u32;
        'user: for u in 0..n {
            for spec in dataset.items.iter() {
                if dataset.pubsub_topic(spec.index as usize) == topic
                    && dataset.likes.likes(u, spec.index as usize)
                {
                    list.push(u as u32);
                    continue 'user;
                }
            }
        }
    }
    subs
}

/// Runs the C-Pub/Sub baseline under the uniform publication schedule. The
/// centralized server is assumed reliable (the paper treats it as the
/// ideal reference), so `cfg.loss` is ignored.
pub fn run(dataset: &Dataset, cfg: &SimConfig) -> SimReport {
    run_scheduled(dataset, cfg, &cfg.schedule(dataset.n_items()))
}

/// [`run`] with an explicit item → publication-cycle schedule (the
/// scenario workload layer; `schedule[i]` is item `i`'s cycle).
pub fn run_scheduled(dataset: &Dataset, cfg: &SimConfig, schedule: &[u32]) -> SimReport {
    let subs = subscriptions(dataset);
    let mut items = Vec::with_capacity(dataset.n_items());
    let mut news_measured = 0u64;
    let mut news_all = 0u64;

    for spec in &dataset.items {
        let index = spec.index as usize;
        let published_at = schedule[index];
        let measured = published_at >= cfg.measure_from;
        let source = spec.source;
        let interested: Vec<u32> = dataset
            .likes
            .interested_users(index)
            .into_iter()
            .filter(|&u| u != source)
            .collect();
        let topic = dataset.pubsub_topic(index);
        let reached: Vec<u32> = subs[topic as usize]
            .iter()
            .copied()
            .filter(|&u| u != source)
            .collect();
        let hits = reached
            .iter()
            .filter(|&&u| dataset.likes.likes(u as usize, index))
            .count() as u32;
        let rec = ItemRecord {
            index: spec.index,
            published_at,
            interested: interested.len() as u32,
            reached: reached.len() as u32,
            hits,
            news_sent: reached.len() as u64,
            measured,
            ..ItemRecord::default()
        };
        news_all += rec.news_sent;
        if measured {
            news_measured += rec.news_sent;
        }
        items.push(rec);
    }

    let series = super::series_from_items(&items, cfg, dataset.n_users());
    SimReport {
        protocol: "C-Pub/Sub".into(),
        dataset: dataset.name.clone(),
        fanout: None,
        n_nodes: dataset.n_users(),
        cycles: cfg.cycles,
        items,
        per_node: Vec::new(),
        news_messages: news_measured,
        news_messages_all: news_all,
        gossip_messages: 0,
        series,
        windows: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_datasets::{survey, SurveyConfig};

    fn dataset() -> Dataset {
        survey::generate(&SurveyConfig::paper().scaled(0.15), 21)
    }

    #[test]
    fn recall_is_one_by_construction() {
        let d = dataset();
        let r = run(&d, &SimConfig::default());
        let s = r.scores();
        assert!(
            (s.recall - 1.0).abs() < 1e-9,
            "C-Pub/Sub recall must be 1: {s:?}"
        );
        assert!(s.precision > 0.0 && s.precision < 1.0);
    }

    #[test]
    fn messages_equal_subscriber_deliveries() {
        let d = dataset();
        let r = run(&d, &SimConfig::default());
        for item in &r.items {
            assert_eq!(item.news_sent, item.reached as u64);
        }
    }

    #[test]
    fn subscriptions_cover_likers() {
        let d = dataset();
        let subs = subscriptions(&d);
        for spec in d.items.iter().take(50) {
            let topic = d.pubsub_topic(spec.index as usize);
            for u in d.likes.interested_users(spec.index as usize) {
                assert!(
                    subs[topic as usize].contains(&u),
                    "liker {u} not subscribed to feed {topic}"
                );
            }
        }
    }

    #[test]
    fn coarse_feeds_cap_precision() {
        // Feeds are coarser than latent topics, so precision must sit well
        // below the in-topic like probability and above the raw like rate.
        let d = dataset();
        let r = run(&d, &SimConfig::default());
        let p = r.scores().precision;
        let rate = d.likes.like_rate();
        assert!(
            p >= rate - 0.05,
            "pub/sub cannot be worse than flooding: {p} vs {rate}"
        );
        assert!(p < 0.6, "feed granularity should cap precision: {p}");
    }

    #[test]
    fn series_reconciles_with_item_records() {
        let d = dataset();
        let r = run(&d, &SimConfig::default());
        assert_eq!(r.series.len(), r.cycles as usize);
        let all = r.series.pooled(0, r.cycles);
        assert_eq!(all.news_sent, r.news_messages_all);
        assert_eq!(
            all.hits,
            r.items.iter().map(|i| u64::from(i.hits)).sum::<u64>()
        );
        assert_eq!(
            r.series.get(0).unwrap().live_nodes,
            d.n_users() as u64,
            "no churn: the full population is live every cycle"
        );
    }

    #[test]
    fn deterministic() {
        let d = dataset();
        let a = run(&d, &SimConfig::default());
        let b = run(&d, &SimConfig::default());
        assert_eq!(a.scores(), b.scores());
    }
}
