//! The [`Runner`]: one typed entry point for every workload.
//!
//! Every way of executing a simulation — any protocol (node-based or
//! global baseline), any [`Scenario`], any shard count, any
//! [`Transport`] (in-process threads, `sim-shard-worker` child
//! processes, or remote socket workers) — is expressed as one builder
//! chain:
//!
//! ```no_run
//! use whatsup_sim::{Runner, Protocol, SimConfig};
//! use whatsup_sim::scenario::{Scenario, Workload};
//! # let dataset = whatsup_datasets::survey::generate(
//! #     &whatsup_datasets::SurveyConfig::paper().scaled(0.1), 42);
//!
//! let report = Runner::new(&dataset, Protocol::WhatsUp { f_like: 10 })
//!     .config(SimConfig { cycles: 65, ..Default::default() })
//!     .scenario(Scenario::default().with_workload(
//!         Workload::FlashCrowd { at: 30, fraction: 0.25 }))
//!     .shards(4)
//!     .run();
//! ```
//!
//! `run_protocol`, the sweeps, the dynamics experiment and the `whatsup-sim`
//! CLI all route through here. Reports are a pure function of
//! `(dataset, protocol, config, scenario)` — bit-identical across shard
//! counts and transports (see the engine module docs for the contract).

use crate::config::{Protocol, SimConfig, Transport};
use crate::engine::exchange::Supervision;
use crate::engine::Simulation;
use crate::engines::{antientropy, cascade, centralized, pubsub};
use crate::record::SimReport;
use crate::scenario::Scenario;
use std::io;
use std::path::PathBuf;
use whatsup_datasets::Dataset;

/// Builder for one simulation run. See the module docs for the grammar.
#[derive(Debug, Clone)]
pub struct Runner<'a> {
    dataset: &'a Dataset,
    protocol: Protocol,
    cfg: SimConfig,
    scenario: Option<Scenario>,
    transport: Transport,
    supervision: Option<Supervision>,
}

impl<'a> Runner<'a> {
    /// A runner with the default config and the scenario the config
    /// describes (uniform workload, constant loss, uniform churn).
    pub fn new(dataset: &'a Dataset, protocol: Protocol) -> Self {
        Self {
            dataset,
            protocol,
            cfg: SimConfig::default(),
            scenario: None,
            transport: Transport::InProcess,
            supervision: None,
        }
    }

    /// Replaces the whole run configuration — including the `shards` and
    /// `seed` fields, so call it *before* the [`Runner::shards`] /
    /// [`Runner::seed`] shorthands.
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Runs an explicit scenario. Its environment *replaces* the config's
    /// `loss`/`churn_per_cycle` knobs (without this call, those knobs
    /// become the scenario via [`Scenario::from_config`]).
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Engine shard count (`0` = one per core). A pure execution knob:
    /// reports are bit-identical for every value. Writes into the current
    /// config — apply after [`Runner::config`], which replaces it.
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards;
        self
    }

    /// RNG seed override. Writes into the current config — apply after
    /// [`Runner::config`], which replaces it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Selects how the shard workers execute. Only meaningful for
    /// node-based protocols (the global baselines have no shards).
    pub fn transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Shorthand for [`Runner::transport`] with [`Transport::Process`]:
    /// runs the shards as `sim-shard-worker` child processes found at
    /// `worker` (stdio-pipe transport) instead of in-process threads.
    pub fn multiprocess(self, worker: impl Into<PathBuf>) -> Self {
        self.transport(Transport::Process(worker.into()))
    }

    /// Shorthand for [`Runner::transport`] with [`Transport::Socket`]:
    /// runs the shards on already-listening `sim-shard-worker --listen`
    /// processes, one `host:port` address per shard (the shard count is
    /// the worker count; workers must be started before the run).
    pub fn socket<I, S>(self, workers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.transport(Transport::Socket(
            workers.into_iter().map(Into::into).collect(),
        ))
    }

    /// Supervises the external transports: crashed or hung shard workers
    /// are restarted (respawned children / redialed addresses) and
    /// recovered by checkpoint/replay, up to `max_restarts` restarts per
    /// shard, with a checkpoint every `checkpoint_every` cycles.
    /// Determinism makes recovery exact — a supervised run that survives
    /// faults reports bit-identically to an undisturbed one. Ignored by
    /// the in-process transport (nothing external can crash).
    pub fn supervised(self, max_restarts: u32, checkpoint_every: u32) -> Self {
        self.supervision(Supervision::new(max_restarts, checkpoint_every))
    }

    /// [`Runner::supervised`] with full control over the supervision knobs
    /// (hang deadline, restart backoff, dial window).
    pub fn supervision(mut self, supervision: Supervision) -> Self {
        self.supervision = Some(supervision);
        self
    }

    fn resolved_scenario(&self) -> Scenario {
        self.scenario
            .clone()
            .unwrap_or_else(|| Scenario::from_config(&self.cfg))
    }

    /// Builds a steppable in-process [`Simulation`] (node-based protocols
    /// only). Scenario events fire automatically as the cycles advance.
    ///
    /// # Panics
    /// Panics for protocols without a steppable node engine (cascade,
    /// pub/sub, centralized, anti-entropy — use [`Runner::run`]), if a
    /// non-in-process transport was configured, or if the config/scenario
    /// is invalid.
    pub fn build(self) -> Simulation {
        assert!(
            self.transport == Transport::InProcess,
            "build() is in-process; external transports run to completion via run()"
        );
        let scenario = self.resolved_scenario();
        Simulation::with_scenario(self.dataset, self.protocol, self.cfg, scenario)
    }

    /// Runs to completion and reports; `Err` only for external-transport
    /// failures (a worker that cannot be spawned, dialed or handshaken, or
    /// that dies mid-run — the error names the failing endpoint).
    ///
    /// # Panics
    /// Panics if the config or scenario is invalid.
    pub fn try_run(self) -> io::Result<SimReport> {
        let scenario = self.resolved_scenario();
        match self.protocol {
            // Global baselines have no gossip layer: the workload schedule
            // applies; the environment and events do not (the centralized
            // server is assumed reliable — cf. the engines' module docs).
            p if p.is_global() => {
                self.cfg.validate().expect("invalid simulation config");
                scenario.validate(&self.cfg).expect("invalid scenario");
                scenario
                    .validate_for_global(&self.protocol)
                    .expect("scenario not expressible on a global engine");
                scenario
                    .validate_events(self.dataset.n_users())
                    .expect("invalid scenario");
                let topics: Vec<u32> = self.dataset.items.iter().map(|spec| spec.topic).collect();
                let schedule = scenario.workload.schedule(&self.cfg, &topics);
                Ok(match self.protocol {
                    Protocol::Cascade => cascade::run_scheduled(self.dataset, &self.cfg, &schedule),
                    Protocol::CPubSub => pubsub::run_scheduled(self.dataset, &self.cfg, &schedule),
                    Protocol::CWhatsUp { f_like } => {
                        centralized::run_scheduled(self.dataset, f_like, &self.cfg, &schedule)
                    }
                    _ => unreachable!("matched above"),
                })
            }
            // Anti-entropy runs its own single-process engine: the full
            // scenario grid applies, but there is no sharded transport
            // (reports are bit-identical across repeated runs, which is
            // the determinism contract the compare path needs).
            Protocol::AntiEntropy { fanout } => {
                if self.transport != Transport::InProcess {
                    return Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "the anti-entropy engine is in-process only; drop --worker/--workers",
                    ));
                }
                self.cfg.validate().expect("invalid simulation config");
                scenario.validate(&self.cfg).expect("invalid scenario");
                scenario
                    .validate_events(self.dataset.n_users())
                    .expect("invalid scenario");
                Ok(antientropy::run_scenario(
                    self.dataset,
                    &self.cfg,
                    &scenario,
                    fanout,
                ))
            }
            node_protocol => match self.transport {
                Transport::InProcess => {
                    Ok(
                        Simulation::with_scenario(self.dataset, node_protocol, self.cfg, scenario)
                            .run(),
                    )
                }
                Transport::Process(worker) => Simulation::run_multiprocess_scenario(
                    self.dataset,
                    node_protocol,
                    self.cfg,
                    scenario,
                    &worker,
                    self.supervision,
                ),
                Transport::Socket(workers) => Simulation::run_socket_scenario(
                    self.dataset,
                    node_protocol,
                    self.cfg,
                    scenario,
                    &workers,
                    self.supervision,
                ),
            },
        }
    }

    /// Runs to completion and reports.
    ///
    /// # Panics
    /// Panics if the config or scenario is invalid, or on worker I/O
    /// failures (use [`Runner::try_run`] to handle those).
    pub fn run(self) -> SimReport {
        self.try_run().expect("shard worker transport failed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{
        Anchor, ChurnModel, Environment, Event, LossModel, Measurement, TimedEvent, WindowSpec,
        Workload,
    };
    use whatsup_datasets::{digg, survey, DiggConfig, SurveyConfig};

    fn dataset() -> Dataset {
        survey::generate(&SurveyConfig::paper().scaled(0.1), 21)
    }

    fn cfg() -> SimConfig {
        SimConfig {
            cycles: 16,
            publish_from: 2,
            measure_from: 6,
            ..Default::default()
        }
    }

    #[test]
    fn runner_matches_legacy_entry_points() {
        let d = dataset();
        let via_runner = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
            .config(cfg())
            .run();
        let via_engine = Simulation::new(&d, Protocol::WhatsUp { f_like: 4 }, cfg()).run();
        assert_eq!(via_runner, via_engine);
    }

    #[test]
    fn runner_dispatches_global_protocols() {
        let d = digg::generate(&DiggConfig::paper().scaled(0.06), 3);
        for p in [
            Protocol::Cascade,
            Protocol::CPubSub,
            Protocol::CWhatsUp { f_like: 3 },
        ] {
            let r = Runner::new(&d, p).config(cfg()).run();
            assert_eq!(r.protocol, p.label());
            assert!(r.measured_items() > 0);
        }
    }

    #[test]
    fn global_protocols_honor_the_workload_schedule() {
        let d = digg::generate(&DiggConfig::paper().scaled(0.06), 3);
        let burst = Runner::new(&d, Protocol::CPubSub)
            .config(cfg())
            .scenario(Scenario::default().with_workload(Workload::FlashCrowd {
                at: 7,
                fraction: 1.0,
            }))
            .run();
        // fraction 1.0: every item publishes in the burst cycle.
        assert!(burst.items.iter().all(|r| r.published_at == 7));
    }

    #[test]
    fn shards_knob_is_invisible_in_the_report() {
        let d = dataset();
        let one = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
            .config(cfg())
            .run();
        let four = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
            .config(cfg())
            .shards(4)
            .run();
        assert_eq!(one, four);
    }

    #[test]
    fn scenario_runs_end_to_end() {
        let d = dataset();
        let scenario = Scenario {
            workload: Workload::FlashCrowd {
                at: 6,
                fraction: 0.3,
            },
            environment: Environment {
                loss: LossModel::GilbertElliott {
                    p_good: 0.01,
                    p_bad: 0.4,
                    good_to_bad: 0.2,
                    bad_to_good: 0.5,
                },
                churn: ChurnModel::CrashWave {
                    at: 8,
                    fraction: 0.1,
                },
            },
            events: vec![
                TimedEvent {
                    at: 5,
                    event: Event::JoinClone { reference: 0 },
                },
                TimedEvent {
                    at: 7,
                    event: Event::SwapInterests { a: 1, b: 2 },
                },
                TimedEvent {
                    at: 9,
                    event: Event::ResetNode { node: 3 },
                },
            ],
            measurements: vec![
                Measurement {
                    name: "warmup".into(),
                    window: WindowSpec::Cycles { from: 2, until: 8 },
                },
                Measurement {
                    name: "crash_recovery".into(),
                    window: WindowSpec::Recovery {
                        anchor: Anchor::CrashWave,
                        baseline: 3,
                    },
                },
            ],
        };
        let report = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
            .config(cfg())
            .scenario(scenario)
            .run();
        // The joiner grew the population by one.
        assert_eq!(report.n_nodes, d.n_users() + 1);
        assert!(report.measured_items() > 0);
        assert!(report.scores().recall > 0.0);
        // The series covers every cycle and its totals reconcile with the
        // whole-run counters.
        assert_eq!(report.series.len(), report.cycles as usize);
        let all = report.series.pooled(0, report.cycles);
        assert_eq!(all.news_sent, report.news_messages_all);
        assert_eq!(all.gossip_sent, report.gossip_messages);
        assert_eq!(
            report.series.cycles().last().unwrap().live_nodes,
            report.n_nodes as u64
        );
        // Both windows resolved; the recovery one is anchored to cycle 8.
        assert_eq!(report.windows.len(), 2);
        assert_eq!(report.windows[0].name, "warmup");
        assert!(report.windows[0].items > 0);
        assert!(report.windows[0].recovery.is_none());
        let crash = &report.windows[1];
        assert_eq!(crash.from, 8);
        let recovery = crash.recovery.expect("publications precede the wave");
        assert_eq!(recovery.anchor, 8);
        assert!(recovery.baseline_recall > 0.0);
        // Item-based window scores equal the series' pooled counters.
        let pooled = report.series.pooled(crash.from, crash.until);
        assert_eq!(crash.scores, pooled.scores());
    }

    #[test]
    fn mass_join_grows_the_population() {
        let d = dataset();
        let scenario = Scenario::default().with_environment(Environment {
            loss: LossModel::Constant { p: 0.0 },
            churn: ChurnModel::MassJoin { at: 4, count: 5 },
        });
        let report = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
            .config(cfg())
            .scenario(scenario)
            .run();
        assert_eq!(report.n_nodes, d.n_users() + 5);
    }

    #[test]
    fn partition_window_hurts_recall() {
        let d = dataset();
        let clean = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
            .config(cfg())
            .run();
        let split = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
            .config(cfg())
            .scenario(Scenario::default().with_environment(Environment {
                loss: LossModel::Partition {
                    from: 6,
                    until: 16,
                    frontier: 0.5,
                },
                churn: ChurnModel::None,
            }))
            .run();
        assert!(
            split.scores().recall < clean.scores().recall,
            "a 10-cycle half-split must hurt recall: clean {:?} split {:?}",
            clean.scores(),
            split.scores()
        );
    }

    #[test]
    fn build_gives_a_steppable_simulation_with_events() {
        let d = dataset();
        let joiner_id = d.n_users() as u32;
        let mut sim = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
            .config(cfg())
            .scenario(Scenario::default().with_events(vec![TimedEvent {
                at: 5,
                event: Event::JoinClone { reference: 0 },
            }]))
            .build();
        while sim.current_cycle() < 5 {
            sim.step();
        }
        assert_eq!(
            sim.n_nodes(),
            d.n_users(),
            "join fires at the start of cycle 5"
        );
        sim.step();
        assert_eq!(sim.n_nodes(), d.n_users() + 1);
        while sim.current_cycle() < 16 {
            sim.step();
        }
        assert!(!sim.node(joiner_id).wup_neighbor_ids().is_empty());
    }
}
