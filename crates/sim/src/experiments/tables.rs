//! Drivers for the paper's tables (I, III, IV, V, VI).

use super::{paper, paper_sim_config, scale, seed};
use crate::config::{Protocol, SimConfig};
use crate::engines::run_protocol;
use crate::record::SimReport;
use serde::{Deserialize, Serialize};
use whatsup_datasets::{
    digg, survey, synthetic, DatasetStats, DiggConfig, SurveyConfig, SyntheticConfig,
};
use whatsup_metrics::table::{f2, human_count};
use whatsup_metrics::TextTable;

/// Generates the survey dataset at the experiment scale.
pub fn survey_dataset() -> whatsup_datasets::Dataset {
    survey::generate(&SurveyConfig::paper().scaled(scale()), seed() ^ 0x5eed_0002)
}

/// Generates the Digg dataset at the experiment scale.
pub fn digg_dataset() -> whatsup_datasets::Dataset {
    digg::generate(&DiggConfig::paper().scaled(scale()), seed() ^ 0x5eed_0001)
}

/// Generates the synthetic dataset at the experiment scale.
pub fn synthetic_dataset() -> whatsup_datasets::Dataset {
    synthetic::generate(&SyntheticConfig::paper().scaled(scale()), seed())
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// Table I: workload summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    pub scale: f64,
    pub stats: Vec<DatasetStats>,
}

pub fn table1() -> Table1 {
    let stats = vec![
        synthetic_dataset().stats(),
        digg_dataset().stats(),
        survey_dataset().stats(),
    ];
    Table1 {
        scale: scale(),
        stats,
    }
}

impl Table1 {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            format!("Table I — workloads (scale {:.2})", self.scale),
            &[
                "Name",
                "Users",
                "News",
                "Paper users",
                "Paper news",
                "Like rate",
                "Topics",
            ],
        );
        for s in &self.stats {
            let (pu, pn) = paper::TABLE1
                .iter()
                .find(|(n, _, _)| *n == s.name)
                .map(|&(_, u, n)| (u, n))
                .unwrap_or((0, 0));
            t.row(&[
                s.name.clone(),
                s.n_users.to_string(),
                s.n_items.to_string(),
                pu.to_string(),
                pn.to_string(),
                f2(s.like_rate),
                s.n_topics.to_string(),
            ]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------------------
// Table III
// ---------------------------------------------------------------------------

/// One measured row of Table III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    pub label: String,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub messages_per_user: f64,
    pub paper: (f64, f64, f64, f64),
}

/// Table III: best performance of each approach on the survey.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    pub rows: Vec<Table3Row>,
}

pub fn table3() -> Table3 {
    let dataset = survey_dataset();
    let cfg = paper_sim_config();
    #[allow(clippy::type_complexity)] // paper-table row tuples
    let runs: Vec<(Protocol, &(&str, f64, f64, f64, f64))> = vec![
        (Protocol::Gossip { fanout: 4 }, &paper::TABLE3[0]),
        (Protocol::CfCos { k: 29 }, &paper::TABLE3[1]),
        (Protocol::CfWup { k: 19 }, &paper::TABLE3[2]),
        (Protocol::WhatsUpCos { f_like: 24 }, &paper::TABLE3[3]),
        (Protocol::WhatsUp { f_like: 10 }, &paper::TABLE3[4]),
    ];
    let reports: Vec<SimReport> = {
        use rayon::prelude::*;
        runs.par_iter()
            .map(|(p, _)| run_protocol(&dataset, *p, &cfg))
            .collect()
    };
    let rows = runs
        .iter()
        .zip(reports)
        .map(|((_, paper_row), report)| {
            let s = report.scores();
            Table3Row {
                label: paper_row.0.to_string(),
                precision: s.precision,
                recall: s.recall,
                f1: s.f1,
                messages_per_user: report.messages_per_user(),
                paper: (paper_row.1, paper_row.2, paper_row.3, paper_row.4),
            }
        })
        .collect();
    Table3 { rows }
}

impl Table3 {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table III — survey: best performance (paper | measured)",
            &["Algorithm", "Precision", "Recall", "F1-Score", "Mess./User"],
        );
        for r in &self.rows {
            t.row(&[
                r.label.clone(),
                paper::vs(r.paper.0, r.precision),
                paper::vs(r.paper.1, r.recall),
                paper::vs(r.paper.2, r.f1),
                format!(
                    "{} | {}",
                    human_count(r.paper.3),
                    human_count(r.messages_per_user)
                ),
            ]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------------------
// Table IV
// ---------------------------------------------------------------------------

/// Table IV: dislike-hop distribution of liked receptions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4 {
    pub measured: Vec<f64>,
    pub paper: Vec<f64>,
}

pub fn table4() -> Table4 {
    let dataset = survey_dataset();
    let report = run_protocol(
        &dataset,
        Protocol::WhatsUp { f_like: 10 },
        &paper_sim_config(),
    );
    Table4 {
        measured: report.dislike_distribution(4),
        paper: paper::TABLE4.to_vec(),
    }
}

impl Table4 {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table IV — news received and liked via dislike (fraction)",
            &["Number of dislikes", "0", "1", "2", "3", "4"],
        );
        let fmt =
            |v: &[f64]| -> Vec<String> { v.iter().map(|x| format!("{:.0}%", x * 100.0)).collect() };
        let mut paper_row = vec!["paper".to_string()];
        paper_row.extend(fmt(&self.paper));
        t.row(&paper_row);
        let mut measured_row = vec!["measured".to_string()];
        measured_row.extend(fmt(&self.measured));
        t.row(&measured_row);
        t.render()
    }
}

// ---------------------------------------------------------------------------
// Table V
// ---------------------------------------------------------------------------

/// One row of Table V (explicit baselines).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Row {
    pub dataset: String,
    pub approach: String,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub messages: f64,
    pub paper: (f64, f64, f64, f64),
}

/// Table V: WhatsUp vs cascading (Digg) and vs C-Pub/Sub (survey).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5 {
    pub rows: Vec<Table5Row>,
}

pub fn table5() -> Table5 {
    let digg = digg_dataset();
    let survey = survey_dataset();
    let cfg = paper_sim_config();
    #[allow(clippy::type_complexity)] // paper-table row tuples
    let jobs: Vec<(
        &whatsup_datasets::Dataset,
        Protocol,
        &(&str, &str, f64, f64, f64, f64),
    )> = vec![
        (&digg, Protocol::Cascade, &paper::TABLE5[0]),
        (&digg, Protocol::WhatsUp { f_like: 10 }, &paper::TABLE5[1]),
        (&survey, Protocol::CPubSub, &paper::TABLE5[2]),
        (&survey, Protocol::WhatsUp { f_like: 10 }, &paper::TABLE5[3]),
    ];
    let rows = jobs
        .into_iter()
        .map(|(d, p, pr)| {
            let report = run_protocol(d, p, &cfg);
            let s = report.scores();
            Table5Row {
                dataset: d.name.clone(),
                approach: report.protocol.clone(),
                precision: s.precision,
                recall: s.recall,
                f1: s.f1,
                messages: report.news_messages_all as f64,
                paper: (pr.2, pr.3, pr.4, pr.5),
            }
        })
        .collect();
    Table5 { rows }
}

impl Table5 {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table V — WhatsUp vs C-Pub/Sub and Cascading (paper | measured)",
            &[
                "Dataset",
                "Approach",
                "Precision",
                "Recall",
                "F1-Score",
                "Messages",
            ],
        );
        for r in &self.rows {
            t.row(&[
                r.dataset.clone(),
                r.approach.clone(),
                paper::vs(r.paper.0, r.precision),
                paper::vs(r.paper.1, r.recall),
                paper::vs(r.paper.2, r.f1),
                format!("{} | {}", human_count(r.paper.3), human_count(r.messages)),
            ]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------------------
// Table VI
// ---------------------------------------------------------------------------

/// One (loss, fanout) cell of Table VI.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6Row {
    pub loss: f64,
    pub fanout: usize,
    pub recall: f64,
    pub precision: f64,
    pub f1: f64,
    pub paper_recall: f64,
    pub paper_precision: f64,
}

/// Table VI: performance under message loss (survey).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6 {
    pub rows: Vec<Table6Row>,
}

pub fn table6() -> Table6 {
    let dataset = survey_dataset();
    use rayon::prelude::*;
    let rows: Vec<Table6Row> = paper::TABLE6
        .par_iter()
        .map(|&(loss, fanout, pr, pp)| {
            let cfg = SimConfig {
                loss,
                ..paper_sim_config()
            };
            let report = run_protocol(&dataset, Protocol::WhatsUp { f_like: fanout }, &cfg);
            let s = report.scores();
            Table6Row {
                loss,
                fanout,
                recall: s.recall,
                precision: s.precision,
                f1: s.f1,
                paper_recall: pr,
                paper_precision: pp,
            }
        })
        .collect();
    Table6 { rows }
}

impl Table6 {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table VI — survey: performance vs message-loss rate (paper | measured)",
            &["Loss", "Fanout", "Recall", "Precision", "F1"],
        );
        for r in &self.rows {
            t.row(&[
                format!("{:.0}%", r.loss * 100.0),
                r.fanout.to_string(),
                paper::vs(r.paper_recall, r.recall),
                paper::vs(r.paper_precision, r.precision),
                f2(r.f1),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full drivers run at the env-controlled scale; tests pin tiny
    // datasets through the internal pieces instead of the public drivers to
    // stay fast. The drivers themselves are exercised by the bench harnesses
    // and integration tests.

    #[test]
    fn table1_renders_three_workloads() {
        // table1 only generates datasets (no simulation): cheap enough.
        let t = table1();
        assert_eq!(t.stats.len(), 3);
        let rendered = t.render();
        assert!(rendered.contains("synthetic"));
        assert!(rendered.contains("digg"));
        assert!(rendered.contains("survey"));
    }

    #[test]
    fn table4_rendering_shape() {
        let t = Table4 {
            measured: vec![0.5, 0.3, 0.1, 0.06, 0.04],
            paper: paper::TABLE4.to_vec(),
        };
        let r = t.render();
        assert!(r.contains("54%"), "{r}");
        assert!(r.contains("50%"), "{r}");
    }

    #[test]
    fn table6_render_includes_loss_levels() {
        let rows = paper::TABLE6
            .iter()
            .map(|&(loss, fanout, pr, pp)| Table6Row {
                loss,
                fanout,
                recall: pr,
                precision: pp,
                f1: 0.5,
                paper_recall: pr,
                paper_precision: pp,
            })
            .collect();
        let t = Table6 { rows };
        let r = t.render();
        assert!(r.contains("50%"));
        assert!(r.contains("20%"));
    }
}
