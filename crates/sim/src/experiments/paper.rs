//! The paper's published numbers, embedded for side-by-side comparison in
//! every harness output and in EXPERIMENTS.md.

/// Table I: workload summary (name, users, news items).
pub const TABLE1: &[(&str, usize, usize)] = &[
    ("synthetic", 3180, 2000),
    ("digg", 750, 2500),
    ("survey", 480, 1000),
];

/// Table III (survey): algorithm, precision, recall, F1, messages/user.
pub const TABLE3: &[(&str, f64, f64, f64, f64)] = &[
    ("Gossip (f=4)", 0.35, 0.99, 0.51, 4600.0),
    ("CF-Cos (k=29)", 0.50, 0.65, 0.57, 5900.0),
    ("CF-Wup (k=19)", 0.45, 0.85, 0.59, 4700.0),
    ("WhatsUp-Cos (fLIKE=24)", 0.51, 0.72, 0.60, 4300.0),
    ("WhatsUp (fLIKE=10)", 0.47, 0.83, 0.60, 2400.0),
];

/// Table IV: fraction of liked items received after 0..=4 dislike hops.
pub const TABLE4: [f64; 5] = [0.54, 0.31, 0.10, 0.03, 0.02];

/// Table V: dataset, approach, precision, recall, F1, total messages.
pub const TABLE5: &[(&str, &str, f64, f64, f64, f64)] = &[
    ("digg", "Cascade", 0.57, 0.09, 0.16, 228_000.0),
    ("digg", "WhatsUp", 0.56, 0.57, 0.57, 705_000.0),
    ("survey", "C-Pub/Sub", 0.40, 1.0, 0.58, 470_000.0),
    ("survey", "WhatsUp", 0.47, 0.83, 0.60, 1_100_000.0),
];

/// Table VI: (loss %, fanout, recall, precision).
pub const TABLE6: &[(f64, usize, f64, f64)] = &[
    (0.0, 3, 0.63, 0.47),
    (0.0, 6, 0.82, 0.48),
    (0.05, 3, 0.61, 0.47),
    (0.05, 6, 0.82, 0.47),
    (0.20, 3, 0.46, 0.47),
    (0.20, 6, 0.80, 0.46),
    (0.50, 3, 0.07, 0.55),
    (0.50, 6, 0.45, 0.44),
];

/// §V-A text: average clustering coefficient of the survey overlay.
pub const CLUSTERING_WUP: f64 = 0.15;
pub const CLUSTERING_COS: f64 = 0.40;

/// §V-A text: average number of connected components at fanout 3
/// (WhatsUp, CF-Wup, WhatsUp-Cos, CF-Cos).
pub const COMPONENTS_AT_F3: [f64; 4] = [1.6, 2.6, 12.4, 14.3];

/// §V-A: fanout at which the WUP metric reaches a fully connected LSCC vs
/// cosine (Fig. 4).
pub const LSCC_FULL_FANOUT_WUP: usize = 10;
pub const LSCC_FULL_FANOUT_COS: usize = 15;

/// Fig. 6: mean infection hop distance reported for the survey at fLIKE=5.
pub const MEAN_INFECTION_HOPS: f64 = 5.0;

/// §V-C: convergence cycles for the joining node (WhatsUp vs WhatsUp-Cos).
pub const JOIN_CONVERGENCE_WUP: u32 = 20;
pub const JOIN_CONVERGENCE_COS: u32 = 100;

/// §V-C: convergence cycles for the interest-changing node.
pub const CHANGE_CONVERGENCE_WUP: u32 = 40;
pub const CHANGE_CONVERGENCE_COS: u32 = 100;

/// §V-G: centralized vs decentralized — F1 gap (5%), precision gain (17%),
/// recall loss (14%) of C-WhatsUp relative to WhatsUp.
pub const CENTRALIZED_F1_GAP: f64 = 0.05;

/// Formats a paper-vs-measured pair for harness output.
pub fn vs(paper: f64, measured: f64) -> String {
    format!("{paper:>6.2} | {measured:>6.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_sums_to_one() {
        assert!((TABLE4.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table3_f1_consistent_with_pr() {
        for &(name, p, r, f1, _) in TABLE3 {
            let computed = 2.0 * p * r / (p + r);
            assert!(
                (computed - f1).abs() < 0.02,
                "{name}: paper F1 {f1} vs harmonic {computed}"
            );
        }
    }

    #[test]
    fn vs_formats() {
        assert_eq!(vs(0.5, 0.25), "  0.50 |   0.25");
    }
}
