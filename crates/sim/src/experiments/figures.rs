//! Drivers for the paper's figures (3–7, 9–11) and the DESIGN.md ablations.
//! (Fig. 8 needs the network runtimes; its driver lives in the bench crate
//! on top of `whatsup-net`, with the simulation curve provided here.)

use super::tables::{digg_dataset, survey_dataset, synthetic_dataset};
use super::{paper, paper_sim_config};
use crate::analysis::{self, OverlayStats};
use crate::config::{Protocol, SimConfig};
use crate::dynamics::{self, DynamicsConfig, DynamicsResult};
use crate::engines::run_protocol;
use crate::runner::Runner;
use crate::sweep::{f1_vs_fanout, f1_vs_messages, grid_sweep};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use whatsup_metrics::{Series, SeriesSet};

/// The four protocols of Figs. 3–4.
fn metric_protocols() -> Vec<Protocol> {
    vec![
        Protocol::CfWup { k: 0 },
        Protocol::CfCos { k: 0 },
        Protocol::WhatsUp { f_like: 0 },
        Protocol::WhatsUpCos { f_like: 0 },
    ]
}

// ---------------------------------------------------------------------------
// Fig. 3
// ---------------------------------------------------------------------------

/// Fig. 3: F1 vs fanout and vs message cost, per dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    /// (dataset, F1-vs-fanout, F1-vs-messages).
    pub panels: Vec<(String, SeriesSet, SeriesSet)>,
}

pub fn fig3() -> Fig3 {
    let cfg = paper_sim_config();
    let jobs: Vec<(whatsup_datasets::Dataset, Vec<usize>)> = vec![
        (synthetic_dataset(), vec![5, 10, 15, 20, 30, 45]),
        (digg_dataset(), vec![5, 10, 15, 20, 25]),
        (survey_dataset(), vec![5, 10, 15, 20, 25, 30]),
    ];
    let panels = jobs
        .into_iter()
        .map(|(dataset, fanouts)| {
            let reports = grid_sweep(&dataset, &metric_protocols(), &fanouts, &cfg);
            let by_fanout = f1_vs_fanout(&reports, format!("Fig 3 {} — fanout", dataset.name));
            let by_msgs = f1_vs_messages(&reports, format!("Fig 3 {} — messages", dataset.name));
            (dataset.name, by_fanout, by_msgs)
        })
        .collect();
    Fig3 { panels }
}

impl Fig3 {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, fanout, msgs) in &self.panels {
            out.push_str(&format!("--- dataset: {name} ---\n"));
            out.push_str(&fanout.render());
            out.push('\n');
            out.push_str(&msgs.render());
            out.push('\n');
        }
        out.push_str(
            "paper shape: WhatsUp ≥ WhatsUp-Cos ≥ CF-Wup ≥ CF-Cos in F1 at equal \
             fanout; WhatsUp reaches its plateau at lower message cost.\n",
        );
        out
    }

    /// Best (max over fanout) F1 per protocol per dataset — the ordering the
    /// paper's narrative rests on.
    pub fn best_f1(&self, dataset: &str, protocol: &str) -> Option<f64> {
        let (_, by_fanout, _) = self.panels.iter().find(|(n, _, _)| n == dataset)?;
        by_fanout.get(protocol)?.max_y()
    }
}

// ---------------------------------------------------------------------------
// Fig. 4 (+ §V-A topology numbers)
// ---------------------------------------------------------------------------

/// Fig. 4: LSCC fraction vs fanout, plus clustering/component stats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4 {
    pub lscc: SeriesSet,
    /// (protocol, fanout, overlay stats) for every sampled point.
    pub overlay: Vec<(String, usize, OverlayStats)>,
}

pub fn fig4() -> Fig4 {
    let dataset = survey_dataset();
    let cfg = paper_sim_config();
    let fanouts = [2usize, 3, 4, 6, 8, 10, 12];
    let jobs: Vec<(Protocol, usize)> = metric_protocols()
        .into_iter()
        .flat_map(|p| fanouts.iter().map(move |&f| (p.with_fanout(f), f)))
        .collect();
    let overlay: Vec<(String, usize, OverlayStats)> = jobs
        .par_iter()
        .map(|&(p, f)| {
            let mut sim = Runner::new(&dataset, p).config(cfg.clone()).build();
            while sim.current_cycle() < cfg.cycles {
                sim.step();
            }
            (p.label(), f, analysis::overlay_stats(&sim))
        })
        .collect();
    let mut lscc = SeriesSet::new(
        "Fig 4 — LSCC fraction vs fanout (survey)",
        "fanout",
        "fraction",
    );
    for (label, f, stats) in &overlay {
        if lscc.get(label).is_none() {
            lscc.add(Series::new(label.clone()));
        }
        let series = lscc
            .series
            .iter_mut()
            .find(|s| &s.label == label)
            .expect("added");
        series.push(*f as f64, stats.lscc_fraction);
    }
    for s in &mut lscc.series {
        s.points
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    }
    Fig4 { lscc, overlay }
}

impl Fig4 {
    pub fn render(&self) -> String {
        let mut out = self.lscc.render();
        out.push_str("\nOverlay stats (protocol, fanout, clustering coeff, components):\n");
        for (label, f, s) in &self.overlay {
            out.push_str(&format!(
                "  {label:<12} f={f:<3} clustering={:.3} components={} lscc={:.2}\n",
                s.clustering_coefficient, s.components, s.lscc_fraction
            ));
        }
        out.push_str(&format!(
            "paper: clustering {:.2} (WUP) vs {:.2} (cosine); components at f=3: \
             {:?}; LSCC complete at f≈{} (WUP) vs f≈{} (cosine)\n",
            paper::CLUSTERING_WUP,
            paper::CLUSTERING_COS,
            paper::COMPONENTS_AT_F3,
            paper::LSCC_FULL_FANOUT_WUP,
            paper::LSCC_FULL_FANOUT_COS,
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 5
// ---------------------------------------------------------------------------

/// Fig. 5: impact of the BEEP TTL (survey).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5 {
    pub set: SeriesSet,
}

pub fn fig5() -> Fig5 {
    let dataset = survey_dataset();
    let ttls = [0u8, 1, 2, 4, 6, 8];
    let reports: Vec<(u8, crate::record::SimReport)> = ttls
        .par_iter()
        .map(|&ttl| {
            let cfg = SimConfig {
                ttl_override: Some(ttl),
                ..paper_sim_config()
            };
            (
                ttl,
                run_protocol(&dataset, Protocol::WhatsUp { f_like: 10 }, &cfg),
            )
        })
        .collect();
    let mut set = SeriesSet::new("Fig 5 — impact of BEEP TTL (survey)", "max TTL", "score");
    let mut precision = Series::new("Precision");
    let mut recall = Series::new("Recall");
    let mut f1 = Series::new("F1-Score");
    for (ttl, report) in &reports {
        let s = report.scores();
        precision.push(*ttl as f64, s.precision);
        recall.push(*ttl as f64, s.recall);
        f1.push(*ttl as f64, s.f1);
    }
    set.add(precision);
    set.add(recall);
    set.add(f1);
    Fig5 { set }
}

impl Fig5 {
    pub fn render(&self) -> String {
        let mut out = self.set.render();
        out.push_str("paper shape: low TTL starves recall; TTL > 4 brings no further gain.\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 6
// ---------------------------------------------------------------------------

/// Fig. 6: dissemination actions per hop distance (survey, fLIKE = 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6 {
    pub set: SeriesSet,
    pub mean_infection_hop: f64,
}

pub fn fig6() -> Fig6 {
    let dataset = survey_dataset();
    let report = run_protocol(
        &dataset,
        Protocol::WhatsUp { f_like: 5 },
        &paper_sim_config(),
    );
    let profile = report.hop_profile(30);
    let mut set = SeriesSet::new(
        "Fig 6 — dissemination by hop (survey, fLIKE=5, per item)",
        "hops",
        "nodes",
    );
    let mk = |label: &str, data: &[f64]| {
        let mut s = Series::new(label);
        for (h, &v) in data.iter().enumerate() {
            s.push(h as f64, v);
        }
        s
    };
    set.add(mk("Forward by like", &profile.forward_like));
    set.add(mk("Infection by like", &profile.infection_like));
    set.add(mk("Forward by dislike", &profile.forward_dislike));
    set.add(mk("Infection by dislike", &profile.infection_dislike));
    Fig6 {
        set,
        mean_infection_hop: profile.mean_infection_hop(),
    }
}

impl Fig6 {
    pub fn render(&self) -> String {
        let mut out = self.set.render();
        out.push_str(&format!(
            "mean infection hop: measured {:.2} (paper reports ≈{:.0}); bell shape \
             with a non-negligible dislike contribution expected.\n",
            self.mean_infection_hop,
            paper::MEAN_INFECTION_HOPS
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 7
// ---------------------------------------------------------------------------

/// Fig. 7: cold start and interest dynamics, WhatsUp vs WhatsUp-Cos.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    pub event_at: u32,
    pub wup: DynamicsResult,
    pub cos: DynamicsResult,
}

pub fn fig7(repeats: usize) -> Fig7 {
    let dataset = survey_dataset();
    let cfg = DynamicsConfig {
        base: SimConfig {
            cycles: 120,
            publish_from: 3,
            measure_from: 10,
            ..paper_sim_config()
        },
        event_at: 60,
        repeats,
    };
    let wup = dynamics::run(&dataset, Protocol::WhatsUp { f_like: 10 }, &cfg);
    let cos = dynamics::run(&dataset, Protocol::WhatsUpCos { f_like: 10 }, &cfg);
    Fig7 {
        event_at: cfg.event_at,
        wup,
        cos,
    }
}

impl Fig7 {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, trace) in [("WhatsUp", &self.wup), ("WhatsUp-Cos", &self.cos)] {
            out.push_str(&format!(
                "--- {name} (event at cycle {}) ---\n",
                self.event_at
            ));
            out.push_str(&format!(
                "{:>6} {:>10} {:>10} {:>10} {:>10}\n",
                "cycle", "ref-sim", "join-sim", "chg-sim", "join-liked"
            ));
            for (i, &c) in trace.cycles.iter().enumerate() {
                if c % 10 != 0 && c != self.event_at {
                    continue;
                }
                out.push_str(&format!(
                    "{c:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.2}\n",
                    trace.reference_similarity[i],
                    trace.joining_similarity[i],
                    trace.changing_similarity[i],
                    trace.joining_liked[i],
                ));
            }
            let join = trace.joining_convergence_cycle(self.event_at, 0.8);
            let change = trace.changing_convergence_cycle(self.event_at + 1, 0.8);
            out.push_str(&format!(
                "convergence to 80% of reference: join={join:?} change={change:?} cycles\n",
            ));
        }
        out.push_str(&format!(
            "paper: join ≈{} cycles (WhatsUp) vs >{} (cosine); change ≈{} vs >{}.\n",
            paper::JOIN_CONVERGENCE_WUP,
            paper::JOIN_CONVERGENCE_COS,
            paper::CHANGE_CONVERGENCE_WUP,
            paper::CHANGE_CONVERGENCE_COS,
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 8 (simulation curve only; emulated/deployed curves in whatsup-net)
// ---------------------------------------------------------------------------

/// The simulation curve of Fig. 8a: F1 vs fanout on a ~245-user survey.
pub fn fig8_sim_curve(fanouts: &[usize]) -> Series {
    // The paper's deployment used 245 users (a survey slice).
    let cfg_scale = 245.0 / 480.0;
    let dataset = whatsup_datasets::survey::generate(
        &whatsup_datasets::SurveyConfig::paper().scaled(cfg_scale),
        super::seed() ^ 0x5eed_0002,
    );
    let cfg = paper_sim_config();
    let mut series = Series::new("Simulation");
    let reports: Vec<crate::record::SimReport> = fanouts
        .par_iter()
        .map(|&f| run_protocol(&dataset, Protocol::WhatsUp { f_like: f }, &cfg))
        .collect();
    for r in reports {
        series.push(r.fanout.unwrap_or(0) as f64, r.scores().f1);
    }
    series
}

// ---------------------------------------------------------------------------
// Fig. 9
// ---------------------------------------------------------------------------

/// Fig. 9: centralized vs decentralized (survey).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9 {
    pub set: SeriesSet,
}

pub fn fig9() -> Fig9 {
    let dataset = survey_dataset();
    let cfg = paper_sim_config();
    let fanouts = [2usize, 4, 6, 8, 10, 12, 14];
    let protocols = [
        Protocol::CWhatsUp { f_like: 0 },
        Protocol::WhatsUp { f_like: 0 },
        Protocol::WhatsUpCos { f_like: 0 },
    ];
    let reports = grid_sweep(&dataset, &protocols, &fanouts, &cfg);
    let mut set = f1_vs_fanout(&reports, "Fig 9 — centralized vs decentralized (survey)");
    // Match the paper's legend.
    for s in &mut set.series {
        if s.label == "C-WhatsUp" {
            s.label = "Centralized".into();
        }
    }
    Fig9 { set }
}

impl Fig9 {
    pub fn render(&self) -> String {
        let mut out = self.set.render();
        let gap = match (
            self.set.get("Centralized").and_then(|s| s.max_y()),
            self.set.get("WhatsUp").and_then(|s| s.max_y()),
        ) {
            (Some(c), Some(w)) if c > 0.0 => (c - w) / c,
            _ => f64::NAN,
        };
        out.push_str(&format!(
            "best-F1 gap centralized→decentralized: measured {:.1}% (paper ≈{:.0}%)\n",
            gap * 100.0,
            paper::CENTRALIZED_F1_GAP * 100.0
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 10
// ---------------------------------------------------------------------------

/// Fig. 10: recall vs item popularity (survey), WhatsUp vs CF-Wup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10 {
    pub set: SeriesSet,
    /// Popularity distribution (bin center, fraction of items).
    pub distribution: Vec<(f64, f64)>,
    /// Per-protocol dispersion stats the paper discusses but does not plot:
    /// (label, std-dev of per-item recall, fraction of items with recall
    /// < 0.2 — "almost completely out of the dissemination").
    pub dispersion: Vec<(String, f64, f64)>,
}

pub fn fig10() -> Fig10 {
    let dataset = survey_dataset();
    let cfg = paper_sim_config();
    let (wu, cf) = rayon::join(
        || run_protocol(&dataset, Protocol::WhatsUp { f_like: 10 }, &cfg),
        || run_protocol(&dataset, Protocol::CfWup { k: 19 }, &cfg),
    );
    let bins = 10;
    let (wu_rows, dist) = analysis::recall_vs_popularity(&wu, &dataset, bins);
    let (cf_rows, _) = analysis::recall_vs_popularity(&cf, &dataset, bins);
    let mut set = SeriesSet::new(
        "Fig 10 — recall vs popularity (survey)",
        "popularity",
        "avg recall",
    );
    let mut s_wu = Series::new("WhatsUp");
    for (x, y, _) in &wu_rows {
        s_wu.push(*x, *y);
    }
    let mut s_cf = Series::new("CF-Wup");
    for (x, y, _) in &cf_rows {
        s_cf.push(*x, *y);
    }
    set.add(s_wu);
    set.add(s_cf);
    let dispersion = [("WhatsUp", &wu), ("CF-Wup", &cf)]
        .into_iter()
        .map(|(label, report)| {
            let recalls: Vec<f64> = report
                .items
                .iter()
                .filter(|r| r.measured)
                .map(|r| r.outcome().recall())
                .collect();
            let left_out =
                recalls.iter().filter(|&&r| r < 0.2).count() as f64 / recalls.len().max(1) as f64;
            (
                label.to_string(),
                whatsup_metrics::std_dev(&recalls),
                left_out,
            )
        })
        .collect();
    Fig10 {
        set,
        distribution: dist,
        dispersion,
    }
}

impl Fig10 {
    pub fn render(&self) -> String {
        let mut out = self.set.render();
        out.push_str("\npopularity distribution (bin center, fraction of items):\n");
        for (x, f) in &self.distribution {
            out.push_str(&format!("  {x:>5.2} {f:>7.3}\n"));
        }
        out.push_str("\nper-item recall dispersion (σ, fraction left out <0.2):\n");
        for (label, sd, left_out) in &self.dispersion {
            out.push_str(&format!("  {label:<10} σ={sd:.3} left-out={left_out:.3}\n"));
        }
        out.push_str(
            "paper shape: WhatsUp ≥ CF-Wup across the spectrum, with the largest \
             gain on unpopular items (0–0.5); CF-Wup shows higher variance, \
             leaving some items almost completely out (§V-H).\n",
        );
        out
    }

    /// Mean recall over items below the given popularity (niche content).
    pub fn niche_recall(&self, protocol: &str, below: f64) -> Option<f64> {
        let s = self.set.get(protocol)?;
        let pts: Vec<f64> = s
            .points
            .iter()
            .filter(|&&(x, _)| x < below)
            .map(|&(_, y)| y)
            .collect();
        if pts.is_empty() {
            None
        } else {
            Some(pts.iter().sum::<f64>() / pts.len() as f64)
        }
    }
}

// ---------------------------------------------------------------------------
// Fig. 11
// ---------------------------------------------------------------------------

/// Fig. 11: F1 vs user sociability (survey).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11 {
    /// (sociability bin center, mean user F1, users).
    pub rows: Vec<(f64, f64, u64)>,
    /// Sociability distribution (bin center, fraction of users).
    pub distribution: Vec<(f64, f64)>,
}

pub fn fig11() -> Fig11 {
    let dataset = survey_dataset();
    let report = run_protocol(
        &dataset,
        Protocol::WhatsUp { f_like: 10 },
        &paper_sim_config(),
    );
    let (rows, distribution) = analysis::f1_vs_sociability(&report, &dataset, 15, 10);
    Fig11 { rows, distribution }
}

impl Fig11 {
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 11 — F1 vs sociability (survey)\n");
        out.push_str(&format!(
            "{:>12} {:>10} {:>8}\n",
            "sociability", "mean F1", "users"
        ));
        for (x, y, c) in &self.rows {
            out.push_str(&format!("{x:>12.2} {y:>10.3} {c:>8}\n"));
        }
        out.push_str("\nsociability distribution:\n");
        for (x, f) in &self.distribution {
            out.push_str(&format!("  {x:>5.2} {f:>7.3}\n"));
        }
        out.push_str("paper shape: F1 increases with sociability (incentive effect).\n");
        out
    }

    /// Correlation check: does F1 increase with sociability?
    pub fn is_monotonic_trend(&self) -> bool {
        let populated: Vec<&(f64, f64, u64)> =
            self.rows.iter().filter(|(_, _, c)| *c >= 3).collect();
        if populated.len() < 2 {
            return false;
        }
        let first = populated.first().expect("len checked").1;
        let last = populated.last().expect("len checked").1;
        last > first
    }
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §7)
// ---------------------------------------------------------------------------

/// Ablation results: what each BEEP mechanism and parameter choice buys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ablations {
    /// (variant label, precision, recall, f1, msgs/user).
    pub mechanisms: Vec<(String, f64, f64, f64, f64)>,
    /// (profile window, f1).
    pub window_sweep: Vec<(u32, f64)>,
    /// (WUP view size / fLIKE ratio ×10, f1).
    pub view_ratio_sweep: Vec<(u32, f64)>,
    /// §VII privacy extension: (obfuscation ε, precision, recall, F1).
    pub privacy_sweep: Vec<(f64, f64, f64, f64)>,
    /// Robustness under churn: (fraction of nodes lost per cycle, recall, F1).
    pub churn_sweep: Vec<(f64, f64, f64)>,
}

pub fn ablations() -> Ablations {
    let dataset = survey_dataset();
    let cfg = paper_sim_config();
    let variants = [
        Protocol::WhatsUp { f_like: 10 },
        Protocol::NoAmplification { fanout: 10 },
        Protocol::NoOrientation { f_like: 10 },
        Protocol::Gossip { fanout: 10 },
    ];
    let mechanisms: Vec<(String, f64, f64, f64, f64)> = variants
        .par_iter()
        .map(|&p| {
            let r = run_protocol(&dataset, p, &cfg);
            let s = r.scores();
            (
                p.label(),
                s.precision,
                s.recall,
                s.f1,
                r.messages_per_user(),
            )
        })
        .collect();
    let windows = [3u32, 7, 13, 26, 39, 52];
    let window_sweep: Vec<(u32, f64)> = windows
        .par_iter()
        .map(|&w| {
            let c = SimConfig {
                profile_window: Some(w),
                ..cfg.clone()
            };
            let r = run_protocol(&dataset, Protocol::WhatsUp { f_like: 10 }, &c);
            (w, r.scores().f1)
        })
        .collect();
    let ratios = [10u32, 15, 20, 30, 40]; // ×10 of WUPvs/fLIKE
    let view_ratio_sweep: Vec<(u32, f64)> = ratios
        .par_iter()
        .map(|&r10| {
            let vs = (10 * r10 as usize) / 10;
            let c = SimConfig {
                wup_view_override: Some(vs),
                ..cfg.clone()
            };
            let r = run_protocol(&dataset, Protocol::WhatsUp { f_like: 10 }, &c);
            (r10, r.scores().f1)
        })
        .collect();
    let epsilons = [0.0f64, 0.2, 0.4, 0.6, 0.8];
    let privacy_sweep: Vec<(f64, f64, f64, f64)> = epsilons
        .par_iter()
        .map(|&eps| {
            let c = SimConfig {
                obfuscation: Some(eps),
                ..cfg.clone()
            };
            let r = run_protocol(&dataset, Protocol::WhatsUp { f_like: 10 }, &c);
            let s = r.scores();
            (eps, s.precision, s.recall, s.f1)
        })
        .collect();
    let churn_levels = [0.0f64, 0.01, 0.02, 0.05, 0.10];
    let churn_sweep: Vec<(f64, f64, f64)> = churn_levels
        .par_iter()
        .map(|&churn| {
            let c = SimConfig {
                churn_per_cycle: churn,
                ..cfg.clone()
            };
            let r = run_protocol(&dataset, Protocol::WhatsUp { f_like: 10 }, &c);
            let s = r.scores();
            (churn, s.recall, s.f1)
        })
        .collect();
    Ablations {
        mechanisms,
        window_sweep,
        view_ratio_sweep,
        privacy_sweep,
        churn_sweep,
    }
}

impl Ablations {
    pub fn render(&self) -> String {
        let mut out = String::from("== Ablations (survey, fLIKE=10) ==\n");
        out.push_str(&format!(
            "{:<18} {:>10} {:>8} {:>8} {:>10}\n",
            "variant", "precision", "recall", "F1", "msgs/user"
        ));
        for (label, p, r, f1, m) in &self.mechanisms {
            out.push_str(&format!(
                "{label:<18} {p:>10.3} {r:>8.3} {f1:>8.3} {m:>10.0}\n"
            ));
        }
        out.push_str("\nprofile window sweep (window cycles, F1):\n");
        for (w, f1) in &self.window_sweep {
            out.push_str(&format!("  {w:>3} {f1:>7.3}\n"));
        }
        out.push_str("paper §IV-D: best F1 between 1/5 (13) and 2/5 (26) of the run.\n");
        out.push_str("\nWUPvs/fLIKE ratio sweep (ratio×10, F1):\n");
        for (r, f1) in &self.view_ratio_sweep {
            out.push_str(&format!("  {:>4.1} {f1:>7.3}\n", *r as f64 / 10.0));
        }
        out.push_str("paper §IV-D: WUPvs = 2·fLIKE gives the best trade-off.\n");
        out.push_str("\nprivacy (randomized-response ε, precision, recall, F1):\n");
        for (eps, p, r, f1) in &self.privacy_sweep {
            out.push_str(&format!("  ε={eps:>4.2} {p:>7.3} {r:>7.3} {f1:>7.3}\n"));
        }
        out.push_str(
            "paper §VII: obfuscation trades recommendation accuracy for \
             taste disclosure — F1 should degrade gracefully with ε.\n",
        );
        out.push_str("\nchurn (fraction crash-rejoin per cycle, recall, F1):\n");
        for (churn, r, f1) in &self.churn_sweep {
            out.push_str(&format!("  {churn:>5.2} {r:>7.3} {f1:>7.3}\n"));
        }
        out.push_str(
            "gossip self-heals: a few percent churn per cycle should cost \
             little; heavy churn starves profiles and recall.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_protocols_cover_fig3_legend() {
        let labels: Vec<String> = metric_protocols().iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["CF-Wup", "CF-Cos", "WhatsUp", "WhatsUp-Cos"]);
    }

    #[test]
    fn fig8_sim_curve_is_monotone_in_x() {
        // Tiny sanity check at reduced fanouts only (full curve in benches).
        let s = fig8_sim_curve(&[2, 3]);
        assert_eq!(s.points.len(), 2);
        assert!(s.points[0].0 < s.points[1].0);
    }
}
