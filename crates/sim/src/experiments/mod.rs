//! Experiment drivers: one function per paper table/figure.
//!
//! Each driver returns a typed, serializable result with a `render()`
//! producing the rows/series the paper reports, side by side with the
//! paper's own numbers where the paper states them. The benchmark harnesses
//! in `crates/bench/benches/` are thin wrappers that print the rendering
//! and persist the JSON under `target/experiments/`.
//!
//! Scale control (wall-clock vs fidelity):
//! * `WHATSUP_FULL=1` — paper-scale datasets (3180/750/480 users);
//! * `WHATSUP_SCALE=<f>` — explicit scale factor in `(0, 1]`;
//! * default — 0.35, which keeps `cargo bench` in minutes while preserving
//!   every qualitative relationship.

pub mod figures;
pub mod paper;
pub mod tables;

use crate::config::SimConfig;
use serde::Serialize;
use std::path::PathBuf;

/// The dataset scale factor for experiment runs (see module docs).
pub fn scale() -> f64 {
    if std::env::var("WHATSUP_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        return 1.0;
    }
    std::env::var("WHATSUP_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v.clamp(0.02, 1.0))
        .unwrap_or(0.35)
}

/// Base seed shared by all experiments (deterministic by default, overridable
/// with `WHATSUP_SEED`).
pub fn seed() -> u64 {
    std::env::var("WHATSUP_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0x0057_ab1e_5eed)
}

/// The paper's simulation shape: 65 cycles, window 13 = 1/5 of the run,
/// measurement after the clustering ramp.
pub fn paper_sim_config() -> SimConfig {
    SimConfig {
        cycles: 65,
        publish_from: 3,
        measure_from: 20,
        seed: seed(),
        ..Default::default()
    }
}

/// Directory where harnesses persist their JSON artifacts.
pub fn output_dir() -> PathBuf {
    let dir = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(dir).join("experiments")
}

/// Persists an experiment result as JSON under [`output_dir`]. Errors are
/// reported, not fatal — the rendering on stdout is the primary artifact.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = output_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Persists an already-built JSON [`serde::json::Value`] under
/// [`output_dir`]. Harnesses whose artifacts need named columns (arrays of
/// objects) go through this path: the Debug-based [`save_json`] only
/// renders strict JSON for primitive collections, while a `Value` always
/// pretty-prints as strict JSON.
pub fn save_json_value(name: &str, value: &serde::json::Value) {
    let dir = output_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, value.pretty() + "\n") {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_are_sane() {
        // Cannot portably mutate env in parallel tests; just check bounds.
        let s = scale();
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn paper_config_matches_section_iv() {
        let cfg = paper_sim_config();
        assert_eq!(cfg.cycles, 65);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn save_json_writes_file() {
        save_json("selftest", &serde_json::json!({"ok": true}));
        let path = output_dir().join("selftest.json");
        assert!(path.exists());
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("ok"));
    }
}
