//! Simulation configuration, the protocol selector and the transport
//! selector.

use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use whatsup_core::{Metric, Params};

/// Where the engine's shard workers execute. A pure execution knob, like
/// [`SimConfig::shards`]: reports are bit-identical across all variants
/// (see the `engine` module docs for the determinism contract and the
/// distributed topology).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Transport {
    /// Shard worker threads inside this process (a single shard runs
    /// inline without serialization).
    #[default]
    InProcess,
    /// `sim-shard-worker` child processes at this binary path, frames
    /// over stdio pipes.
    Process(PathBuf),
    /// Already-listening `sim-shard-worker --listen` processes, frames
    /// over TCP. One `host:port` address per shard, in shard order — the
    /// shard count *is* the worker count, overriding [`SimConfig::shards`].
    /// Workers start first, the driver dials second.
    Socket(Vec<String>),
}

impl Transport {
    /// Parses the CLI's `--workers host:port,host:port,…` list.
    pub fn parse_workers(list: &str) -> Result<Vec<String>, String> {
        let workers: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        if workers.is_empty() {
            return Err("worker list is empty".into());
        }
        for w in &workers {
            if !w.contains(':') {
                return Err(format!("worker address '{w}' is not host:port"));
            }
        }
        Ok(workers)
    }
}

/// One protocol under evaluation (§IV-B). Everything the paper's Figs. 3–11
/// and Tables III–VI compare is expressible here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protocol {
    /// The full system: WUP metric + BEEP amplification/orientation.
    WhatsUp { f_like: usize },
    /// WhatsUp with cosine similarity (§V-A).
    WhatsUpCos { f_like: usize },
    /// Decentralized CF, WUP metric, k nearest neighbors (§IV-B).
    CfWup { k: usize },
    /// Decentralized CF, cosine similarity.
    CfCos { k: usize },
    /// Homogeneous gossip with fixed fanout (Table III).
    Gossip { fanout: usize },
    /// Explicit social cascade (Digg only, Table V).
    Cascade,
    /// Centralized complete topic-based pub/sub (Table V).
    CPubSub,
    /// Centralized WhatsUp with global knowledge (Fig. 9).
    CWhatsUp { f_like: usize },
    /// Ablation: BEEP without amplification (all fanouts equal).
    NoAmplification { fanout: usize },
    /// Ablation: BEEP with un-oriented (uniform random) dislike forwarding.
    NoOrientation { f_like: usize },
    /// Scuttlebutt anti-entropy: versioned per-node state reconciled by
    /// pairwise digest/delta exchange, phi-accrual failure detection. The
    /// modern point of comparison BEEP is measured against (ROADMAP).
    AntiEntropy { fanout: usize },
}

impl Protocol {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            Protocol::WhatsUp { .. } => "WhatsUp".into(),
            Protocol::WhatsUpCos { .. } => "WhatsUp-Cos".into(),
            Protocol::CfWup { .. } => "CF-Wup".into(),
            Protocol::CfCos { .. } => "CF-Cos".into(),
            Protocol::Gossip { .. } => "Gossip".into(),
            Protocol::Cascade => "Cascade".into(),
            Protocol::CPubSub => "C-Pub/Sub".into(),
            Protocol::CWhatsUp { .. } => "C-WhatsUp".into(),
            Protocol::NoAmplification { .. } => "NoAmplification".into(),
            Protocol::NoOrientation { .. } => "NoOrientation".into(),
            Protocol::AntiEntropy { .. } => "Anti-Entropy".into(),
        }
    }

    /// True for the global-knowledge baselines (cascade, pub/sub,
    /// centralized): they run on a server model, not the per-node gossip
    /// stack, so per-cycle scenario events and environment models cannot
    /// apply to them.
    pub fn is_global(&self) -> bool {
        matches!(
            self,
            Protocol::Cascade | Protocol::CPubSub | Protocol::CWhatsUp { .. }
        )
    }

    /// The fanout-style knob of this protocol, if any (x-axis of Fig. 3).
    pub fn fanout(&self) -> Option<usize> {
        match *self {
            Protocol::WhatsUp { f_like }
            | Protocol::WhatsUpCos { f_like }
            | Protocol::CWhatsUp { f_like }
            | Protocol::NoOrientation { f_like } => Some(f_like),
            Protocol::CfWup { k } | Protocol::CfCos { k } => Some(k),
            Protocol::Gossip { fanout }
            | Protocol::NoAmplification { fanout }
            | Protocol::AntiEntropy { fanout } => Some(fanout),
            Protocol::Cascade | Protocol::CPubSub => None,
        }
    }

    /// Same protocol at a different fanout (sweep helper).
    pub fn with_fanout(&self, f: usize) -> Protocol {
        match self {
            Protocol::WhatsUp { .. } => Protocol::WhatsUp { f_like: f },
            Protocol::WhatsUpCos { .. } => Protocol::WhatsUpCos { f_like: f },
            Protocol::CfWup { .. } => Protocol::CfWup { k: f },
            Protocol::CfCos { .. } => Protocol::CfCos { k: f },
            Protocol::Gossip { .. } => Protocol::Gossip { fanout: f },
            Protocol::CWhatsUp { .. } => Protocol::CWhatsUp { f_like: f },
            Protocol::NoAmplification { .. } => Protocol::NoAmplification { fanout: f },
            Protocol::NoOrientation { .. } => Protocol::NoOrientation { f_like: f },
            Protocol::AntiEntropy { .. } => Protocol::AntiEntropy { fanout: f },
            p => *p,
        }
    }

    /// Node parameters for protocols that run on the `whatsup-core` stack;
    /// `None` for the global engines (cascade, pub/sub, centralized).
    pub fn node_params(&self) -> Option<Params> {
        match *self {
            Protocol::WhatsUp { f_like } => Some(Params::whatsup(f_like)),
            Protocol::WhatsUpCos { f_like } => Some(Params::whatsup_cos(f_like)),
            Protocol::CfWup { k } => Some(Params::cf(k, Metric::Wup)),
            Protocol::CfCos { k } => Some(Params::cf(k, Metric::Cosine)),
            Protocol::Gossip { fanout } => Some(Params::gossip(fanout)),
            Protocol::NoAmplification { fanout } => {
                let mut p = Params::whatsup(fanout);
                // Amplification off: the like path uses the same fanout as
                // the dislike path (here: both `fanout`, dislike oriented).
                p.beep.dislike = whatsup_core::beep::DislikeRule::Forward {
                    fanout,
                    ttl: 4,
                    oriented: true,
                };
                Some(p)
            }
            Protocol::NoOrientation { f_like } => {
                let mut p = Params::whatsup(f_like);
                p.beep.dislike = whatsup_core::beep::DislikeRule::Forward {
                    fanout: 1,
                    ttl: 4,
                    oriented: false,
                };
                Some(p)
            }
            // Anti-entropy runs its own engine, not the whatsup-core node
            // stack (it reconciles versioned state, it does not push news).
            Protocol::Cascade
            | Protocol::CPubSub
            | Protocol::CWhatsUp { .. }
            | Protocol::AntiEntropy { .. } => None,
        }
    }
}

/// Simulation run configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total gossip cycles. The paper's profile window of 13 cycles is 1/5
    /// of the experiment, giving 65 cycles.
    pub cycles: u32,
    /// Publications start here (gives gossip a short view-mixing ramp).
    pub publish_from: u32,
    /// Items published at cycles `< measure_from` warm the profiles/topology
    /// but are excluded from the reported metrics.
    pub measure_from: u32,
    /// Per-message loss probability (gossip and news alike, §V-E).
    pub loss: f64,
    /// RNG seed; every run is a pure function of (dataset, config).
    pub seed: u64,
    /// Random contacts seeded into each node's views at bootstrap.
    pub bootstrap_degree: usize,
    /// Override the per-node profile window (cycles); `None` keeps the
    /// protocol default.
    pub profile_window: Option<u32>,
    /// Override the BEEP dislike TTL (Fig. 5 sweeps it; `None` keeps 4).
    pub ttl_override: Option<u8>,
    /// Override the WUP view size (the `WUPvs = 2·fLIKE` ablation).
    pub wup_view_override: Option<usize>,
    /// Randomized-response obfuscation level (§VII privacy extension);
    /// `None`/0 shares true profiles.
    pub obfuscation: Option<f64>,
    /// Churn: expected fraction of nodes that crash and rejoin fresh per
    /// cycle (profile, views and seen-set lost; cold start on return).
    pub churn_per_cycle: f64,
    /// Whether the engine folds the shards' per-cycle counters into the
    /// report's time series (`SimReport::series`). On by default; turning
    /// it off skips the end-of-cycle counter round-trip (the bench knob
    /// for measuring the accounting overhead) and leaves the series — and
    /// therefore every measurement window — empty.
    pub collect_series: bool,
    /// Engine shards the node table is partitioned into (contiguous id
    /// ranges, each run by its own worker). `0` = one shard per available
    /// core; the count is clamped to the population size. Pure execution
    /// knob: reports are bit-identical for every value. Ignored under
    /// [`Transport::Socket`], where the shard count is the worker count.
    pub shards: usize,
    /// Anti-entropy only: datagram byte budget deltas are greedily packed
    /// to (chitchat-style UDP sizing). Partial deltas are first-class; a
    /// truncated exchange resumes from the advertised digest next round.
    pub datagram_budget: usize,
    /// Anti-entropy only: φ above which a peer counts as failed. φ grows
    /// with heartbeat staleness relative to the observed inter-arrival
    /// history, so the threshold is in "suspicion" units, not cycles.
    /// Cycle-granular heartbeats keep φ far smaller than wall-clock
    /// deployments' 8–16: at a steady 1-cycle cadence, φ ≈ 0.43 per stale
    /// cycle, so the 1.0 default fires after ~3 missed cycles.
    pub phi_threshold: f64,
    /// Anti-entropy only: cycles a crashed node stays dark before it
    /// rejoins with a bumped incarnation. The BEEP engine resets crashed
    /// nodes instantly; anti-entropy needs real downtime for heartbeats to
    /// go stale, or φ would have nothing to detect.
    pub down_cycles: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cycles: 65,
            publish_from: 3,
            measure_from: 20,
            loss: 0.0,
            seed: 0x000a_ce0f_5eed,
            bootstrap_degree: 8,
            profile_window: None,
            ttl_override: None,
            wup_view_override: None,
            obfuscation: None,
            churn_per_cycle: 0.0,
            collect_series: true,
            shards: 1,
            datagram_budget: 1400,
            phi_threshold: 1.0,
            down_cycles: 5,
        }
    }
}

impl SimConfig {
    /// Node parameters for `protocol` with this config's overrides applied.
    pub fn build_params(&self, protocol: &Protocol) -> Option<whatsup_core::Params> {
        let mut params = protocol.node_params()?;
        if let Some(w) = self.profile_window {
            params.profile_window = w;
        }
        if let Some(ttl) = self.ttl_override {
            if let whatsup_core::beep::DislikeRule::Forward {
                fanout, oriented, ..
            } = params.beep.dislike
            {
                params.beep.dislike = whatsup_core::beep::DislikeRule::Forward {
                    fanout,
                    ttl,
                    oriented,
                };
            }
        }
        if let Some(vs) = self.wup_view_override {
            params.wup_view_size = vs.max(params.beep.f_like);
        }
        if let Some(eps) = self.obfuscation {
            params.obfuscation_epsilon = eps;
        }
        Some(params)
    }
}

impl SimConfig {
    /// Uniform per-cycle publication schedule: dataset item index → cycle.
    /// Items are spread evenly over `[publish_from, cycles)`.
    pub fn schedule(&self, n_items: usize) -> Vec<u32> {
        let span = (self.cycles.saturating_sub(self.publish_from)).max(1) as usize;
        (0..n_items)
            .map(|i| self.publish_from + (i * span / n_items.max(1)) as u32)
            .collect()
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.publish_from >= self.cycles {
            return Err("publish_from must precede the end of the run".into());
        }
        if self.measure_from >= self.cycles {
            return Err(format!(
                "measure_from ({}) must precede the end of the run ({} cycles) — \
                 nothing would be measured",
                self.measure_from, self.cycles
            ));
        }
        if self.publish_from > self.measure_from {
            return Err(format!(
                "publish_from ({}) must not exceed measure_from ({}) — \
                 the measured window would start before any publication",
                self.publish_from, self.measure_from
            ));
        }
        if !(0.0..=1.0).contains(&self.loss) {
            return Err("loss must be a probability".into());
        }
        if self.bootstrap_degree == 0 {
            return Err("bootstrap degree must be ≥ 1".into());
        }
        if !(0.0..=1.0).contains(&self.churn_per_cycle) {
            return Err("churn must be a probability".into());
        }
        // Smallest useful datagram: the frame header plus one maximal delta
        // entry, or no entry could ever be packed.
        if self.datagram_budget < 64 {
            return Err("datagram_budget must be ≥ 64 bytes".into());
        }
        if !self.phi_threshold.is_finite() || self.phi_threshold <= 0.0 {
            return Err("phi_threshold must be a positive finite number".into());
        }
        if self.down_cycles == 0 {
            return Err("down_cycles must be ≥ 1 (crashes need real downtime)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_monotone_and_in_range() {
        let cfg = SimConfig {
            cycles: 65,
            publish_from: 3,
            ..Default::default()
        };
        let s = cfg.schedule(1000);
        assert_eq!(s.len(), 1000);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(s[0], 3);
        assert!(*s.last().unwrap() < 65);
    }

    #[test]
    fn schedule_handles_fewer_items_than_cycles() {
        let cfg = SimConfig::default();
        let s = cfg.schedule(3);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|&c| c >= cfg.publish_from && c < cfg.cycles));
    }

    #[test]
    fn protocol_labels_and_fanouts() {
        assert_eq!(Protocol::WhatsUp { f_like: 10 }.label(), "WhatsUp");
        assert_eq!(Protocol::WhatsUp { f_like: 10 }.fanout(), Some(10));
        assert_eq!(Protocol::Cascade.fanout(), None);
        assert_eq!(Protocol::CfCos { k: 29 }.with_fanout(5).fanout(), Some(5));
        assert_eq!(Protocol::Cascade.with_fanout(5), Protocol::Cascade);
        let ae = Protocol::AntiEntropy { fanout: 2 };
        assert_eq!(ae.label(), "Anti-Entropy");
        assert!(!ae.is_global());
        assert_eq!(ae.with_fanout(3).fanout(), Some(3));
    }

    #[test]
    fn node_params_only_for_node_protocols() {
        assert!(Protocol::WhatsUp { f_like: 10 }.node_params().is_some());
        assert!(Protocol::Gossip { fanout: 4 }.node_params().is_some());
        assert!(Protocol::Cascade.node_params().is_none());
        assert!(Protocol::CPubSub.node_params().is_none());
        assert!(Protocol::CWhatsUp { f_like: 10 }.node_params().is_none());
        assert!(Protocol::AntiEntropy { fanout: 2 }.node_params().is_none());
    }

    #[test]
    fn ablation_params_differ_from_whatsup() {
        let wu = Protocol::WhatsUp { f_like: 5 }.node_params().unwrap();
        let na = Protocol::NoAmplification { fanout: 5 }
            .node_params()
            .unwrap();
        let no = Protocol::NoOrientation { f_like: 5 }.node_params().unwrap();
        assert_ne!(wu.beep, na.beep);
        assert_ne!(wu.beep, no.beep);
    }

    #[test]
    fn overrides_apply() {
        let cfg = SimConfig {
            obfuscation: Some(0.4),
            ttl_override: Some(7),
            wup_view_override: Some(25),
            ..Default::default()
        };
        let p = cfg.build_params(&Protocol::WhatsUp { f_like: 10 }).unwrap();
        assert_eq!(p.obfuscation_epsilon, 0.4);
        assert_eq!(p.ttl(), Some(7));
        assert_eq!(p.wup_view_size, 25);
    }

    #[test]
    fn config_validation() {
        assert!(SimConfig::default().validate().is_ok());
        let bad = SimConfig {
            publish_from: 99,
            cycles: 50,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = SimConfig {
            loss: 1.5,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = SimConfig {
            datagram_budget: 10,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = SimConfig {
            phi_threshold: 0.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = SimConfig {
            down_cycles: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validation_rejects_empty_measurement_windows() {
        // measure_from at/after the end: every metric would be empty.
        let bad = SimConfig {
            cycles: 50,
            measure_from: 50,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = SimConfig {
            cycles: 50,
            measure_from: 80,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        // Publications starting after the measured window opens.
        let bad = SimConfig {
            cycles: 50,
            publish_from: 30,
            measure_from: 20,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        // Boundary case: publishing exactly at the measurement threshold is
        // fine (everything published is measured).
        let ok = SimConfig {
            cycles: 50,
            publish_from: 20,
            measure_from: 20,
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn worker_lists_parse_and_reject_junk() {
        assert_eq!(
            Transport::parse_workers("10.0.0.1:7000, 10.0.0.2:7000 ,localhost:9"),
            Ok(vec![
                "10.0.0.1:7000".to_string(),
                "10.0.0.2:7000".to_string(),
                "localhost:9".to_string(),
            ])
        );
        assert!(Transport::parse_workers("").is_err());
        assert!(Transport::parse_workers(" , ,").is_err());
        assert!(Transport::parse_workers("127.0.0.1:1,no-port").is_err());
    }
}
