//! Post-run analyses: overlay topology (Fig. 4 and §V-A text), recall vs
//! popularity (Fig. 10) and F1 vs sociability (Fig. 11).

use crate::engine::Simulation;
use crate::record::SimReport;
use serde::{Deserialize, Serialize};

/// `(x, mean y, samples)` rows of a binned scatter.
pub type BinnedSeries = Vec<(f64, f64, u64)>;
/// `(x, y)` rows of an aggregated curve.
pub type MeanSeries = Vec<(f64, f64)>;
use whatsup_datasets::Dataset;
use whatsup_graph::clustering::average_clustering;
use whatsup_graph::components::weakly_connected_components;
use whatsup_graph::scc::tarjan_scc;
use whatsup_metrics::hist::BinnedMean;

/// Topology numbers the paper quotes for the WUP overlay (§V-A, Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlayStats {
    /// Fraction of nodes in the largest strongly connected component.
    pub lscc_fraction: f64,
    /// Number of weakly connected components.
    pub components: usize,
    /// Average clustering coefficient (undirected view).
    pub clustering_coefficient: f64,
}

/// Computes the overlay stats of a running simulation's WUP graph.
pub fn overlay_stats(sim: &Simulation) -> OverlayStats {
    let g = sim.wup_overlay();
    let scc = tarjan_scc(&g);
    OverlayStats {
        lscc_fraction: scc.largest_fraction(),
        components: weakly_connected_components(&g),
        clustering_coefficient: average_clustering(&g),
    }
}

/// Fig. 10: mean recall per item-popularity bin plus the popularity
/// distribution. Returns `(rows, distribution)` where `rows` is
/// `(popularity bin center, mean recall, items)`.
pub fn recall_vs_popularity(
    report: &SimReport,
    dataset: &Dataset,
    bins: usize,
) -> (BinnedSeries, MeanSeries) {
    let mut bm = BinnedMean::new(0.0, 1.0, bins);
    for rec in report.items.iter().filter(|r| r.measured) {
        let popularity = dataset.likes.popularity(rec.index as usize);
        bm.record(popularity, rec.outcome().recall());
    }
    (bm.rows(), bm.distribution())
}

/// Fig. 11: mean per-user F1 per sociability bin plus the sociability
/// distribution. Sociability of a user = mean ground-truth similarity to
/// her `k` most similar users (§V-H; the paper uses k = 15).
pub fn f1_vs_sociability(
    report: &SimReport,
    dataset: &Dataset,
    k: usize,
    bins: usize,
) -> (BinnedSeries, MeanSeries) {
    let mut bm = BinnedMean::new(0.0, 1.0, bins);
    for (u, ir) in report.per_node.iter().enumerate().take(dataset.n_users()) {
        let sociability = dataset.likes.sociability(u, k);
        bm.record(sociability, ir.scores().f1);
    }
    (bm.rows(), bm.distribution())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Protocol, SimConfig};
    use whatsup_datasets::{survey, SurveyConfig};

    fn setup() -> (Dataset, SimReport, OverlayStats) {
        let d = survey::generate(&SurveyConfig::paper().scaled(0.12), 5);
        let cfg = SimConfig {
            cycles: 18,
            publish_from: 2,
            measure_from: 6,
            ..Default::default()
        };
        let mut sim = crate::Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
            .config(cfg)
            .build();
        while sim.current_cycle() < 18 {
            sim.step();
        }
        // Overlay stats read the live simulation; the report consumes it
        // (records move out, nothing is cloned).
        let stats = overlay_stats(&sim);
        let report = sim.into_report();
        (d, report, stats)
    }

    #[test]
    fn overlay_stats_are_consistent() {
        let (_, _, s) = setup();
        assert!(s.lscc_fraction > 0.0 && s.lscc_fraction <= 1.0);
        assert!(s.components >= 1);
        assert!((0.0..=1.0).contains(&s.clustering_coefficient));
    }

    #[test]
    fn popularity_rows_cover_items() {
        let (d, report, _) = setup();
        let (rows, dist) = recall_vs_popularity(&report, &d, 10);
        assert!(!rows.is_empty());
        let total: u64 = rows.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total as usize, report.measured_items());
        let mass: f64 = dist.iter().map(|&(_, f)| f).sum();
        assert!((mass - 1.0).abs() < 1e-9);
        for &(_, recall, _) in &rows {
            assert!((0.0..=1.0).contains(&recall));
        }
    }

    #[test]
    fn sociability_rows_cover_users() {
        let (d, report, _) = setup();
        let (rows, _) = f1_vs_sociability(&report, &d, 15, 10);
        let total: u64 = rows.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total as usize, d.n_users());
    }
}
