//! The opinions oracle: ground-truth likes with dynamic re-mapping.
//!
//! Experiments on interest dynamics (§V-C, Fig. 7) need two operations the
//! raw like matrix cannot express:
//!
//! * a **joining node** that enters mid-run with the same interests as an
//!   existing reference node;
//! * an **interest switch** between two users at a given cycle.
//!
//! Both are row *aliases*: `alias[node]` names the matrix row holding the
//! node's current interests. The matrix itself never changes.

// lint:allow(det-map) import for the probe-only id map annotated below
use std::collections::HashMap;
use std::sync::Arc;
use whatsup_core::hash::BuildIdHasher;
use whatsup_core::{ItemId, NodeId, Opinions};
use whatsup_datasets::{LikeMatrix, LikeStore};

/// The item content-hash → dataset-index map, keyed with the deterministic
/// integer hasher: it is probed on every news reception, and its iteration
/// order never escapes (serialization sorts the pairs first).
// lint:allow(det-map) BuildIdHasher keys, probe-only; serialization sorts the pairs first
pub type ItemIndexMap = HashMap<ItemId, u32, BuildIdHasher>;

/// Ground-truth oracle mapping protocol-level ids to dataset rows/columns.
///
/// Everything immutable is shared (`Arc`): the like store — dense
/// bit-plane or compressed sparse rows, whichever [`LikeStore`] measured
/// smaller — and the id map, so the sharded engine hands every shard in
/// the process the *same* copy. The alias vector is logically per-clone
/// but copy-on-write: lockstep runs without joins or interest swaps never
/// materialize a second copy.
#[derive(Debug, Clone)]
pub struct Oracle {
    store: Arc<LikeStore>,
    /// Item content-hash → dataset item index.
    id_to_index: Arc<ItemIndexMap>,
    /// Node → like-store row (identity for the initial population).
    alias: Arc<Vec<u32>>,
}

impl Oracle {
    /// Builds from a dense matrix, choosing the cheaper representation
    /// internally.
    pub fn new(matrix: LikeMatrix, id_to_index: ItemIndexMap) -> Self {
        Self::from_store(LikeStore::from_matrix(&matrix), id_to_index)
    }

    /// Builds with the representation forced (`true` = CSR, `false` =
    /// dense bit-plane) instead of chosen by byte cost. Test hook for the
    /// dense ≡ sparse equivalence properties — both must answer (and
    /// report) identically.
    #[doc(hidden)]
    pub fn new_forced(matrix: LikeMatrix, id_to_index: ItemIndexMap, sparse: bool) -> Self {
        let store = if sparse {
            LikeStore::Sparse(whatsup_datasets::CsrLikes::from_matrix(&matrix))
        } else {
            LikeStore::Dense(matrix)
        };
        Self::from_store(store, id_to_index)
    }

    /// Builds from an already-chosen like store.
    pub fn from_store(store: LikeStore, id_to_index: ItemIndexMap) -> Self {
        let alias = (0..store.n_users() as u32).collect();
        Self {
            store: Arc::new(store),
            id_to_index: Arc::new(id_to_index),
            alias: Arc::new(alias),
        }
    }

    /// Rebuilds an oracle from serialized parts, preserving a non-identity
    /// alias (shard-worker init path).
    ///
    /// # Panics
    /// Panics if an alias entry names a row outside the store.
    pub fn restore(store: LikeStore, id_to_index: ItemIndexMap, alias: Vec<u32>) -> Self {
        assert!(
            alias.iter().all(|&r| (r as usize) < store.n_users()),
            "alias row out of range"
        );
        Self {
            store: Arc::new(store),
            id_to_index: Arc::new(id_to_index),
            alias: Arc::new(alias),
        }
    }

    /// The current node → matrix-row aliasing.
    pub fn alias(&self) -> &[u32] {
        &self.alias
    }

    /// The item content-hash → dataset index map.
    pub fn id_map(&self) -> &ItemIndexMap {
        &self.id_to_index
    }

    /// Number of protocol-level nodes (grows as joiners are added).
    pub fn n_nodes(&self) -> usize {
        self.alias.len()
    }

    /// The shared like store.
    pub fn store(&self) -> &LikeStore {
        &self.store
    }

    /// Dataset index of an item id, if known.
    pub fn index_of(&self, item: ItemId) -> Option<u32> {
        self.id_to_index.get(&item).copied()
    }

    /// Ground-truth opinion by dataset item *index*.
    pub fn likes_index(&self, node: NodeId, index: u32) -> bool {
        let row = self.alias[node as usize] as usize;
        self.store.likes(row, index as usize)
    }

    /// Nodes interested in item `index` under the current aliasing.
    pub fn interested(&self, index: u32) -> Vec<NodeId> {
        (0..self.alias.len() as u32)
            .filter(|&n| self.likes_index(n, index))
            .collect()
    }

    /// Number of nodes interested in item `index`, excluding `excluding`
    /// (the publishing source) — [`Oracle::interested`] without the
    /// allocation, for counters on the publish path.
    pub fn interested_count(&self, index: u32, excluding: NodeId) -> usize {
        (0..self.alias.len() as u32)
            .filter(|&n| n != excluding && self.likes_index(n, index))
            .count()
    }

    /// Registers a joining node whose interests mirror `reference`'s current
    /// row. Returns the new node id.
    pub fn add_clone_of(&mut self, reference: NodeId) -> NodeId {
        let row = self.alias[reference as usize];
        let alias = Arc::make_mut(&mut self.alias);
        alias.push(row);
        (alias.len() - 1) as NodeId
    }

    /// Swaps the interests of two nodes (§V-C's "changing node" experiment).
    pub fn swap_interests(&mut self, a: NodeId, b: NodeId) {
        Arc::make_mut(&mut self.alias).swap(a as usize, b as usize);
    }
}

impl Opinions for Oracle {
    fn likes(&self, node: NodeId, item: ItemId) -> bool {
        match self.id_to_index.get(&item) {
            Some(&idx) => self.likes_index(node, idx),
            // Unknown item (not part of the workload): nobody likes it.
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> Oracle {
        let mut m = LikeMatrix::new(3, 2);
        m.set(0, 0, true);
        m.set(1, 1, true);
        m.set(2, 0, true);
        m.set(2, 1, true);
        let map = ItemIndexMap::from_iter([(100u64, 0u32), (200u64, 1u32)]);
        Oracle::new(m, map)
    }

    #[test]
    fn likes_resolve_through_map() {
        let o = oracle();
        assert!(o.likes(0, 100));
        assert!(!o.likes(0, 200));
        assert!(o.likes(2, 200));
        assert!(!o.likes(0, 999), "unknown items are disliked");
    }

    #[test]
    fn interested_lists_nodes() {
        let o = oracle();
        assert_eq!(o.interested(0), vec![0, 2]);
        assert_eq!(o.interested(1), vec![1, 2]);
        assert_eq!(o.interested_count(0, 0), 1, "source excluded");
        assert_eq!(o.interested_count(0, 1), 2, "non-liker exclusion is free");
    }

    #[test]
    fn clone_mirrors_reference() {
        let mut o = oracle();
        let j = o.add_clone_of(1);
        assert_eq!(j, 3);
        assert_eq!(o.n_nodes(), 4);
        assert!(o.likes(j, 200));
        assert!(!o.likes(j, 100));
        assert_eq!(o.interested(1), vec![1, 2, 3]);
    }

    #[test]
    fn swap_exchanges_interests() {
        let mut o = oracle();
        o.swap_interests(0, 1);
        assert!(o.likes(0, 200));
        assert!(!o.likes(0, 100));
        assert!(o.likes(1, 100));
    }
}
