//! Worker supervision: checkpoint/replay recovery around the external
//! transports, so a crashed or hung `sim-shard-worker` becomes a pause
//! instead of a dead run.
//!
//! [`SupervisedTransport`] wraps a [`ShardLink`] (the per-shard
//! conversation primitives of [`super::ProcessTransport`] and
//! [`super::SocketTransport`]) and implements [`ShardTransport`] itself,
//! so the driver above is oblivious: a round-trip either succeeds — the
//! failure handled internally — or fails only after the restart budget is
//! exhausted or a fatal (non-retryable) error surfaces.
//!
//! # Recovery protocol
//!
//! Per shard, the supervisor keeps the last checkpoint frame (taken every
//! [`Supervision::checkpoint_every`] cycles through the
//! [`ShardTransport::cycle_boundary`] hook) and the log of every command
//! frame issued since. When a shard's conversation fails with a
//! *retryable* error ([`super::TransportErrorKind::is_retryable`]):
//!
//! 1. back off (bounded exponential, deterministic jitter);
//! 2. [`ShardLink::restart`]: respawn the child or redial the address and
//!    re-run the versioned handshake with the shard's original init;
//! 3. send [`Command::Restore`] with the last checkpoint (skipped before
//!    the first checkpoint — the freshly handshaken worker already sits at
//!    the `from_init` state the log starts from);
//! 4. replay the logged commands, discarding the replies — shards are
//!    deterministic functions of `(init, command sequence)`, so the
//!    replayed replies are byte-identical to the ones the driver already
//!    consumed;
//! 5. re-issue the in-flight command and hand its reply to the driver.
//!
//! A crash *during* recovery simply burns another restart from the same
//! budget and tries again; exhaustion surfaces the original error.

use super::{decode_reply, encode_command, Command, Reply, ShardTransport, TransportError};
use bytes::Bytes;
use std::time::Duration;
use whatsup_core::fnv1a64;

/// Supervision knobs. The two first-class ones (restart budget, checkpoint
/// cadence) are what [`crate::Runner::supervised`] and the CLI expose;
/// the rest have defaults tuned for real deployments and are overridable
/// through [`crate::Runner::supervision`] (tests shrink them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Supervision {
    /// Restarts allowed *per shard* before the run gives up and surfaces
    /// the original error.
    pub max_restarts: u32,
    /// Cycles between checkpoints (≥ 1). Checkpoints bound both the
    /// command log replayed on recovery and its memory footprint.
    pub checkpoint_every: u32,
    /// Hang detection: per-read/write deadline on socket conversations (a
    /// hard-deadline simplification of a phi-accrual liveness detector). A
    /// worker that neither answers nor closes within the deadline is
    /// treated as dead. Generous by default — a lockstep round on a big
    /// shard legitimately takes seconds. Pipes cannot arm deadlines; a
    /// crashed child surfaces as EOF instead.
    pub deadline: Duration,
    /// Base of the exponential backoff between restart attempts.
    pub backoff: Duration,
    /// Window over which a socket redial (and the initial dial) is
    /// retried before the attempt counts as failed.
    pub dial_window: Duration,
}

impl Default for Supervision {
    fn default() -> Self {
        Self {
            max_restarts: 3,
            checkpoint_every: 5,
            deadline: Duration::from_secs(30),
            backoff: Duration::from_millis(100),
            dial_window: Duration::from_secs(3),
        }
    }
}

impl Supervision {
    /// The convenience constructor behind `Runner::supervised`.
    pub fn new(max_restarts: u32, checkpoint_every: u32) -> Self {
        Self {
            max_restarts,
            checkpoint_every,
            ..Self::default()
        }
    }
}

/// Per-shard conversation primitives an external transport exposes so the
/// supervisor can drive each worker independently. A monolithic
/// `roundtrip` cannot recover one shard without corrupting the others
/// (their pipes would hold unread replies); these primitives let the
/// supervisor re-issue exactly the failed shard's traffic.
pub trait ShardLink {
    fn n_shards(&self) -> usize;

    /// Human-readable worker endpoint, named in errors.
    fn endpoint(&self, shard: usize) -> String;

    /// Writes one command frame to one worker.
    fn send(&mut self, shard: usize, frame: &[u8]) -> Result<(), TransportError>;

    /// Reads one reply frame from one worker (EOF is an error: a reply
    /// was owed).
    fn recv(&mut self, shard: usize) -> Result<Vec<u8>, TransportError>;

    /// Tears down and re-establishes the conversation with one worker:
    /// respawn the child / redial the address, then re-run the versioned
    /// bootstrap handshake carrying the shard's original init. On success
    /// the replacement worker sits at the `from_init` state.
    fn restart(&mut self, shard: usize) -> Result<(), TransportError>;

    /// Arms (or disarms) the per-read/write hang deadline on every current
    /// and future conversation. Links that cannot time out (pipes) ignore
    /// it.
    fn set_deadline(&mut self, deadline: Option<Duration>);

    /// Graceful teardown: `Stop` every worker and reap/EOF-wait.
    fn shutdown(self) -> Result<(), TransportError>;
}

/// The supervision wrapper. See the module docs for the protocol.
pub struct SupervisedTransport<L: ShardLink> {
    link: L,
    sup: Supervision,
    /// Last checkpoint frame per shard; `None` until the first cadence
    /// point (recovery then replays from the `from_init` state).
    checkpoints: Vec<Option<Bytes>>,
    /// Encoded command frames issued since the last checkpoint, per shard
    /// (appended only after the command's reply arrived).
    logs: Vec<Vec<Vec<u8>>>,
    /// Restarts consumed per shard.
    restarts: Vec<u32>,
}

impl<L: ShardLink> SupervisedTransport<L> {
    /// Wraps `link`, arming its hang deadline from `sup`.
    ///
    /// # Panics
    /// Panics if `sup.checkpoint_every` is 0.
    pub fn new(mut link: L, sup: Supervision) -> Self {
        assert!(sup.checkpoint_every >= 1, "checkpoint cadence must be ≥ 1");
        link.set_deadline(Some(sup.deadline));
        let n = link.n_shards();
        Self {
            link,
            sup,
            checkpoints: vec![None; n],
            logs: vec![Vec::new(); n],
            restarts: vec![0; n],
        }
    }

    /// Total restarts consumed across all shards (observability/tests).
    pub fn restarts_used(&self) -> u32 {
        self.restarts.iter().sum()
    }

    /// Graceful teardown of the underlying link.
    pub fn shutdown(self) -> Result<(), TransportError> {
        self.link.shutdown()
    }

    /// Bounded exponential backoff with deterministic jitter: attempt `k`
    /// sleeps in `[d/2, d)` for `d = backoff·2^k` capped at 2 s. The
    /// jitter is a pure function of `(shard, restart count, attempt)` —
    /// no entropy source, so supervised runs stay reproducible end to end.
    fn backoff_sleep(&self, shard: usize, attempt: u32) {
        if self.sup.backoff.is_zero() {
            return;
        }
        let exp = self.sup.backoff.saturating_mul(1 << attempt.min(4));
        let capped = exp.min(Duration::from_secs(2));
        let mut key = [0u8; 24];
        key[..8].copy_from_slice(&(shard as u64).to_le_bytes());
        key[8..16].copy_from_slice(&u64::from(self.restarts[shard]).to_le_bytes());
        key[16..].copy_from_slice(&u64::from(attempt).to_le_bytes());
        let frac = (fnv1a64(&key) % 1024) as f64 / 2048.0;
        std::thread::sleep(capped.mul_f64(0.5 + frac));
    }

    /// Recovers `shard` after `original` failed its conversation, then
    /// re-issues the in-flight `frame` and returns its reply. Retries the
    /// whole recovery (a replacement can die mid-replay) until the
    /// per-shard restart budget runs out, at which point the *original*
    /// error surfaces; non-retryable errors surface immediately.
    fn recover_and_reissue(
        &mut self,
        shard: usize,
        frame: &[u8],
        original: TransportError,
    ) -> Result<Vec<u8>, TransportError> {
        if !original.kind.is_retryable() {
            return Err(original);
        }
        let mut attempt = 0u32;
        loop {
            if self.restarts[shard] >= self.sup.max_restarts {
                return Err(original);
            }
            self.restarts[shard] += 1;
            self.backoff_sleep(shard, attempt);
            attempt += 1;
            match self.try_recover(shard, frame) {
                Ok(reply) => return Ok(reply),
                Err(e) if e.kind.is_retryable() => continue,
                // A fatal error from the *replacement* (e.g. a
                // version-skewed worker took over the address) must not be
                // restart-looped.
                Err(e) => return Err(e),
            }
        }
    }

    /// One recovery attempt: restart, restore the last checkpoint, replay
    /// the command log (replies discarded — determinism makes them
    /// byte-identical to the ones already consumed), re-issue the
    /// in-flight frame and return its reply.
    fn try_recover(&mut self, shard: usize, inflight: &[u8]) -> Result<Vec<u8>, TransportError> {
        self.link.restart(shard)?;
        if let Some(cp) = &self.checkpoints[shard] {
            let restore = encode_command(&Command::Restore { frame: cp.clone() });
            self.link.send(shard, &restore)?;
            let reply = self.link.recv(shard)?;
            debug_assert!(matches!(decode_reply(&reply), Reply::Ack));
        }
        for logged in &self.logs[shard] {
            self.link.send(shard, logged)?;
            self.link.recv(shard)?;
        }
        self.link.send(shard, inflight)?;
        self.link.recv(shard)
    }
}

impl<L: ShardLink> ShardTransport for SupervisedTransport<L> {
    fn n_shards(&self) -> usize {
        self.link.n_shards()
    }

    fn roundtrip(&mut self, batch: Vec<(usize, Command)>) -> Result<Vec<Reply>, TransportError> {
        let frames: Vec<(usize, Vec<u8>)> = batch
            .iter()
            .map(|(s, cmd)| (*s, encode_command(cmd)))
            .collect();
        // Send phase, pipelined like the plain transports: every command
        // goes out before any reply is read, so the shards compute in
        // parallel. A send failure recovers the shard completely — its
        // reply is parked for the read phase.
        let mut parked: Vec<Option<Vec<u8>>> = vec![None; frames.len()];
        for (i, (s, frame)) in frames.iter().enumerate() {
            if let Err(e) = self.link.send(*s, frame) {
                parked[i] = Some(self.recover_and_reissue(*s, frame, e)?);
            }
        }
        let mut replies = Vec::with_capacity(frames.len());
        for (i, (s, frame)) in frames.iter().enumerate() {
            let reply_frame = match parked[i].take() {
                Some(reply) => reply,
                None => match self.link.recv(*s) {
                    Ok(reply) => reply,
                    Err(e) => self.recover_and_reissue(*s, frame, e)?,
                },
            };
            self.logs[*s].push(frame.clone());
            replies.push(decode_reply(&reply_frame));
        }
        Ok(replies)
    }

    /// The checkpoint cadence: every `checkpoint_every` completed cycles,
    /// snapshot every shard and clear its replay log. The checkpoint
    /// command itself is recovered like any other — and is never logged.
    fn cycle_boundary(&mut self, completed_cycle: u32) -> Result<(), TransportError> {
        if !(completed_cycle + 1).is_multiple_of(self.sup.checkpoint_every) {
            return Ok(());
        }
        let frame = encode_command(&Command::TakeCheckpoint);
        let n = self.link.n_shards();
        let mut parked: Vec<Option<Vec<u8>>> = vec![None; n];
        for (s, slot) in parked.iter_mut().enumerate() {
            if let Err(e) = self.link.send(s, &frame) {
                *slot = Some(self.recover_and_reissue(s, &frame, e)?);
            }
        }
        for (s, slot) in parked.iter_mut().enumerate() {
            let reply_frame = match slot.take() {
                Some(reply) => reply,
                None => match self.link.recv(s) {
                    Ok(reply) => reply,
                    Err(e) => self.recover_and_reissue(s, &frame, e)?,
                },
            };
            let Reply::Checkpoint(cp) = decode_reply(&reply_frame) else {
                panic!("expected a checkpoint reply");
            };
            self.checkpoints[s] = Some(cp);
            self.logs[s].clear();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::exchange::{decode_command, encode_reply, Outbound, TransportErrorKind};
    use std::collections::VecDeque;

    /// A scripted in-memory worker pool: each "worker" is a counter that
    /// `BeginNews` increments — a stand-in for deterministic shard state.
    /// `Collect` exposes the counter (as the outbound `sent` total),
    /// `TakeCheckpoint`/`Restore` snapshot and reinstate it, and `restart`
    /// resets it to 0 (a fresh `from_init` worker). Failures are injected
    /// per shard as a queue of [`Fault`]s consumed by `recv`/`restart`.
    #[derive(Clone, Copy)]
    enum Fault {
        /// The next `recv` fails retryably (the worker "died").
        RecvIo,
        /// The next `restart` fails retryably (redial refused).
        RestartIo,
        /// The next `restart` "reaches" a version-skewed worker: fatal.
        RestartVersionSkew,
    }

    struct MockLink {
        counters: Vec<u64>,
        inbox: Vec<VecDeque<Vec<u8>>>,
        faults: Vec<VecDeque<Fault>>,
        restart_count: Vec<u32>,
    }

    impl MockLink {
        fn new(shards: usize) -> Self {
            Self {
                counters: vec![0; shards],
                inbox: vec![VecDeque::new(); shards],
                faults: vec![VecDeque::new(); shards],
                restart_count: vec![0; shards],
            }
        }

        fn fail_next(&mut self, shard: usize, fault: Fault) {
            self.faults[shard].push_back(fault);
        }

        fn err(&self, shard: usize) -> TransportError {
            TransportError::io(
                self.endpoint(shard),
                std::io::Error::new(std::io::ErrorKind::ConnectionReset, "mock fault"),
            )
        }
    }

    impl ShardLink for MockLink {
        fn n_shards(&self) -> usize {
            self.counters.len()
        }

        fn endpoint(&self, shard: usize) -> String {
            format!("mock worker {shard}")
        }

        fn send(&mut self, shard: usize, frame: &[u8]) -> Result<(), TransportError> {
            let reply = match decode_command(frame) {
                Command::BeginNews => {
                    self.counters[shard] += 1;
                    Reply::Ack
                }
                Command::Collect { .. } => Reply::Outbound(Outbound {
                    sent: self.counters[shard],
                    local: 0,
                    bundles: Vec::new(),
                }),
                Command::TakeCheckpoint => {
                    Reply::Checkpoint(Bytes::copy_from_slice(&self.counters[shard].to_le_bytes()))
                }
                Command::Restore { frame } => {
                    self.counters[shard] =
                        u64::from_le_bytes(frame.as_ref().try_into().expect("8-byte checkpoint"));
                    Reply::Ack
                }
                other => panic!("mock worker got {other:?}"),
            };
            self.inbox[shard].push_back(encode_reply(&reply));
            Ok(())
        }

        fn recv(&mut self, shard: usize) -> Result<Vec<u8>, TransportError> {
            if let Some(Fault::RecvIo) = self.faults[shard].front() {
                self.faults[shard].pop_front();
                self.inbox[shard].clear();
                return Err(self.err(shard));
            }
            Ok(self.inbox[shard].pop_front().expect("a reply was owed"))
        }

        fn restart(&mut self, shard: usize) -> Result<(), TransportError> {
            match self.faults[shard].front() {
                Some(Fault::RestartIo) => {
                    self.faults[shard].pop_front();
                    return Err(self.err(shard));
                }
                Some(Fault::RestartVersionSkew) => {
                    self.faults[shard].pop_front();
                    return Err(TransportError {
                        endpoint: self.endpoint(shard),
                        kind: TransportErrorKind::HandshakeVersion { got: 1, want: 2 },
                    });
                }
                _ => {}
            }
            self.restart_count[shard] += 1;
            self.counters[shard] = 0;
            self.inbox[shard].clear();
            Ok(())
        }

        fn set_deadline(&mut self, _deadline: Option<Duration>) {}

        fn shutdown(self) -> Result<(), TransportError> {
            Ok(())
        }
    }

    /// Zero-backoff supervision so the fault loops run instantly.
    fn sup(max_restarts: u32, checkpoint_every: u32) -> Supervision {
        Supervision {
            max_restarts,
            checkpoint_every,
            backoff: Duration::ZERO,
            ..Supervision::default()
        }
    }

    fn bump(t: &mut SupervisedTransport<MockLink>, shards: usize) {
        let replies = t
            .roundtrip((0..shards).map(|s| (s, Command::BeginNews)).collect())
            .expect("bump");
        assert!(replies.iter().all(|r| matches!(r, Reply::Ack)));
    }

    fn counter(t: &mut SupervisedTransport<MockLink>, shard: usize) -> u64 {
        let replies = t
            .roundtrip(vec![(shard, Command::Collect { cycle: 0 })])
            .expect("counter probe");
        let Reply::Outbound(o) = &replies[0] else {
            panic!("expected outbound");
        };
        o.sent
    }

    #[test]
    fn crash_recovers_from_checkpoint_plus_replay() {
        let mut t = SupervisedTransport::new(MockLink::new(2), sup(3, 1));
        bump(&mut t, 2);
        t.cycle_boundary(0).expect("checkpoint"); // snapshots counter = 1
        bump(&mut t, 2); // logged since the checkpoint
        t.link.fail_next(1, Fault::RecvIo);
        bump(&mut t, 2); // shard 1 dies here and recovers mid-roundtrip
        assert_eq!(counter(&mut t, 0), 3, "undisturbed shard");
        assert_eq!(
            counter(&mut t, 1),
            3,
            "restore(1) + replay(1) + reissue(1) must equal the fault-free state"
        );
        assert_eq!(t.restarts_used(), 1);
        assert_eq!(t.link.restart_count, vec![0, 1]);
    }

    #[test]
    fn crash_before_any_checkpoint_replays_from_scratch() {
        let mut t = SupervisedTransport::new(MockLink::new(1), sup(3, 10));
        bump(&mut t, 1);
        bump(&mut t, 1);
        t.link.fail_next(0, Fault::RecvIo);
        bump(&mut t, 1);
        assert_eq!(counter(&mut t, 0), 3, "full replay from the init state");
    }

    #[test]
    fn crash_during_replay_burns_another_restart_and_recovers() {
        let mut t = SupervisedTransport::new(MockLink::new(1), sup(3, 1));
        bump(&mut t, 1);
        t.cycle_boundary(0).expect("checkpoint");
        bump(&mut t, 1);
        // The worker dies; its first replacement dies again during the
        // replay (first recv after the restart); the second replacement
        // completes recovery.
        t.link.fail_next(0, Fault::RecvIo);
        t.link.fail_next(0, Fault::RecvIo);
        bump(&mut t, 1);
        assert_eq!(counter(&mut t, 0), 3);
        assert_eq!(t.restarts_used(), 2);
        assert_eq!(t.link.restart_count, vec![2]);
    }

    #[test]
    fn failed_restarts_burn_budget_until_exhaustion_surfaces_the_original_error() {
        let mut t = SupervisedTransport::new(MockLink::new(1), sup(2, 1));
        t.link.fail_next(0, Fault::RecvIo);
        t.link.fail_next(0, Fault::RestartIo);
        t.link.fail_next(0, Fault::RestartIo);
        let err = t
            .roundtrip(vec![(0, Command::BeginNews)])
            .expect_err("budget exhausted");
        // The surfaced error is the ORIGINAL conversation failure, not the
        // last redial failure — that is what names the actual fault.
        assert_eq!(err.to_string(), t.link.err(0).to_string());
        assert_eq!(t.restarts_used(), 2);
        assert_eq!(t.link.restart_count, vec![0], "no restart ever succeeded");
    }

    #[test]
    fn fatal_error_during_recovery_surfaces_immediately() {
        let mut t = SupervisedTransport::new(MockLink::new(1), sup(5, 1));
        t.link.fail_next(0, Fault::RecvIo);
        t.link.fail_next(0, Fault::RestartVersionSkew);
        let err = t
            .roundtrip(vec![(0, Command::BeginNews)])
            .expect_err("version skew is fatal");
        assert!(
            matches!(err.kind, TransportErrorKind::HandshakeVersion { .. }),
            "the skew must surface, not be retried or masked: {err}"
        );
        assert_eq!(t.restarts_used(), 1, "only the one attempt that hit it");
    }

    #[test]
    fn non_retryable_original_error_is_not_recovered() {
        let mut t = SupervisedTransport::new(MockLink::new(1), sup(5, 1));
        let fatal = TransportError {
            endpoint: "mock worker 0".into(),
            kind: TransportErrorKind::HandshakeMagic,
        };
        let err = t
            .recover_and_reissue(0, &encode_command(&Command::BeginNews), fatal)
            .expect_err("fatal errors pass through");
        assert!(matches!(err.kind, TransportErrorKind::HandshakeMagic));
        assert_eq!(t.restarts_used(), 0);
    }

    #[test]
    fn checkpoint_cadence_truncates_the_replay_log() {
        let mut t = SupervisedTransport::new(MockLink::new(1), sup(3, 2));
        for cycle in 0..4 {
            bump(&mut t, 1);
            t.cycle_boundary(cycle).expect("boundary");
        }
        // Cadence 2: boundaries after cycles 1 and 3 checkpointed.
        assert_eq!(t.checkpoints[0].as_deref(), Some(&4u64.to_le_bytes()[..]));
        assert!(t.logs[0].is_empty(), "log cleared at the checkpoint");
        bump(&mut t, 1);
        assert_eq!(t.logs[0].len(), 1, "post-checkpoint commands logged");
        t.link.fail_next(0, Fault::RecvIo);
        assert_eq!(counter(&mut t, 0), 5, "restore(4) + replay(1)");
    }
}
