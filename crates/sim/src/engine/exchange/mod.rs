//! The shard command protocol and the pluggable exchange transports.
//!
//! The driver orchestrates every phase as a lockstep *round-trip*: one
//! [`Command`] per participating shard, one [`Reply`] back from each. The
//! [`ShardTransport`] trait abstracts how the serialized frames move:
//!
//! * [`ChannelTransport`] — shards as worker threads, frames over
//!   crossbeam channels (in-process);
//! * [`ProcessTransport`] — shards as `sim-shard-worker` child processes,
//!   length-prefixed frames over stdio pipes (multi-process);
//! * [`SocketTransport`] — shards as `sim-shard-worker --listen` processes
//!   anywhere on the network, the same frames over TCP (distributed);
//! * the single-shard driver calls the shard inline without serializing.
//!
//! The [`stream`] submodule holds everything the byte-stream transports
//! (pipes and sockets) share: length-prefixed framing over generic
//! `Read`/`Write`, the versioned bootstrap handshake, and the worker serve
//! loop — `sim-shard-worker` is a thin shell around it.
//!
//! Every frame is hand-encoded little-endian via the `bytes` buffers;
//! mailbox traffic and view snapshots embed the `whatsup-net` wire codec's
//! encodings, so the two stacks share one message format. Command/reply
//! payloads are engine-internal: both peers have already passed the
//! versioned handshake, so a malformed *payload* is an engine bug and
//! panics. Everything at the conversation boundary — connecting, the
//! handshake, a peer vanishing, a frame truncated on the wire — surfaces
//! as a typed [`TransportError`] naming the endpoint instead.

pub mod process;
pub mod socket;
pub mod stream;
pub mod supervisor;

pub use process::ProcessTransport;
pub use socket::SocketTransport;
pub use stream::{read_frame, write_frame};
pub use supervisor::{SupervisedTransport, Supervision};

use crate::engine::partition::Partition;
use crate::engine::shard::ShardInit;
use crate::oracle::Oracle;
use crate::scenario::{ChurnModel, LossModel};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io;
use whatsup_core::beep::{DislikeRule, TargetPool};
use whatsup_core::{ColdStart, ItemId, Metric, NewsItem, NodeId, Params};
use whatsup_datasets::{CsrLikes, LikeMatrix, LikeStore};
use whatsup_net::codec;

/// A transport-level failure: the conversation with a shard worker could
/// not start or could not continue. Carries the worker's endpoint (a
/// `host:port` address, a child pid, a thread index) so a distributed
/// failure names the machine that caused it.
#[derive(Debug)]
pub struct TransportError {
    /// Human-readable worker endpoint, e.g. `10.0.0.2:7401` or
    /// `sim-shard-worker pid 4242 (shard 1)`.
    pub endpoint: String,
    pub kind: TransportErrorKind,
}

/// What went wrong at the transport boundary.
#[derive(Debug)]
pub enum TransportErrorKind {
    /// Connect, read or write failed — includes a peer closing the
    /// connection mid-run and frames truncated on the wire.
    Io(io::Error),
    /// The peer's greeting was not a shard-worker hello frame.
    HandshakeMagic,
    /// The peer speaks a different protocol version.
    HandshakeVersion { got: u16, want: u16 },
    /// A worker process exited with a failure status.
    WorkerExit(String),
}

impl TransportErrorKind {
    /// Whether a supervisor may retry the conversation with a fresh
    /// worker. I/O failures (crashes, timeouts, torn frames) and worker
    /// exits are environmental — a respawned or redialed worker can
    /// succeed. Handshake failures are *configuration* errors: the peer is
    /// not a shard worker, or speaks a different protocol version, and a
    /// restarted peer would fail identically — restart-looping it would
    /// mask a version-skewed deployment instead of reporting it.
    pub fn is_retryable(&self) -> bool {
        match self {
            TransportErrorKind::Io(_) | TransportErrorKind::WorkerExit(_) => true,
            TransportErrorKind::HandshakeMagic | TransportErrorKind::HandshakeVersion { .. } => {
                false
            }
        }
    }
}

impl TransportError {
    pub fn io(endpoint: impl Into<String>, err: io::Error) -> Self {
        Self {
            endpoint: endpoint.into(),
            kind: TransportErrorKind::Io(err),
        }
    }

    /// An `Io` error for a peer that closed the connection at a frame
    /// boundary where more frames were required.
    pub fn closed(endpoint: impl Into<String>, what: &str) -> Self {
        Self::io(
            endpoint,
            io::Error::new(io::ErrorKind::UnexpectedEof, what.to_string()),
        )
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TransportErrorKind::Io(e) => write!(f, "shard worker {}: {e}", self.endpoint),
            TransportErrorKind::HandshakeMagic => write!(
                f,
                "shard worker {}: handshake failed — peer is not a sim-shard-worker",
                self.endpoint
            ),
            TransportErrorKind::HandshakeVersion { got, want } => write!(
                f,
                "shard worker {}: handshake failed — peer speaks exchange \
                 protocol v{got}, this driver speaks v{want}",
                self.endpoint
            ),
            TransportErrorKind::WorkerExit(status) => {
                write!(f, "shard worker {}: exited with {status}", self.endpoint)
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            TransportErrorKind::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for io::Error {
    fn from(err: TransportError) -> Self {
        io::Error::other(err.to_string())
    }
}

/// A driver → shard phase command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run `on_cycle` for every owned node; route the emissions.
    Collect { cycle: u32 },
    /// Merge inbound gossip bundles (one per source shard, empty allowed)
    /// and drain the mailboxes; route the replies.
    DeliverGossip { cycle: u32, bundles: Vec<Bytes> },
    /// Draw the per-node crash coins and rejoin contacts.
    ChurnDecide { cycle: u32 },
    /// Snapshot the views of the given owned nodes (pre-churn state).
    TakeSnapshots { ids: Vec<NodeId> },
    /// Reset each `(node, snapshot)` to a fresh cold-started instance.
    ApplyChurn { resets: Vec<(NodeId, Bytes)> },
    /// A node joins at the end of the id space, interests cloned from
    /// `reference`. Broadcast to every shard (each updates its partition and
    /// oracle copies); only the owning (last) shard receives the rejoin
    /// snapshot and builds the node.
    Admit {
        reference: NodeId,
        snapshot: Option<Bytes>,
    },
    /// Swap the ground-truth interests of two nodes in this shard's oracle
    /// copy (broadcast; the driver keeps every copy in lockstep).
    SwapInterests { a: NodeId, b: NodeId },
    /// Reset the news-phase RNGs (start of the publication phase).
    BeginNews,
    /// Publish `item` from its source node (owned by this shard).
    Publish { cycle: u32, item: NewsItem },
    /// Merge inbound news bundles and drain; report reception outcomes.
    DeliverNews {
        cycle: u32,
        item: ItemId,
        bundles: Vec<Bytes>,
    },
    /// Serialize the shard's full state (issued at a cycle boundary, where
    /// the mailboxes are provably empty). Answered with
    /// [`Reply::Checkpoint`].
    TakeCheckpoint,
    /// Replace the shard's state with a previously taken checkpoint frame
    /// (recovery path; the worker was freshly handshaken with its original
    /// init before this arrives). Answered with [`Reply::Ack`].
    Restore { frame: Bytes },
    /// Exit the serve loop.
    Stop,
}

/// Routed emissions of one shard for one round: the total emission count
/// (for traffic accounting, self-shard mail included) and one bundle per
/// destination shard (empty for none; the self slot is always empty —
/// local mail stays in the shard's pending queue).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Outbound {
    pub sent: u64,
    /// Messages parked in the emitting shard's own pending queue. The
    /// driver uses this to skip delivery round-trips to shards with no
    /// inbound mail at all (sparse BFS tails).
    pub local: u64,
    pub bundles: Vec<Bytes>,
}

impl Outbound {
    /// An empty round for a shard that was skipped (no mail anywhere).
    pub fn empty(shards: usize) -> Self {
        Outbound {
            sent: 0,
            local: 0,
            bundles: vec![Bytes::new(); shards],
        }
    }
}

/// Wire form of one receiver's first reception of an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FirstReception {
    pub hop: u16,
    pub sender_liked: bool,
    pub receiver_likes: bool,
    pub dislikes: u8,
}

/// Wire form of one receiver's outcome in a news delivery round, folded by
/// the driver in receiver order.
#[derive(Debug, Clone, PartialEq)]
pub struct NewsOutcome {
    pub receiver: NodeId,
    pub first: Option<FirstReception>,
    /// `(hop, forwarder_liked)` when the receiver forwarded (Fig. 6).
    pub forward: Option<(u16, bool)>,
}

/// A shard → driver phase reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    Outbound(Outbound),
    ChurnDecisions(Vec<(NodeId, NodeId)>),
    /// Snapshots in request order (encoded [`ColdStart`]s).
    Snapshots(Vec<Bytes>),
    Ack,
    Published {
        /// Hop stamp of the source's forwards, when it forwarded.
        first_forward_hop: Option<u16>,
        out: Outbound,
    },
    NewsDelivered {
        out: Outbound,
        outcomes: Vec<NewsOutcome>,
    },
    /// The shard's serialized state (see
    /// [`crate::engine::shard::ShardState::encode_checkpoint`] for the
    /// frame layout).
    Checkpoint(Bytes),
}

/// Moves command/reply frames between the driver and the shard workers.
///
/// A batch sends at most one command per shard; replies come back in batch
/// order. Implementations must preserve per-shard FIFO ordering. A failed
/// round-trip leaves the transport in an unspecified state: the driver
/// must abandon the run (dropping the transport tears the workers down) —
/// unless the transport is a [`SupervisedTransport`], which recovers the
/// failed shard internally and only fails after exhausting its restart
/// budget.
pub trait ShardTransport {
    fn n_shards(&self) -> usize;
    fn roundtrip(&mut self, batch: Vec<(usize, Command)>) -> Result<Vec<Reply>, TransportError>;

    /// Hook the driver calls once per completed cycle, after the cycle's
    /// last round-trip. Plain transports ignore it; the supervised wrapper
    /// uses it to checkpoint shards on its configured cadence (a cycle
    /// boundary is the one point where every mailbox is provably empty).
    fn cycle_boundary(&mut self, completed_cycle: u32) -> Result<(), TransportError> {
        let _ = completed_cycle;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Frame encoding helpers
// ---------------------------------------------------------------------------

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn get_bytes(buf: &mut &[u8]) -> Bytes {
    let len = buf.get_u32_le() as usize;
    let out = Bytes::copy_from_slice(&buf[..len]);
    buf.advance(len);
    out
}

fn put_str(buf: &mut BytesMut, s: &str) {
    assert!(s.len() <= u16::MAX as usize, "string field too long");
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> String {
    let len = buf.get_u16_le() as usize;
    let out = String::from_utf8(buf[..len].to_vec()).expect("utf-8 string field");
    buf.advance(len);
    out
}

fn put_bundle_list(buf: &mut BytesMut, bundles: &[Bytes]) {
    buf.put_u32_le(bundles.len() as u32);
    for b in bundles {
        put_bytes(buf, b);
    }
}

fn get_bundle_list(buf: &mut &[u8]) -> Vec<Bytes> {
    let n = buf.get_u32_le() as usize;
    (0..n).map(|_| get_bytes(buf)).collect()
}

pub(crate) fn put_news_item(buf: &mut BytesMut, item: &NewsItem) {
    put_str(buf, &item.title);
    put_str(buf, &item.description);
    put_str(buf, &item.link);
    buf.put_u32_le(item.source);
    buf.put_u32_le(item.created_at);
}

pub(crate) fn get_news_item(buf: &mut &[u8]) -> NewsItem {
    let title = get_str(buf);
    let description = get_str(buf);
    let link = get_str(buf);
    let source = buf.get_u32_le();
    let created_at = buf.get_u32_le();
    NewsItem {
        title,
        description,
        link,
        source,
        created_at,
    }
}

/// Serializes a view snapshot with the wire codec's descriptor encoding.
pub fn encode_cold_start(cs: &ColdStart) -> Bytes {
    let mut buf = BytesMut::with_capacity(256);
    codec::put_descriptors(&mut buf, &cs.rps_view);
    codec::put_descriptors(&mut buf, &cs.wup_view);
    buf.freeze()
}

/// Inverse of [`encode_cold_start`].
pub fn decode_cold_start(mut frame: &[u8]) -> ColdStart {
    let rps_view = codec::get_descriptors(&mut frame).expect("malformed snapshot");
    let wup_view = codec::get_descriptors(&mut frame).expect("malformed snapshot");
    ColdStart { rps_view, wup_view }
}

// ---------------------------------------------------------------------------
// Command / reply frames
// ---------------------------------------------------------------------------

const CMD_COLLECT: u8 = 1;
const CMD_DELIVER_GOSSIP: u8 = 2;
const CMD_CHURN_DECIDE: u8 = 3;
const CMD_TAKE_SNAPSHOTS: u8 = 4;
const CMD_APPLY_CHURN: u8 = 5;
const CMD_BEGIN_NEWS: u8 = 6;
const CMD_PUBLISH: u8 = 7;
const CMD_DELIVER_NEWS: u8 = 8;
const CMD_STOP: u8 = 9;
const CMD_ADMIT: u8 = 10;
const CMD_SWAP_INTERESTS: u8 = 11;
// Opcode 12 was `TakeCycleCounters` in protocol v2; the driver now folds
// cycle counters from the phase replies it already receives, so the
// end-of-cycle counter round-trip no longer exists.
const CMD_TAKE_CHECKPOINT: u8 = 13;
const CMD_RESTORE: u8 = 14;

pub fn encode_command(cmd: &Command) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64);
    match cmd {
        Command::Collect { cycle } => {
            buf.put_u8(CMD_COLLECT);
            buf.put_u32_le(*cycle);
        }
        Command::DeliverGossip { cycle, bundles } => {
            buf.put_u8(CMD_DELIVER_GOSSIP);
            buf.put_u32_le(*cycle);
            put_bundle_list(&mut buf, bundles);
        }
        Command::ChurnDecide { cycle } => {
            buf.put_u8(CMD_CHURN_DECIDE);
            buf.put_u32_le(*cycle);
        }
        Command::TakeSnapshots { ids } => {
            buf.put_u8(CMD_TAKE_SNAPSHOTS);
            buf.put_u32_le(ids.len() as u32);
            for id in ids {
                buf.put_u32_le(*id);
            }
        }
        Command::ApplyChurn { resets } => {
            buf.put_u8(CMD_APPLY_CHURN);
            buf.put_u32_le(resets.len() as u32);
            for (node, snapshot) in resets {
                buf.put_u32_le(*node);
                put_bytes(&mut buf, snapshot);
            }
        }
        Command::BeginNews => buf.put_u8(CMD_BEGIN_NEWS),
        Command::Publish { cycle, item } => {
            buf.put_u8(CMD_PUBLISH);
            buf.put_u32_le(*cycle);
            put_news_item(&mut buf, item);
        }
        Command::DeliverNews {
            cycle,
            item,
            bundles,
        } => {
            buf.put_u8(CMD_DELIVER_NEWS);
            buf.put_u32_le(*cycle);
            buf.put_u64_le(*item);
            put_bundle_list(&mut buf, bundles);
        }
        Command::Admit {
            reference,
            snapshot,
        } => {
            buf.put_u8(CMD_ADMIT);
            buf.put_u32_le(*reference);
            buf.put_u8(u8::from(snapshot.is_some()));
            if let Some(frame) = snapshot {
                put_bytes(&mut buf, frame);
            }
        }
        Command::SwapInterests { a, b } => {
            buf.put_u8(CMD_SWAP_INTERESTS);
            buf.put_u32_le(*a);
            buf.put_u32_le(*b);
        }
        Command::TakeCheckpoint => buf.put_u8(CMD_TAKE_CHECKPOINT),
        Command::Restore { frame } => {
            buf.put_u8(CMD_RESTORE);
            put_bytes(&mut buf, frame);
        }
        Command::Stop => buf.put_u8(CMD_STOP),
    }
    Vec::from(buf)
}

pub fn decode_command(mut frame: &[u8]) -> Command {
    let buf = &mut frame;
    match buf.get_u8() {
        CMD_COLLECT => Command::Collect {
            cycle: buf.get_u32_le(),
        },
        CMD_DELIVER_GOSSIP => Command::DeliverGossip {
            cycle: buf.get_u32_le(),
            bundles: get_bundle_list(buf),
        },
        CMD_CHURN_DECIDE => Command::ChurnDecide {
            cycle: buf.get_u32_le(),
        },
        CMD_TAKE_SNAPSHOTS => {
            let n = buf.get_u32_le() as usize;
            Command::TakeSnapshots {
                ids: (0..n).map(|_| buf.get_u32_le()).collect(),
            }
        }
        CMD_APPLY_CHURN => {
            let n = buf.get_u32_le() as usize;
            Command::ApplyChurn {
                resets: (0..n)
                    .map(|_| {
                        let node = buf.get_u32_le();
                        let snapshot = get_bytes(buf);
                        (node, snapshot)
                    })
                    .collect(),
            }
        }
        CMD_BEGIN_NEWS => Command::BeginNews,
        CMD_PUBLISH => Command::Publish {
            cycle: buf.get_u32_le(),
            item: get_news_item(buf),
        },
        CMD_DELIVER_NEWS => Command::DeliverNews {
            cycle: buf.get_u32_le(),
            item: buf.get_u64_le(),
            bundles: get_bundle_list(buf),
        },
        CMD_ADMIT => {
            let reference = buf.get_u32_le();
            let has_snapshot = buf.get_u8() != 0;
            Command::Admit {
                reference,
                snapshot: has_snapshot.then(|| get_bytes(buf)),
            }
        }
        CMD_SWAP_INTERESTS => Command::SwapInterests {
            a: buf.get_u32_le(),
            b: buf.get_u32_le(),
        },
        CMD_TAKE_CHECKPOINT => Command::TakeCheckpoint,
        CMD_RESTORE => Command::Restore {
            frame: get_bytes(buf),
        },
        CMD_STOP => Command::Stop,
        other => panic!("unknown command opcode {other}"),
    }
}

const REP_OUTBOUND: u8 = 1;
const REP_CHURN: u8 = 2;
const REP_SNAPSHOTS: u8 = 3;
const REP_ACK: u8 = 4;
const REP_PUBLISHED: u8 = 5;
const REP_NEWS: u8 = 6;
// Opcode 7 was `CycleCounters` in protocol v2 (see the command-side note).
const REP_CHECKPOINT: u8 = 8;

fn put_outbound(buf: &mut BytesMut, out: &Outbound) {
    buf.put_u64_le(out.sent);
    buf.put_u64_le(out.local);
    put_bundle_list(buf, &out.bundles);
}

fn get_outbound(buf: &mut &[u8]) -> Outbound {
    Outbound {
        sent: buf.get_u64_le(),
        local: buf.get_u64_le(),
        bundles: get_bundle_list(buf),
    }
}

pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64);
    match reply {
        Reply::Outbound(out) => {
            buf.put_u8(REP_OUTBOUND);
            put_outbound(&mut buf, out);
        }
        Reply::ChurnDecisions(pairs) => {
            buf.put_u8(REP_CHURN);
            buf.put_u32_le(pairs.len() as u32);
            for (node, contact) in pairs {
                buf.put_u32_le(*node);
                buf.put_u32_le(*contact);
            }
        }
        Reply::Snapshots(snaps) => {
            buf.put_u8(REP_SNAPSHOTS);
            put_bundle_list(&mut buf, snaps);
        }
        Reply::Ack => buf.put_u8(REP_ACK),
        Reply::Published {
            first_forward_hop,
            out,
        } => {
            buf.put_u8(REP_PUBLISHED);
            buf.put_u8(u8::from(first_forward_hop.is_some()));
            buf.put_u16_le(first_forward_hop.unwrap_or(0));
            put_outbound(&mut buf, out);
        }
        Reply::NewsDelivered { out, outcomes } => {
            buf.put_u8(REP_NEWS);
            put_outbound(&mut buf, out);
            buf.put_u32_le(outcomes.len() as u32);
            for o in outcomes {
                buf.put_u32_le(o.receiver);
                let first = o.first.unwrap_or(FirstReception {
                    hop: 0,
                    sender_liked: false,
                    receiver_likes: false,
                    dislikes: 0,
                });
                let (fwd_hop, fwd_liked) = o.forward.unwrap_or((0, false));
                let flags = u8::from(o.first.is_some())
                    | u8::from(first.sender_liked) << 1
                    | u8::from(first.receiver_likes) << 2
                    | u8::from(o.forward.is_some()) << 3
                    | u8::from(fwd_liked) << 4;
                buf.put_u8(flags);
                buf.put_u16_le(first.hop);
                buf.put_u8(first.dislikes);
                buf.put_u16_le(fwd_hop);
            }
        }
        Reply::Checkpoint(frame) => {
            buf.put_u8(REP_CHECKPOINT);
            put_bytes(&mut buf, frame);
        }
    }
    Vec::from(buf)
}

pub fn decode_reply(mut frame: &[u8]) -> Reply {
    let buf = &mut frame;
    match buf.get_u8() {
        REP_OUTBOUND => Reply::Outbound(get_outbound(buf)),
        REP_CHURN => {
            let n = buf.get_u32_le() as usize;
            Reply::ChurnDecisions(
                (0..n)
                    .map(|_| {
                        let node = buf.get_u32_le();
                        let contact = buf.get_u32_le();
                        (node, contact)
                    })
                    .collect(),
            )
        }
        REP_SNAPSHOTS => Reply::Snapshots(get_bundle_list(buf)),
        REP_ACK => Reply::Ack,
        REP_PUBLISHED => {
            let has_hop = buf.get_u8() != 0;
            let hop = buf.get_u16_le();
            Reply::Published {
                first_forward_hop: has_hop.then_some(hop),
                out: get_outbound(buf),
            }
        }
        REP_NEWS => {
            let out = get_outbound(buf);
            let n = buf.get_u32_le() as usize;
            let outcomes = (0..n)
                .map(|_| {
                    let receiver = buf.get_u32_le();
                    let flags = buf.get_u8();
                    let hop = buf.get_u16_le();
                    let dislikes = buf.get_u8();
                    let fwd_hop = buf.get_u16_le();
                    NewsOutcome {
                        receiver,
                        first: (flags & 1 != 0).then_some(FirstReception {
                            hop,
                            sender_liked: flags & 2 != 0,
                            receiver_likes: flags & 4 != 0,
                            dislikes,
                        }),
                        forward: (flags & 8 != 0).then_some((fwd_hop, flags & 16 != 0)),
                    }
                })
                .collect();
            Reply::NewsDelivered { out, outcomes }
        }
        REP_CHECKPOINT => Reply::Checkpoint(get_bytes(buf)),
        other => panic!("unknown reply opcode {other}"),
    }
}

// ---------------------------------------------------------------------------
// Shard init frame (multi-process bootstrap)
// ---------------------------------------------------------------------------

fn put_params(buf: &mut BytesMut, p: &Params) {
    buf.put_u32_le(p.rps.view_size as u32);
    buf.put_u32_le(p.rps.exchange_len as u32);
    buf.put_u32_le(p.rps_period);
    buf.put_u32_le(p.wup_view_size as u32);
    buf.put_u8(match p.metric {
        Metric::Wup => 0,
        Metric::Cosine => 1,
        Metric::Jaccard => 2,
    });
    buf.put_u32_le(p.profile_window);
    buf.put_u32_le(p.beep.f_like as u32);
    buf.put_u8(match p.beep.like_pool {
        TargetPool::Wup => 0,
        TargetPool::Rps => 1,
    });
    buf.put_u8(u8::from(p.beep.like_entire_view));
    match p.beep.dislike {
        DislikeRule::Drop => {
            buf.put_u8(0);
            buf.put_u32_le(0);
            buf.put_u8(0);
            buf.put_u8(0);
        }
        DislikeRule::Forward {
            fanout,
            ttl,
            oriented,
        } => {
            buf.put_u8(1);
            buf.put_u32_le(fanout as u32);
            buf.put_u8(ttl);
            buf.put_u8(u8::from(oriented));
        }
    }
    buf.put_u32_le(p.cold_start_items as u32);
    buf.put_f64_le(p.obfuscation_epsilon);
}

fn get_params(buf: &mut &[u8]) -> Params {
    let mut p = Params::default();
    p.rps.view_size = buf.get_u32_le() as usize;
    p.rps.exchange_len = buf.get_u32_le() as usize;
    p.rps_period = buf.get_u32_le();
    p.wup_view_size = buf.get_u32_le() as usize;
    p.metric = match buf.get_u8() {
        0 => Metric::Wup,
        1 => Metric::Cosine,
        2 => Metric::Jaccard,
        other => panic!("unknown metric tag {other}"),
    };
    p.profile_window = buf.get_u32_le();
    p.beep.f_like = buf.get_u32_le() as usize;
    p.beep.like_pool = match buf.get_u8() {
        0 => TargetPool::Wup,
        1 => TargetPool::Rps,
        other => panic!("unknown target pool tag {other}"),
    };
    p.beep.like_entire_view = buf.get_u8() != 0;
    let dislike_tag = buf.get_u8();
    let fanout = buf.get_u32_le() as usize;
    let ttl = buf.get_u8();
    let oriented = buf.get_u8() != 0;
    p.beep.dislike = match dislike_tag {
        0 => DislikeRule::Drop,
        1 => DislikeRule::Forward {
            fanout,
            ttl,
            oriented,
        },
        other => panic!("unknown dislike tag {other}"),
    };
    p.cold_start_items = buf.get_u32_le() as usize;
    p.obfuscation_epsilon = buf.get_f64_le();
    p
}

fn put_loss_model(buf: &mut BytesMut, loss: &LossModel) {
    match *loss {
        LossModel::Constant { p } => {
            buf.put_u8(0);
            buf.put_f64_le(p);
        }
        LossModel::GilbertElliott {
            p_good,
            p_bad,
            good_to_bad,
            bad_to_good,
        } => {
            buf.put_u8(1);
            buf.put_f64_le(p_good);
            buf.put_f64_le(p_bad);
            buf.put_f64_le(good_to_bad);
            buf.put_f64_le(bad_to_good);
        }
        LossModel::Partition {
            from,
            until,
            frontier,
        } => {
            buf.put_u8(2);
            buf.put_u32_le(from);
            buf.put_u32_le(until);
            buf.put_f64_le(frontier);
        }
    }
}

fn get_loss_model(buf: &mut &[u8]) -> LossModel {
    match buf.get_u8() {
        0 => LossModel::Constant {
            p: buf.get_f64_le(),
        },
        1 => LossModel::GilbertElliott {
            p_good: buf.get_f64_le(),
            p_bad: buf.get_f64_le(),
            good_to_bad: buf.get_f64_le(),
            bad_to_good: buf.get_f64_le(),
        },
        2 => LossModel::Partition {
            from: buf.get_u32_le(),
            until: buf.get_u32_le(),
            frontier: buf.get_f64_le(),
        },
        other => panic!("unknown loss model tag {other}"),
    }
}

fn put_churn_model(buf: &mut BytesMut, churn: &ChurnModel) {
    match *churn {
        ChurnModel::None => buf.put_u8(0),
        ChurnModel::Uniform { per_cycle } => {
            buf.put_u8(1);
            buf.put_f64_le(per_cycle);
        }
        ChurnModel::CrashWave { at, fraction } => {
            buf.put_u8(2);
            buf.put_u32_le(at);
            buf.put_f64_le(fraction);
        }
        ChurnModel::MassJoin { at, count } => {
            buf.put_u8(3);
            buf.put_u32_le(at);
            buf.put_u32_le(count);
        }
    }
}

fn get_churn_model(buf: &mut &[u8]) -> ChurnModel {
    match buf.get_u8() {
        0 => ChurnModel::None,
        1 => ChurnModel::Uniform {
            per_cycle: buf.get_f64_le(),
        },
        2 => ChurnModel::CrashWave {
            at: buf.get_u32_le(),
            fraction: buf.get_f64_le(),
        },
        3 => ChurnModel::MassJoin {
            at: buf.get_u32_le(),
            count: buf.get_u32_le(),
        },
        other => panic!("unknown churn model tag {other}"),
    }
}

/// Like-store wire tags (see [`put_oracle`]).
const ORACLE_STORE_DENSE: u8 = 0;
const ORACLE_STORE_SPARSE: u8 = 1;

pub(crate) fn put_oracle(buf: &mut BytesMut, oracle: &Oracle) {
    // One tag byte selects the like-store representation; the chosen form
    // travels as-is, so a worker reconstructs the exact store the driver
    // measured cheaper (never re-deciding, which keeps every copy equal).
    match oracle.store() {
        LikeStore::Dense(m) => {
            buf.put_u8(ORACLE_STORE_DENSE);
            buf.put_u32_le(m.n_users() as u32);
            buf.put_u32_le(m.n_items() as u32);
            buf.put_u32_le(m.words().len() as u32);
            for &w in m.words() {
                buf.put_u64_le(w);
            }
        }
        LikeStore::Sparse(c) => {
            buf.put_u8(ORACLE_STORE_SPARSE);
            buf.put_u32_le(c.n_users() as u32);
            buf.put_u32_le(c.n_items() as u32);
            buf.put_u32_le(c.items().len() as u32);
            // offsets[0] is always 0: ship the n_users tail offsets.
            for &o in &c.offsets()[1..] {
                buf.put_u32_le(o);
            }
            for &i in c.items() {
                buf.put_u32_le(i);
            }
        }
    }
    // HashMap iteration order is unspecified; sort for a canonical frame.
    let mut pairs: Vec<(ItemId, u32)> = oracle.id_map().iter().map(|(&k, &v)| (k, v)).collect();
    pairs.sort_unstable();
    buf.put_u32_le(pairs.len() as u32);
    for (id, index) in pairs {
        buf.put_u64_le(id);
        buf.put_u32_le(index);
    }
    buf.put_u32_le(oracle.alias().len() as u32);
    for &row in oracle.alias() {
        buf.put_u32_le(row);
    }
}

pub(crate) fn get_oracle(buf: &mut &[u8]) -> Oracle {
    let store = match buf.get_u8() {
        ORACLE_STORE_DENSE => {
            let n_users = buf.get_u32_le() as usize;
            let n_items = buf.get_u32_le() as usize;
            let n_words = buf.get_u32_le() as usize;
            let words = (0..n_words).map(|_| buf.get_u64_le()).collect();
            LikeStore::Dense(LikeMatrix::from_words(n_users, n_items, words))
        }
        ORACLE_STORE_SPARSE => {
            let n_users = buf.get_u32_le() as usize;
            let n_items = buf.get_u32_le() as usize;
            let nnz = buf.get_u32_le() as usize;
            let mut offsets = Vec::with_capacity(n_users + 1);
            offsets.push(0u32);
            offsets.extend((0..n_users).map(|_| buf.get_u32_le()));
            let items = (0..nnz).map(|_| buf.get_u32_le()).collect();
            LikeStore::Sparse(CsrLikes::from_parts(n_items, offsets, items))
        }
        other => panic!("unknown like-store tag {other}"),
    };
    let n_pairs = buf.get_u32_le() as usize;
    let id_to_index: crate::oracle::ItemIndexMap = (0..n_pairs)
        .map(|_| {
            let id = buf.get_u64_le();
            let index = buf.get_u32_le();
            (id, index)
        })
        .collect();
    let n_alias = buf.get_u32_le() as usize;
    let alias = (0..n_alias).map(|_| buf.get_u32_le()).collect();
    Oracle::restore(store, id_to_index, alias)
}

/// Serializes everything a worker process needs to build its
/// [`crate::engine::ShardState`].
pub fn encode_init(init: &ShardInit) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_u32_le(init.index as u32);
    let starts = init.partition.starts();
    buf.put_u32_le(starts.len() as u32);
    for &s in starts {
        buf.put_u32_le(s);
    }
    buf.put_u64_le(init.seed);
    put_loss_model(&mut buf, &init.loss);
    put_churn_model(&mut buf, &init.churn);
    put_params(&mut buf, &init.params);
    put_oracle(&mut buf, &init.oracle);
    buf.put_u32_le(init.bootstrap.len() as u32);
    for contacts in &init.bootstrap {
        buf.put_u32_le(contacts.len() as u32);
        for &c in contacts {
            buf.put_u32_le(c);
        }
    }
    Vec::from(buf)
}

/// Inverse of [`encode_init`].
pub fn decode_init(mut frame: &[u8]) -> ShardInit {
    let buf = &mut frame;
    let index = buf.get_u32_le() as usize;
    let n_starts = buf.get_u32_le() as usize;
    let starts = (0..n_starts).map(|_| buf.get_u32_le()).collect();
    let partition = Partition::from_starts(starts);
    let seed = buf.get_u64_le();
    let loss = get_loss_model(buf);
    let churn = get_churn_model(buf);
    let params = get_params(buf);
    let oracle = get_oracle(buf);
    let n_nodes = buf.get_u32_le() as usize;
    let bootstrap = (0..n_nodes)
        .map(|_| {
            let n = buf.get_u32_le() as usize;
            (0..n).map(|_| buf.get_u32_le()).collect()
        })
        .collect();
    ShardInit {
        index,
        partition,
        seed,
        loss,
        churn,
        params,
        oracle,
        bootstrap,
    }
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

/// In-process transport: one worker thread per shard, [`Command`] and
/// [`Reply`] *values* over channels. The worker threads run
/// [`crate::engine::shard::serve`].
///
/// No command/reply codec runs on this path: the workers share the
/// driver's address space, so the `Bytes` bundles inside commands and
/// replies travel as refcounted clones. Encoding frames here would
/// deep-copy every gossip bundle once per shard per phase — the dominant
/// term in the multi-shard in-process memory footprint. The byte-stream
/// transports ([`ProcessTransport`], [`SocketTransport`]) still exercise
/// the full codec, and bundles themselves are wire-encoded on every
/// transport, so cross-transport byte parity is unaffected.
pub struct ChannelTransport {
    to: Vec<crossbeam::channel::Sender<Command>>,
    from: Vec<crossbeam::channel::Receiver<Reply>>,
}

impl ChannelTransport {
    pub fn new(
        to: Vec<crossbeam::channel::Sender<Command>>,
        from: Vec<crossbeam::channel::Receiver<Reply>>,
    ) -> Self {
        assert_eq!(to.len(), from.len());
        Self { to, from }
    }

    /// Tells every worker to exit its serve loop.
    pub fn stop(&mut self) {
        for tx in &self.to {
            let _ = tx.send(Command::Stop);
        }
    }
}

impl ShardTransport for ChannelTransport {
    fn n_shards(&self) -> usize {
        self.to.len()
    }

    fn roundtrip(&mut self, batch: Vec<(usize, Command)>) -> Result<Vec<Reply>, TransportError> {
        let targets: Vec<usize> = batch.iter().map(|(s, _)| *s).collect();
        for (s, cmd) in batch {
            self.to[s]
                .send(cmd)
                .map_err(|_| TransportError::closed(thread_endpoint(s), "shard thread hung up"))?;
        }
        targets
            .into_iter()
            .map(|s| {
                self.from[s]
                    .recv()
                    .map_err(|_| TransportError::closed(thread_endpoint(s), "shard thread hung up"))
            })
            .collect()
    }
}

fn thread_endpoint(shard: usize) -> String {
    format!("in-process thread (shard {shard})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_frames_roundtrip() {
        let cmds = vec![
            Command::Collect { cycle: 7 },
            Command::DeliverGossip {
                cycle: 7,
                bundles: vec![Bytes::new(), Bytes::copy_from_slice(b"abc")],
            },
            Command::ChurnDecide { cycle: 9 },
            Command::TakeSnapshots { ids: vec![3, 5, 8] },
            Command::ApplyChurn {
                resets: vec![(2, Bytes::copy_from_slice(b"xy"))],
            },
            Command::BeginNews,
            Command::Publish {
                cycle: 3,
                item: NewsItem::new("t", "d", "l", 9, 3),
            },
            Command::DeliverNews {
                cycle: 3,
                item: 0xdead_beef,
                bundles: vec![Bytes::copy_from_slice(b"zz")],
            },
            Command::Admit {
                reference: 4,
                snapshot: Some(Bytes::copy_from_slice(b"view")),
            },
            Command::Admit {
                reference: 9,
                snapshot: None,
            },
            Command::SwapInterests { a: 3, b: 17 },
            Command::TakeCheckpoint,
            Command::Restore {
                frame: Bytes::copy_from_slice(b"checkpointed state"),
            },
            Command::Stop,
        ];
        for cmd in cmds {
            assert_eq!(decode_command(&encode_command(&cmd)), cmd);
        }
    }

    #[test]
    fn reply_frames_roundtrip() {
        let replies = vec![
            Reply::Outbound(Outbound {
                sent: 12,
                local: 3,
                bundles: vec![Bytes::new(), Bytes::copy_from_slice(b"q")],
            }),
            Reply::ChurnDecisions(vec![(1, 9), (4, 2)]),
            Reply::Snapshots(vec![Bytes::copy_from_slice(b"snap")]),
            Reply::Ack,
            Reply::Published {
                first_forward_hop: Some(3),
                out: Outbound::default(),
            },
            Reply::Published {
                first_forward_hop: None,
                out: Outbound::default(),
            },
            Reply::NewsDelivered {
                out: Outbound {
                    sent: 2,
                    local: 1,
                    bundles: vec![],
                },
                outcomes: vec![
                    NewsOutcome {
                        receiver: 5,
                        first: Some(FirstReception {
                            hop: 2,
                            sender_liked: true,
                            receiver_likes: false,
                            dislikes: 3,
                        }),
                        forward: None,
                    },
                    NewsOutcome {
                        receiver: 6,
                        first: None,
                        forward: Some((4, true)),
                    },
                ],
            },
            Reply::Checkpoint(Bytes::copy_from_slice(b"shard state frame")),
        ];
        for reply in replies {
            assert_eq!(decode_reply(&encode_reply(&reply)), reply);
        }
    }

    #[test]
    fn params_roundtrip_all_presets() {
        for p in [
            Params::whatsup(7),
            Params::whatsup_cos(3),
            Params::cf(9, Metric::Wup),
            Params::gossip(4),
        ] {
            let mut buf = BytesMut::new();
            put_params(&mut buf, &p);
            let mut slice: &[u8] = &buf;
            assert_eq!(get_params(&mut slice), p);
        }
    }

    #[test]
    fn environment_models_roundtrip() {
        let losses = [
            LossModel::Constant { p: 0.25 },
            LossModel::GilbertElliott {
                p_good: 0.01,
                p_bad: 0.6,
                good_to_bad: 0.2,
                bad_to_good: 0.4,
            },
            LossModel::Partition {
                from: 3,
                until: 9,
                frontier: 0.5,
            },
        ];
        for loss in losses {
            let mut buf = BytesMut::new();
            put_loss_model(&mut buf, &loss);
            let mut slice: &[u8] = &buf;
            assert_eq!(get_loss_model(&mut slice), loss);
        }
        let churns = [
            ChurnModel::None,
            ChurnModel::Uniform { per_cycle: 0.05 },
            ChurnModel::CrashWave {
                at: 7,
                fraction: 0.3,
            },
            ChurnModel::MassJoin { at: 2, count: 11 },
        ];
        for churn in churns {
            let mut buf = BytesMut::new();
            put_churn_model(&mut buf, &churn);
            let mut slice: &[u8] = &buf;
            assert_eq!(get_churn_model(&mut slice), churn);
        }
    }
}
