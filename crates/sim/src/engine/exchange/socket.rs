//! Distributed transport: shard workers as `sim-shard-worker --listen`
//! processes reachable over TCP, exchanging exactly the frames the pipe
//! transport uses. This is what lets shard workers live on other machines:
//! the bundle payloads already are the `whatsup-net` wire codec.
//!
//! Launch order is *workers first, then driver* — but only loosely: each
//! worker binds, prints its address, and blocks in accept, while the
//! driver retries refused/unreachable dials over [`DIAL_RETRY_WINDOW`]
//! (configurable via [`SocketTransport::connect_with`]), so a worker that
//! comes up a moment after the driver still gets its shard. Dialing and
//! the handshake are guarded by [`CONNECT_TIMEOUT`]/[`HANDSHAKE_TIMEOUT`],
//! so a worker that stays down, is unreachable, or speaks a different
//! protocol version surfaces as a typed [`TransportError`] naming the
//! address — a run never hangs on bootstrap and never panics on a foreign
//! greeting.
//!
//! The transport keeps every shard's original init and the dial window, so
//! the supervision layer ([`super::SupervisedTransport`]) can redial a
//! crashed worker's address through [`ShardLink::restart`] and re-run the
//! handshake with a replacement listener. Hang detection is armed through
//! [`ShardLink::set_deadline`]: a per-read/write deadline on every
//! conversation, so a wedged worker surfaces as a timed-out (retryable)
//! I/O error instead of blocking the driver forever.

use super::stream::{
    drive_handshake_encoded, encode_handshake, CONNECT_TIMEOUT, HANDSHAKE_TIMEOUT,
};
use super::supervisor::ShardLink;
use super::{
    decode_reply, encode_command, read_frame, write_frame, Command, Reply, ShardTransport,
    TransportError,
};
use crate::engine::shard::ShardInit;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Default window over which an initial dial (or a supervised redial) is
/// retried before failing. Covers the workers-come-up-late race without
/// making a genuinely-down worker slow to diagnose.
pub const DIAL_RETRY_WINDOW: Duration = Duration::from_secs(3);

pub struct SocketTransport {
    /// One worker address per shard, as given by the caller (named in
    /// errors).
    endpoints: Vec<String>,
    /// Every shard's handshake frame (magic + version + encoded init),
    /// encoded once at bootstrap and replayed verbatim on redial — the
    /// init never changes, so a recovery never re-serializes it.
    handshakes: Vec<Vec<u8>>,
    readers: Vec<BufReader<TcpStream>>,
    writers: Vec<BufWriter<TcpStream>>,
    /// Per-read/write hang deadline; `None` (unsupervised) blocks freely.
    deadline: Option<Duration>,
    /// Retry window for dials, shared by bootstrap and redials.
    dial_window: Duration,
    /// Set by [`SocketTransport::shutdown`] so [`Drop`] skips the
    /// best-effort teardown after a graceful one.
    stopped: bool,
}

/// Dials `addr` with [`CONNECT_TIMEOUT`], trying every resolved socket
/// address in order (like `TcpStream::connect`, which has no timeout
/// variant) — `localhost` may resolve to `::1` before `127.0.0.1`.
fn dial_once(addr: &str) -> Result<TcpStream, TransportError> {
    let resolved: Vec<SocketAddr> = addr
        .to_socket_addrs()
        .map_err(|e| TransportError::io(addr, e))?
        .collect();
    let mut last_err = std::io::Error::new(
        std::io::ErrorKind::AddrNotAvailable,
        "address resolved to nothing",
    );
    for sock_addr in resolved {
        match TcpStream::connect_timeout(&sock_addr, CONNECT_TIMEOUT) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = e,
        }
    }
    Err(TransportError::io(addr, last_err))
}

/// Dials `addr`, retrying failures over `window` with a short exponential
/// backoff (25 ms doubling to 400 ms). Tolerates workers that bind a
/// moment late — and, under supervision, replacement listeners that take a
/// moment to come up on a crashed worker's address. The last error
/// surfaces once the window closes.
fn dial_retry(addr: &str, window: Duration) -> Result<TcpStream, TransportError> {
    let start = Instant::now();
    let mut pause = Duration::from_millis(25);
    loop {
        match dial_once(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if start.elapsed() >= window {
                    return Err(e);
                }
                std::thread::sleep(pause.min(window.saturating_sub(start.elapsed())));
                pause = (pause * 2).min(Duration::from_millis(400));
            }
        }
    }
}

/// Dials one worker and runs the bootstrap handshake, returning the framed
/// conversation with `deadline` armed (or unbounded reads if `None`).
fn connect_worker(
    addr: &str,
    handshake: &[u8],
    window: Duration,
    deadline: Option<Duration>,
) -> Result<(BufReader<TcpStream>, BufWriter<TcpStream>), TransportError> {
    let stream = dial_retry(addr, window)?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
        .map_err(|e| TransportError::io(addr, e))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| TransportError::io(addr, e))?,
    );
    let mut writer = BufWriter::new(stream);
    drive_handshake_encoded(addr, &mut reader, &mut writer, handshake)?;
    // Handshake done: arm the steady-state deadline. `None` lets long
    // lockstep rounds block freely; supervised runs bound every read and
    // write so a hung worker is detected and treated as dead.
    arm_deadline(addr, writer.get_ref(), deadline)?;
    Ok((reader, writer))
}

/// Applies `deadline` as both the read and write timeout of `stream`.
fn arm_deadline(
    addr: &str,
    stream: &TcpStream,
    deadline: Option<Duration>,
) -> Result<(), TransportError> {
    stream
        .set_read_timeout(deadline)
        .and_then(|()| stream.set_write_timeout(deadline))
        .map_err(|e| TransportError::io(addr, e))
}

impl SocketTransport {
    /// Dials one worker per init (`workers[k]` becomes shard `k`) with the
    /// default [`DIAL_RETRY_WINDOW`] and runs the bootstrap handshake with
    /// each. Connect and handshake are bounded by timeouts; after the
    /// handshake the streams block freely (a lockstep round may
    /// legitimately take long on big shards) until a supervisor arms a
    /// deadline.
    pub fn connect(workers: &[String], inits: &[ShardInit]) -> Result<Self, TransportError> {
        Self::connect_with(workers, inits, DIAL_RETRY_WINDOW)
    }

    /// [`SocketTransport::connect`] with an explicit dial-retry window
    /// (tests shrink it; deployments with slow worker rollout raise it).
    /// The window is kept for supervised redials.
    pub fn connect_with(
        workers: &[String],
        inits: &[ShardInit],
        dial_window: Duration,
    ) -> Result<Self, TransportError> {
        assert_eq!(workers.len(), inits.len(), "one worker address per shard");
        let mut t = Self {
            endpoints: workers.to_vec(),
            handshakes: inits.iter().map(encode_handshake).collect(),
            readers: Vec::with_capacity(workers.len()),
            writers: Vec::with_capacity(workers.len()),
            deadline: None,
            dial_window,
            stopped: false,
        };
        for (shard, addr) in workers.iter().enumerate() {
            let (reader, writer) = connect_worker(addr, &t.handshakes[shard], dial_window, None)?;
            t.readers.push(reader);
            t.writers.push(writer);
        }
        Ok(t)
    }

    /// Stops every worker and closes the connections; errors report the
    /// first failure but still close every stream.
    pub fn shutdown(mut self) -> Result<(), TransportError> {
        self.stopped = true;
        let stop = encode_command(&Command::Stop);
        let mut first_err: Option<TransportError> = None;
        for (s, writer) in self.writers.iter_mut().enumerate() {
            if let Err(e) = write_frame(writer, &stop) {
                first_err.get_or_insert(TransportError::io(&*self.endpoints[s], e));
            }
            let _ = writer.get_ref().shutdown(Shutdown::Write);
        }
        // Wait for each worker to acknowledge the Stop by closing its end:
        // a clean EOF here proves the worker exited its serve loop rather
        // than being left behind mid-conversation. Unlike mid-round reads
        // (unbounded — shard compute takes as long as it takes), this is a
        // bounded-time event, so re-arm the timeout: a wedged or
        // partitioned worker must not hang a completed run.
        for (s, reader) in self.readers.iter_mut().enumerate() {
            let _ = reader.get_ref().set_read_timeout(Some(HANDSHAKE_TIMEOUT));
            match read_frame(reader) {
                Ok(None) => {}
                Ok(Some(_)) => {
                    first_err.get_or_insert(TransportError::closed(
                        &*self.endpoints[s],
                        "worker sent a frame after Stop",
                    ));
                }
                Err(e) => {
                    first_err.get_or_insert(TransportError::io(&*self.endpoints[s], e));
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        if self.stopped {
            return;
        }
        // Early-error path: tell every worker to stop, then close both
        // directions so a worker blocked in read sees EOF immediately.
        let stop = encode_command(&Command::Stop);
        for writer in &mut self.writers {
            let _ = write_frame(writer, &stop);
            let _ = writer.get_ref().shutdown(Shutdown::Both);
        }
    }
}

impl ShardLink for SocketTransport {
    fn n_shards(&self) -> usize {
        self.writers.len()
    }

    fn endpoint(&self, shard: usize) -> String {
        self.endpoints[shard].clone()
    }

    fn send(&mut self, shard: usize, frame: &[u8]) -> Result<(), TransportError> {
        write_frame(&mut self.writers[shard], frame)
            .map_err(|e| TransportError::io(&*self.endpoints[shard], e))
    }

    fn recv(&mut self, shard: usize) -> Result<Vec<u8>, TransportError> {
        read_frame(&mut self.readers[shard])
            .map_err(|e| TransportError::io(&*self.endpoints[shard], e))?
            .ok_or_else(|| {
                TransportError::closed(
                    &*self.endpoints[shard],
                    "worker closed the connection mid-phase",
                )
            })
    }

    fn restart(&mut self, shard: usize) -> Result<(), TransportError> {
        // Close the wedged/dead connection first (a listen worker serves
        // one connection, so its replacement needs the address free), then
        // redial within the dial window. Replacing the reader/writer drops
        // any half-read frame with the old connection.
        let _ = self.writers[shard].get_ref().shutdown(Shutdown::Both);
        let (reader, writer) = connect_worker(
            &self.endpoints[shard],
            &self.handshakes[shard],
            self.dial_window,
            self.deadline,
        )?;
        self.readers[shard] = reader;
        self.writers[shard] = writer;
        Ok(())
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
        for (s, writer) in self.writers.iter().enumerate() {
            let _ = arm_deadline(&self.endpoints[s], writer.get_ref(), deadline);
        }
    }

    fn shutdown(self) -> Result<(), TransportError> {
        SocketTransport::shutdown(self)
    }
}

impl ShardTransport for SocketTransport {
    fn n_shards(&self) -> usize {
        self.writers.len()
    }

    fn roundtrip(&mut self, batch: Vec<(usize, Command)>) -> Result<Vec<Reply>, TransportError> {
        let targets: Vec<usize> = batch.iter().map(|(s, _)| *s).collect();
        for (s, cmd) in &batch {
            ShardLink::send(self, *s, &encode_command(cmd))?;
        }
        targets
            .into_iter()
            .map(|s| Ok(decode_reply(&ShardLink::recv(self, s)?)))
            .collect()
    }
}
