//! Distributed transport: shard workers as `sim-shard-worker --listen`
//! processes reachable over TCP, exchanging exactly the frames the pipe
//! transport uses. This is what lets shard workers live on other machines:
//! the bundle payloads already are the `whatsup-net` wire codec.
//!
//! Launch order is *workers first, then driver*: each worker binds, prints
//! its address, and blocks in accept; the driver dials every address,
//! runs the versioned bootstrap handshake (see [`super::stream`]) and
//! assigns shard `k` to the `k`-th worker address. Dialing and the
//! handshake are guarded by [`CONNECT_TIMEOUT`]/[`HANDSHAKE_TIMEOUT`], so
//! a worker that is down, unreachable, or speaks a different protocol
//! version surfaces as a typed [`TransportError`] naming the address — a
//! run never hangs on bootstrap and never panics on a foreign greeting.

use super::stream::{drive_handshake, CONNECT_TIMEOUT, HANDSHAKE_TIMEOUT};
use super::{
    decode_reply, encode_command, read_frame, write_frame, Command, Reply, ShardTransport,
    TransportError,
};
use crate::engine::shard::ShardInit;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};

pub struct SocketTransport {
    /// One worker address per shard, as given by the caller (named in
    /// errors).
    endpoints: Vec<String>,
    readers: Vec<BufReader<TcpStream>>,
    writers: Vec<BufWriter<TcpStream>>,
    /// Set by [`SocketTransport::shutdown`] so [`Drop`] skips the
    /// best-effort teardown after a graceful one.
    stopped: bool,
}

/// Dials `addr` with [`CONNECT_TIMEOUT`], trying every resolved socket
/// address in order (like `TcpStream::connect`, which has no timeout
/// variant) — `localhost` may resolve to `::1` before `127.0.0.1`.
fn dial(addr: &str) -> Result<TcpStream, TransportError> {
    let resolved: Vec<SocketAddr> = addr
        .to_socket_addrs()
        .map_err(|e| TransportError::io(addr, e))?
        .collect();
    let mut last_err = std::io::Error::new(
        std::io::ErrorKind::AddrNotAvailable,
        "address resolved to nothing",
    );
    for sock_addr in resolved {
        match TcpStream::connect_timeout(&sock_addr, CONNECT_TIMEOUT) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = e,
        }
    }
    Err(TransportError::io(addr, last_err))
}

impl SocketTransport {
    /// Dials one worker per init (`workers[k]` becomes shard `k`) and runs
    /// the bootstrap handshake with each. Connect and handshake are
    /// bounded by timeouts; after the handshake the streams block freely
    /// (a lockstep round may legitimately take long on big shards).
    pub fn connect(workers: &[String], inits: &[ShardInit]) -> Result<Self, TransportError> {
        assert_eq!(workers.len(), inits.len(), "one worker address per shard");
        let mut t = Self {
            endpoints: workers.to_vec(),
            readers: Vec::with_capacity(workers.len()),
            writers: Vec::with_capacity(workers.len()),
            stopped: false,
        };
        for (addr, init) in workers.iter().zip(inits) {
            let stream = dial(addr)?;
            let _ = stream.set_nodelay(true);
            stream
                .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
                .map_err(|e| TransportError::io(addr, e))?;
            let mut reader = BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| TransportError::io(addr, e))?,
            );
            let mut writer = BufWriter::new(stream);
            drive_handshake(addr, &mut reader, &mut writer, init)?;
            // Handshake done: let long lockstep rounds block freely.
            writer
                .get_ref()
                .set_read_timeout(None)
                .map_err(|e| TransportError::io(addr, e))?;
            t.readers.push(reader);
            t.writers.push(writer);
        }
        Ok(t)
    }

    /// Stops every worker and closes the connections; errors report the
    /// first failure but still close every stream.
    pub fn shutdown(mut self) -> Result<(), TransportError> {
        self.stopped = true;
        let stop = encode_command(&Command::Stop);
        let mut first_err: Option<TransportError> = None;
        for (s, writer) in self.writers.iter_mut().enumerate() {
            if let Err(e) = write_frame(writer, &stop) {
                first_err.get_or_insert(TransportError::io(&*self.endpoints[s], e));
            }
            let _ = writer.get_ref().shutdown(Shutdown::Write);
        }
        // Wait for each worker to acknowledge the Stop by closing its end:
        // a clean EOF here proves the worker exited its serve loop rather
        // than being left behind mid-conversation. Unlike mid-round reads
        // (unbounded — shard compute takes as long as it takes), this is a
        // bounded-time event, so re-arm the timeout: a wedged or
        // partitioned worker must not hang a completed run.
        for (s, reader) in self.readers.iter_mut().enumerate() {
            let _ = reader.get_ref().set_read_timeout(Some(HANDSHAKE_TIMEOUT));
            match read_frame(reader) {
                Ok(None) => {}
                Ok(Some(_)) => {
                    first_err.get_or_insert(TransportError::closed(
                        &*self.endpoints[s],
                        "worker sent a frame after Stop",
                    ));
                }
                Err(e) => {
                    first_err.get_or_insert(TransportError::io(&*self.endpoints[s], e));
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        if self.stopped {
            return;
        }
        // Early-error path: tell every worker to stop, then close both
        // directions so a worker blocked in read sees EOF immediately.
        let stop = encode_command(&Command::Stop);
        for writer in &mut self.writers {
            let _ = write_frame(writer, &stop);
            let _ = writer.get_ref().shutdown(Shutdown::Both);
        }
    }
}

impl ShardTransport for SocketTransport {
    fn n_shards(&self) -> usize {
        self.writers.len()
    }

    fn roundtrip(&mut self, batch: Vec<(usize, Command)>) -> Result<Vec<Reply>, TransportError> {
        let targets: Vec<usize> = batch.iter().map(|(s, _)| *s).collect();
        for (s, cmd) in &batch {
            write_frame(&mut self.writers[*s], &encode_command(cmd))
                .map_err(|e| TransportError::io(&*self.endpoints[*s], e))?;
        }
        targets
            .into_iter()
            .map(|s| {
                let frame = read_frame(&mut self.readers[s])
                    .map_err(|e| TransportError::io(&*self.endpoints[s], e))?
                    .ok_or_else(|| {
                        TransportError::closed(
                            &*self.endpoints[s],
                            "worker closed the connection mid-phase",
                        )
                    })?;
                Ok(decode_reply(&frame))
            })
            .collect()
    }
}
