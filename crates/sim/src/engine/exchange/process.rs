//! Multi-process transport: one `sim-shard-worker` child per shard,
//! length-prefixed frames over stdio pipes.
//!
//! Children are never leaked: the graceful [`ProcessTransport::shutdown`]
//! sends `Stop` and waits, and [`Drop`] covers every early-error path
//! (spawn failures after the first child, a failed round-trip, a driver
//! panic) with a best-effort `Stop`, then `kill` + `wait` so an aborted
//! multiprocess run cannot leave zombie workers behind.

use super::stream::{check_hello, encode_handshake, HANDSHAKE_TIMEOUT};
use super::{
    decode_reply, encode_command, read_frame, write_frame, Command, Reply, ShardTransport,
    TransportError, TransportErrorKind,
};
use crate::engine::shard::ShardInit;
use std::io::BufReader;
use std::path::Path;
use std::process::{Child, ChildStdin, ChildStdout, Stdio};
use std::sync::mpsc;

/// The human-readable name of one worker child, used in every error.
fn worker_endpoint(pid: u32, shard: usize) -> String {
    format!("sim-shard-worker pid {pid} (shard {shard})")
}

pub struct ProcessTransport {
    children: Vec<Child>,
    stdins: Vec<ChildStdin>,
    stdouts: Vec<BufReader<ChildStdout>>,
    /// Set by [`ProcessTransport::shutdown`] so [`Drop`] skips the
    /// kill path after a graceful teardown.
    stopped: bool,
}

impl ProcessTransport {
    /// Spawns one worker per init and runs the bootstrap handshake with
    /// each (see [`super::stream`]). On failure, the children spawned so
    /// far are killed and reaped before returning.
    pub fn spawn(worker: &Path, inits: &[ShardInit]) -> Result<Self, TransportError> {
        let mut t = Self {
            children: Vec::with_capacity(inits.len()),
            stdins: Vec::with_capacity(inits.len()),
            stdouts: Vec::with_capacity(inits.len()),
            stopped: false,
        };
        for init in inits {
            let mut child = std::process::Command::new(worker)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| TransportError::io(format!("spawn {}", worker.display()), e))?;
            let endpoint = worker_endpoint(child.id(), init.index);
            let mut stdin = child.stdin.take().expect("piped stdin");
            let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
            // Register before handshaking: if the handshake fails, Drop
            // still reaps this child along with the earlier ones.
            t.children.push(child);
            let stdout = t.read_hello_bounded(&endpoint, stdout)?;
            write_frame(&mut stdin, &encode_handshake(init))
                .map_err(|e| TransportError::io(&*endpoint, e))?;
            t.stdins.push(stdin);
            t.stdouts.push(stdout);
        }
        Ok(t)
    }

    /// Reads and validates the just-spawned child's hello (the child is
    /// the last entry of `self.children`), bounded by
    /// [`HANDSHAKE_TIMEOUT`]. Pipes cannot arm read timeouts, so the read
    /// runs on a watchdog thread: on timeout the child is killed (not a
    /// shard worker — e.g. a binary that never speaks), which unblocks
    /// the reader thread with an EOF and lets it exit. Returns the stdout
    /// reader for the command/reply phase.
    fn read_hello_bounded(
        &mut self,
        endpoint: &str,
        mut stdout: BufReader<ChildStdout>,
    ) -> Result<BufReader<ChildStdout>, TransportError> {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let hello = read_frame(&mut stdout);
            let _ = tx.send((hello, stdout));
        });
        match rx.recv_timeout(HANDSHAKE_TIMEOUT) {
            Ok((hello, stdout)) => {
                check_hello(endpoint, hello)?;
                Ok(stdout)
            }
            Err(_) => {
                let child = self.children.last_mut().expect("child just pushed");
                let _ = child.kill();
                let _ = child.wait();
                Err(TransportError::io(
                    endpoint,
                    std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!(
                            "no hello within {HANDSHAKE_TIMEOUT:?} — \
                             is this a sim-shard-worker binary?"
                        ),
                    ),
                ))
            }
        }
    }

    fn endpoint(&self, shard: usize) -> String {
        worker_endpoint(self.children[shard].id(), shard)
    }

    /// Stops every worker and reaps the processes. Errors report the first
    /// failure but still reap every child.
    pub fn shutdown(mut self) -> Result<(), TransportError> {
        self.stopped = true;
        let stop = encode_command(&Command::Stop);
        let mut first_err: Option<TransportError> = None;
        for (s, stdin) in self.stdins.iter_mut().enumerate() {
            if let Err(e) = write_frame(stdin, &stop) {
                let endpoint = worker_endpoint(self.children[s].id(), s);
                first_err.get_or_insert(TransportError::io(endpoint, e));
            }
        }
        self.stdins.clear();
        for (s, child) in self.children.iter_mut().enumerate() {
            let endpoint = worker_endpoint(child.id(), s);
            match child.wait() {
                Ok(status) if !status.success() => {
                    first_err.get_or_insert(TransportError {
                        endpoint,
                        kind: TransportErrorKind::WorkerExit(status.to_string()),
                    });
                }
                Ok(_) => {}
                Err(e) => {
                    first_err.get_or_insert(TransportError::io(endpoint, e));
                }
            }
        }
        self.children.clear();
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl Drop for ProcessTransport {
    fn drop(&mut self) {
        if self.stopped {
            return;
        }
        // Best-effort Stop so healthy workers exit cleanly, then close the
        // pipes, then make sure: kill + wait reaps even a wedged child.
        let stop = encode_command(&Command::Stop);
        for stdin in &mut self.stdins {
            let _ = write_frame(stdin, &stop);
        }
        self.stdins.clear();
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl ShardTransport for ProcessTransport {
    fn n_shards(&self) -> usize {
        self.children.len()
    }

    fn roundtrip(&mut self, batch: Vec<(usize, Command)>) -> Result<Vec<Reply>, TransportError> {
        let targets: Vec<usize> = batch.iter().map(|(s, _)| *s).collect();
        for (s, cmd) in &batch {
            write_frame(&mut self.stdins[*s], &encode_command(cmd))
                .map_err(|e| TransportError::io(self.endpoint(*s), e))?;
        }
        targets
            .into_iter()
            .map(|s| {
                let frame = read_frame(&mut self.stdouts[s])
                    .map_err(|e| TransportError::io(self.endpoint(s), e))?
                    .ok_or_else(|| {
                        TransportError::closed(self.endpoint(s), "worker exited mid-phase")
                    })?;
                Ok(decode_reply(&frame))
            })
            .collect()
    }
}
