//! Multi-process transport: one `sim-shard-worker` child per shard,
//! length-prefixed frames over stdio pipes.
//!
//! Children are never leaked: the graceful [`ProcessTransport::shutdown`]
//! sends `Stop` and waits, and [`Drop`] covers every early-error path
//! (spawn failures after the first child, a failed round-trip, a driver
//! panic) with a best-effort `Stop`, then `kill` + `wait` so an aborted
//! multiprocess run cannot leave zombie workers behind.
//!
//! The transport keeps the worker binary path and every shard's original
//! init, so the supervision layer ([`super::SupervisedTransport`]) can
//! respawn a crashed child through [`ShardLink::restart`]: kill + reap the
//! old process, spawn a replacement, re-run the bootstrap handshake.
//! Pipes cannot arm read deadlines, so `set_deadline` is a no-op here — a
//! crashed child surfaces promptly as EOF instead.

use super::stream::{check_hello, encode_handshake, HANDSHAKE_TIMEOUT};
use super::supervisor::ShardLink;
use super::{
    decode_reply, encode_command, read_frame, write_frame, Command, Reply, ShardTransport,
    TransportError, TransportErrorKind,
};
use crate::engine::shard::ShardInit;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Stdio};
use std::sync::mpsc;
use std::time::Duration;

/// The human-readable name of one worker child, used in every error.
fn worker_endpoint(pid: u32, shard: usize) -> String {
    format!("sim-shard-worker pid {pid} (shard {shard})")
}

pub struct ProcessTransport {
    /// The worker binary, kept for supervised respawns.
    worker: PathBuf,
    /// Every shard's handshake frame (magic + version + encoded init),
    /// encoded once at bootstrap and replayed verbatim on respawn — the
    /// init never changes, so a recovery never re-serializes it.
    handshakes: Vec<Vec<u8>>,
    children: Vec<Child>,
    stdins: Vec<ChildStdin>,
    stdouts: Vec<BufReader<ChildStdout>>,
    /// Set by [`ProcessTransport::shutdown`] so [`Drop`] skips the
    /// kill path after a graceful teardown.
    stopped: bool,
}

/// Reads and validates a just-spawned child's hello, bounded by
/// [`HANDSHAKE_TIMEOUT`]. Pipes cannot arm read timeouts, so the read runs
/// on a watchdog thread: on timeout the child is killed (not a shard
/// worker — e.g. a binary that never speaks), which unblocks the reader
/// thread with an EOF and lets it exit. Returns the stdout reader for the
/// command/reply phase.
fn read_hello_bounded(
    endpoint: &str,
    child: &mut Child,
    mut stdout: BufReader<ChildStdout>,
) -> Result<BufReader<ChildStdout>, TransportError> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let hello = read_frame(&mut stdout);
        let _ = tx.send((hello, stdout));
    });
    match rx.recv_timeout(HANDSHAKE_TIMEOUT) {
        Ok((hello, stdout)) => {
            check_hello(endpoint, hello)?;
            Ok(stdout)
        }
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(TransportError::io(
                endpoint,
                std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!(
                        "no hello within {HANDSHAKE_TIMEOUT:?} — \
                         is this a sim-shard-worker binary?"
                    ),
                ),
            ))
        }
    }
}

/// Spawns one worker child and runs the bootstrap handshake with it. The
/// child is killed and reaped on any failure, so the caller never inherits
/// a half-handshaken process.
fn spawn_worker(
    worker: &Path,
    shard: usize,
    handshake: &[u8],
) -> Result<(Child, ChildStdin, BufReader<ChildStdout>), TransportError> {
    let mut child = std::process::Command::new(worker)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| TransportError::io(format!("spawn {}", worker.display()), e))?;
    let endpoint = worker_endpoint(child.id(), shard);
    let mut stdin = child.stdin.take().expect("piped stdin");
    let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let stdout = read_hello_bounded(&endpoint, &mut child, stdout)?;
    if let Err(e) = write_frame(&mut stdin, handshake) {
        let _ = child.kill();
        let _ = child.wait();
        return Err(TransportError::io(&*endpoint, e));
    }
    Ok((child, stdin, stdout))
}

impl ProcessTransport {
    /// Spawns one worker per init and runs the bootstrap handshake with
    /// each (see [`super::stream`]). On failure, the children spawned so
    /// far are killed and reaped before returning.
    pub fn spawn(worker: &Path, inits: &[ShardInit]) -> Result<Self, TransportError> {
        let mut t = Self {
            worker: worker.to_path_buf(),
            handshakes: inits.iter().map(encode_handshake).collect(),
            children: Vec::with_capacity(inits.len()),
            stdins: Vec::with_capacity(inits.len()),
            stdouts: Vec::with_capacity(inits.len()),
            stopped: false,
        };
        for (shard, init) in inits.iter().enumerate() {
            debug_assert_eq!(init.index, shard, "inits must be in shard order");
            // Failures propagate after the partial registration below, so
            // Drop reaps the children spawned so far.
            let (child, stdin, stdout) = spawn_worker(worker, shard, &t.handshakes[shard])?;
            t.children.push(child);
            t.stdins.push(stdin);
            t.stdouts.push(stdout);
        }
        Ok(t)
    }

    fn endpoint_of(&self, shard: usize) -> String {
        worker_endpoint(self.children[shard].id(), shard)
    }

    /// Stops every worker and reaps the processes. Errors report the first
    /// failure but still reap every child.
    pub fn shutdown(mut self) -> Result<(), TransportError> {
        self.stopped = true;
        let stop = encode_command(&Command::Stop);
        let mut first_err: Option<TransportError> = None;
        for (s, stdin) in self.stdins.iter_mut().enumerate() {
            if let Err(e) = write_frame(stdin, &stop) {
                let endpoint = worker_endpoint(self.children[s].id(), s);
                first_err.get_or_insert(TransportError::io(endpoint, e));
            }
        }
        self.stdins.clear();
        for (s, child) in self.children.iter_mut().enumerate() {
            let endpoint = worker_endpoint(child.id(), s);
            match child.wait() {
                Ok(status) if !status.success() => {
                    first_err.get_or_insert(TransportError {
                        endpoint,
                        kind: TransportErrorKind::WorkerExit(status.to_string()),
                    });
                }
                Ok(_) => {}
                Err(e) => {
                    first_err.get_or_insert(TransportError::io(endpoint, e));
                }
            }
        }
        self.children.clear();
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl Drop for ProcessTransport {
    fn drop(&mut self) {
        if self.stopped {
            return;
        }
        // Best-effort Stop so healthy workers exit cleanly, then close the
        // pipes, then make sure: kill + wait reaps even a wedged child.
        let stop = encode_command(&Command::Stop);
        for stdin in &mut self.stdins {
            let _ = write_frame(stdin, &stop);
        }
        self.stdins.clear();
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl ShardLink for ProcessTransport {
    fn n_shards(&self) -> usize {
        self.children.len()
    }

    fn endpoint(&self, shard: usize) -> String {
        self.endpoint_of(shard)
    }

    fn send(&mut self, shard: usize, frame: &[u8]) -> Result<(), TransportError> {
        write_frame(&mut self.stdins[shard], frame)
            .map_err(|e| TransportError::io(self.endpoint_of(shard), e))
    }

    fn recv(&mut self, shard: usize) -> Result<Vec<u8>, TransportError> {
        read_frame(&mut self.stdouts[shard])
            .map_err(|e| TransportError::io(self.endpoint_of(shard), e))?
            .ok_or_else(|| {
                TransportError::closed(self.endpoint_of(shard), "worker exited mid-phase")
            })
    }

    fn restart(&mut self, shard: usize) -> Result<(), TransportError> {
        // Reap the old child first (it may already be gone — ignore
        // errors) so a respawn loop cannot accumulate zombies.
        let _ = self.children[shard].kill();
        let _ = self.children[shard].wait();
        let (child, stdin, stdout) = spawn_worker(&self.worker, shard, &self.handshakes[shard])?;
        self.children[shard] = child;
        self.stdins[shard] = stdin;
        self.stdouts[shard] = stdout;
        Ok(())
    }

    /// Pipes cannot arm read/write deadlines; hang detection is
    /// socket-only. A dead child still unblocks reads with EOF.
    fn set_deadline(&mut self, _deadline: Option<Duration>) {}

    fn shutdown(self) -> Result<(), TransportError> {
        ProcessTransport::shutdown(self)
    }
}

impl ShardTransport for ProcessTransport {
    fn n_shards(&self) -> usize {
        self.children.len()
    }

    fn roundtrip(&mut self, batch: Vec<(usize, Command)>) -> Result<Vec<Reply>, TransportError> {
        let targets: Vec<usize> = batch.iter().map(|(s, _)| *s).collect();
        for (s, cmd) in &batch {
            ShardLink::send(self, *s, &encode_command(cmd))?;
        }
        targets
            .into_iter()
            .map(|s| Ok(decode_reply(&ShardLink::recv(self, s)?)))
            .collect()
    }
}
