//! Byte-stream plumbing shared by every framed transport (stdio pipes and
//! TCP sockets): length-prefixed framing over generic [`Read`]/[`Write`],
//! the versioned bootstrap handshake, and the worker serve loop.
//!
//! # Bootstrap handshake
//!
//! Workers start first, the driver dials second (over pipes, "dialing" is
//! spawning the child). Every conversation opens the same way regardless
//! of the byte stream underneath:
//!
//! 1. **worker → driver** *hello*: `magic:u32 version:u16` — sent as soon
//!    as the stream exists (on spawn for pipes, on accept for sockets).
//! 2. **driver → worker** *handshake*: `magic:u32 version:u16` followed by
//!    the [`ShardInit`] payload ([`super::encode_init`]).
//! 3. Command/reply frames until a `Stop` command ends the conversation.
//!
//! Each side validates the other's magic and version *before* touching the
//! payload, so mixed-version deployments fail with a one-line typed error
//! instead of a frame-decode panic. Bumping [`PROTOCOL_VERSION`] whenever
//! a frame layout changes is what keeps that promise.

use super::{decode_init, encode_init, TransportError, TransportErrorKind};
use crate::engine::shard::{ShardInit, ShardState};
use bytes::{Buf, BufMut, BytesMut};
use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

/// `"WUPS"` — first bytes of every hello/handshake frame.
pub const HANDSHAKE_MAGIC: u32 = 0x5755_5053;

/// Version of the whole exchange protocol (frames, commands, replies).
/// Peers refuse to talk across versions. v2 added the checkpoint/restore
/// command pair (worker supervision); v3 removed the end-of-cycle
/// `TakeCycleCounters`/`CycleCounters` frames (counters are now folded
/// driver-side from the phase replies) and the counter residue from
/// checkpoint frames; v4 added the like-store tag to oracle frames
/// (dense bit-plane or compressed sparse rows).
pub const PROTOCOL_VERSION: u16 = 4;

/// How long the driver waits for a TCP connect to a worker.
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// How long either side waits for the other's half of the handshake
/// before declaring the peer dead or foreign. Sockets arm it as a read
/// timeout; the process transport bounds its hello wait with it (a child
/// can be alive yet silent — e.g. not a shard worker at all).
pub const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Upper bound on a single frame, as a guard against garbage length
/// prefixes from a confused peer (a real init frame for a million-node
/// run stays well under this).
pub const MAX_FRAME_LEN: usize = 1 << 28;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one `len:u32` + payload frame and flushes.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(&(frame.len() as u32).to_le_bytes())?;
    w.write_all(frame)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary. EOF
/// inside a frame (a truncated write from a dying peer) is an
/// [`io::ErrorKind::UnexpectedEof`] error, an oversized length prefix an
/// [`io::ErrorKind::InvalidData`] error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            Ok(n) => filled += n,
            // Retry EINTR like read_exact does below: a signal landing on
            // a header byte must not abort a healthy run.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"),
        ));
    }
    let mut frame = vec![0u8; len];
    r.read_exact(&mut frame).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(io::ErrorKind::UnexpectedEof, "eof inside frame payload")
        } else {
            e
        }
    })?;
    Ok(Some(frame))
}

// ---------------------------------------------------------------------------
// Handshake frames
// ---------------------------------------------------------------------------

/// The worker's greeting: magic + the version it speaks. Takes the version
/// as a parameter so fault-injection tests can impersonate a mismatched
/// worker; real workers always send [`PROTOCOL_VERSION`].
pub fn encode_hello(version: u16) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(6);
    buf.put_u32_le(HANDSHAKE_MAGIC);
    buf.put_u16_le(version);
    Vec::from(buf)
}

/// Parses a hello frame into the peer's version; `Err` when the frame is
/// not a shard-worker greeting at all.
pub fn decode_hello(frame: &[u8]) -> Result<u16, TransportErrorKind> {
    let mut buf = frame;
    if buf.len() != 6 || buf.get_u32_le() != HANDSHAKE_MAGIC {
        return Err(TransportErrorKind::HandshakeMagic);
    }
    Ok(buf.get_u16_le())
}

/// The driver's reply to a hello: magic + version + the shard's init.
pub fn encode_handshake(init: &ShardInit) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_u32_le(HANDSHAKE_MAGIC);
    buf.put_u16_le(PROTOCOL_VERSION);
    buf.put_slice(&encode_init(init));
    Vec::from(buf)
}

/// Validates magic + version, then decodes the carried [`ShardInit`].
pub fn decode_handshake(frame: &[u8]) -> Result<ShardInit, TransportErrorKind> {
    let mut buf = frame;
    if buf.len() < 6 || buf.get_u32_le() != HANDSHAKE_MAGIC {
        return Err(TransportErrorKind::HandshakeMagic);
    }
    let got = buf.get_u16_le();
    if got != PROTOCOL_VERSION {
        return Err(TransportErrorKind::HandshakeVersion {
            got,
            want: PROTOCOL_VERSION,
        });
    }
    Ok(decode_init(buf))
}

/// Driver-side validation of a worker's hello: takes the raw outcome of
/// [`read_frame`] so callers can bound the read however their stream
/// allows (socket read timeout, watchdog thread for pipes). `endpoint`
/// names the worker in errors.
pub fn check_hello(
    endpoint: &str,
    hello: io::Result<Option<Vec<u8>>>,
) -> Result<(), TransportError> {
    let frame = hello
        .map_err(|e| TransportError::io(endpoint, e))?
        .ok_or_else(|| TransportError::closed(endpoint, "worker closed before its hello"))?;
    let version = decode_hello(&frame).map_err(|kind| TransportError {
        endpoint: endpoint.into(),
        kind,
    })?;
    if version != PROTOCOL_VERSION {
        return Err(TransportError {
            endpoint: endpoint.into(),
            kind: TransportErrorKind::HandshakeVersion {
                got: version,
                want: PROTOCOL_VERSION,
            },
        });
    }
    Ok(())
}

/// Driver side of the bootstrap over an established stream: read and
/// validate the worker's hello, then send the versioned handshake carrying
/// `init`. `endpoint` names the worker in errors.
pub fn drive_handshake(
    endpoint: &str,
    input: &mut impl Read,
    output: &mut impl Write,
    init: &ShardInit,
) -> Result<(), TransportError> {
    drive_handshake_encoded(endpoint, input, output, &encode_handshake(init))
}

/// [`drive_handshake`] with the handshake frame already encoded. The init
/// never changes over a transport's lifetime, so supervised transports
/// encode it once at bootstrap and replay the same bytes on every
/// respawn/redial instead of re-serializing the full shard init (which for
/// large shards dominates recovery time).
pub fn drive_handshake_encoded(
    endpoint: &str,
    input: &mut impl Read,
    output: &mut impl Write,
    handshake: &[u8],
) -> Result<(), TransportError> {
    check_hello(endpoint, read_frame(input))?;
    write_frame(output, handshake).map_err(|e| TransportError::io(endpoint, e))
}

// ---------------------------------------------------------------------------
// Worker serve loop
// ---------------------------------------------------------------------------

/// Why a worker conversation ended without a `Stop` — one line for stderr.
#[derive(Debug)]
pub enum WorkerError {
    /// The driver's handshake was missing, foreign, or version-mismatched.
    Handshake(TransportErrorKind),
    /// The driver vanished mid-conversation: EOF or I/O error before
    /// `Stop`. A driver killed mid-run lands here.
    ConnectionLost(io::Error),
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::Handshake(TransportErrorKind::HandshakeVersion { got, want }) => write!(
                f,
                "handshake failed: driver speaks exchange protocol v{got}, \
                 this worker speaks v{want}"
            ),
            WorkerError::Handshake(TransportErrorKind::HandshakeMagic) => {
                write!(f, "handshake failed: peer is not a whatsup-sim driver")
            }
            WorkerError::Handshake(other) => write!(f, "handshake failed: {other:?}"),
            WorkerError::ConnectionLost(e) => write!(f, "driver connection lost: {e}"),
        }
    }
}

impl std::error::Error for WorkerError {}

/// The worker half of the bootstrap over any framed byte stream: send the
/// hello, read + validate the driver's handshake, build the shard state
/// it carries. Callers that can bound reads (sockets) arm a timeout
/// around this and disarm it before [`serve_stream`].
pub fn accept_handshake(
    input: &mut impl Read,
    output: &mut impl Write,
) -> Result<ShardState, WorkerError> {
    write_frame(output, &encode_hello(PROTOCOL_VERSION)).map_err(WorkerError::ConnectionLost)?;
    let frame = read_frame(input)
        .map_err(WorkerError::ConnectionLost)?
        .ok_or_else(|| {
            WorkerError::ConnectionLost(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "driver closed the stream before the handshake",
            ))
        })?;
    let init = decode_handshake(&frame).map_err(WorkerError::Handshake)?;
    Ok(ShardState::from_init(init))
}

/// The worker end of one driver conversation over any framed byte stream:
/// hello, handshake, build the shard, then serve commands until `Stop`.
///
/// Returns `Ok` only on an orderly `Stop`; a driver that merely closes the
/// stream (killed mid-run) is a [`WorkerError::ConnectionLost`], so the
/// worker process can exit non-zero with a one-line message instead of a
/// panic backtrace.
pub fn run_worker(input: &mut impl Read, output: &mut impl Write) -> Result<(), WorkerError> {
    let mut state = accept_handshake(input, output)?;
    serve_stream(&mut state, input, output)
}

/// The post-handshake serve loop: one reply frame per command frame, until
/// `Stop` (`Ok`) or the stream dies (`Err`). Command dispatch is
/// [`crate::engine::shard::handle_frame`], shared with the channel-thread
/// workers, so the transports cannot diverge on command semantics.
pub fn serve_stream(
    state: &mut ShardState,
    input: &mut impl Read,
    output: &mut impl Write,
) -> Result<(), WorkerError> {
    loop {
        let frame = read_frame(input)
            .map_err(WorkerError::ConnectionLost)?
            .ok_or_else(|| {
                WorkerError::ConnectionLost(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "driver closed the stream without sending Stop",
                ))
            })?;
        match crate::engine::shard::handle_frame(state, &frame) {
            Some(reply) => write_frame(output, &reply).map_err(WorkerError::ConnectionLost)?,
            None => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_roundtrip_and_clean_eof() {
        let mut pipe = Vec::new();
        write_frame(&mut pipe, b"hello").unwrap();
        write_frame(&mut pipe, b"").unwrap();
        let mut r: &[u8] = &pipe;
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean eof");
        let mut torn: &[u8] = &pipe[..2];
        assert!(read_frame(&mut torn).is_err(), "eof inside header");
    }

    #[test]
    fn truncated_payload_is_a_typed_eof() {
        let mut pipe = Vec::new();
        write_frame(&mut pipe, b"full frame").unwrap();
        let mut torn: &[u8] = &pipe[..7];
        let err = read_frame(&mut torn).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut pipe = Vec::new();
        pipe.extend_from_slice(&(u32::MAX).to_le_bytes());
        pipe.extend_from_slice(b"junk");
        let mut r: &[u8] = &pipe;
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn hello_roundtrips_and_rejects_foreign_greetings() {
        assert_eq!(decode_hello(&encode_hello(7)).unwrap(), 7);
        assert!(matches!(
            decode_hello(b"GET / HTTP/1.1"),
            Err(TransportErrorKind::HandshakeMagic)
        ));
        assert!(matches!(
            decode_hello(&[0, 0, 0, 0, 0, 0]),
            Err(TransportErrorKind::HandshakeMagic)
        ));
    }

    #[test]
    fn handshake_rejects_version_skew_before_touching_the_init() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(HANDSHAKE_MAGIC);
        buf.put_u16_le(PROTOCOL_VERSION + 1);
        // No init payload at all: the version gate must fire first.
        match decode_handshake(&buf) {
            Err(TransportErrorKind::HandshakeVersion { got, want }) => {
                assert_eq!(got, PROTOCOL_VERSION + 1);
                assert_eq!(want, PROTOCOL_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
        assert!(matches!(
            decode_handshake(b"junk"),
            Err(TransportErrorKind::HandshakeMagic)
        ));
    }
}
