//! The sharded cycle engine for node-based protocols.
//!
//! Methodology (paper §IV/§V): time is a sequence of gossip cycles. Each
//! cycle:
//!
//! 1. every node runs one RPS and one WUP exchange (requests and the
//!    matching responses are delivered within the cycle);
//! 2. the items scheduled for the cycle are published and each epidemic
//!    runs to completion (hop-ordered BFS), which matches the paper's use
//!    of the gossip cycle as time unit — dissemination is fast relative to
//!    clustering dynamics.
//!
//! Message loss (§V-E) applies to every message of every protocol layer.
//! The engine is a pure function of `(dataset, protocol, config)`.
//!
//! # Architecture: shards, phases, exchanges
//!
//! The node table is split into `S` *shards* — contiguous node-id ranges
//! ([`partition::Partition`]) — each owning its nodes' full state:
//! protocol stacks, per-node mailboxes ([`mailbox::Mailbox`]) and lazily
//! derived phase RNGs ([`shard::ShardState`]). A cycle advances through
//! *phases*; each phase is a lockstep round-trip driven by
//! [`driver::Simulation`]:
//!
//! 1. **Collect** — every shard runs [`whatsup_core::WhatsUpNode::on_cycle`]
//!    for its nodes in id order, emitting RPS/WUP requests.
//! 2. **Route/exchange** — each shard groups its emissions by destination
//!    shard and serializes each group into a *mailbox bundle* (the
//!    `whatsup-net` wire codec's bundle frame: addressed single-message
//!    frames, in `(sender id, emission order)` order). The driver forwards
//!    every bundle to its destination shard through the pluggable
//!    [`exchange::ShardTransport`]. Messages that stay on their own shard
//!    skip serialization entirely and wait in the shard's local pending
//!    queue.
//! 3. **Deliver** — each shard merges the inbound bundles *in source-shard
//!    order* (its own pending queue takes its shard's slot) into per-node
//!    mailboxes, then drains each receiver in ascending id order, drawing
//!    the per-message loss coin from the receiver's phase stream in mailbox
//!    order. Replies feed the next route/deliver round until the cycle is
//!    quiet (requests, then responses — gossip needs exactly two delivery
//!    rounds).
//! 4. **Churn** — shards draw per-node crash coins in parallel and report
//!    `(crasher, contact)` pairs; the driver fetches the contacts' view
//!    snapshots (all taken from the *pre-churn* state) from their owning
//!    shards and hands each crashing shard the snapshots to rejoin from.
//! 5. **Publish** — each scheduled item's epidemic runs as a BFS over the
//!    same route/exchange/deliver machinery: all copies at hop distance `h`
//!    are delivered before any copy at `h + 1`. Shards report per-receiver
//!    reception outcomes; the driver folds them into the records in
//!    receiver order.
//! 6. **Measurement flush** — the driver flushes the cycle's counters
//!    (accumulated from the phase replies above) into the run's time
//!    series (see "Measurement pipeline" below). Skipped when
//!    `SimConfig::collect_series` is off.
//!
//! Three transports implement the exchange: an in-process one (shards as
//! scoped worker threads trading `Vec<u8>` frames over channels), a
//! multi-process one (shards as `sim-shard-worker` child processes trading
//! length-prefixed frames over stdio pipes) and a socket one (shards as
//! `sim-shard-worker --listen` processes trading the same frames over
//! TCP, possibly on other machines). With a single shard the driver runs
//! the shard inline. All four paths execute the same
//! [`shard::ShardState`] code on the same command protocol.
//!
//! # Distributed topology
//!
//! The socket transport turns the simulator into a distributable system:
//! one driver, `S` workers, one TCP connection per worker, each worker
//! owning one shard. The moving parts:
//!
//! * **Launch order** — *workers first, then driver*, but only loosely:
//!   each worker binds its `--listen` address, prints `LISTEN <addr>` on
//!   stdout, and blocks in accept; the driver dials every address
//!   (`--transport socket --workers host:port,…`), retrying refused or
//!   unreachable dials over a bounded window (default 3 s —
//!   [`exchange::SocketTransport::connect_with`] widens it), so workers
//!   that come up moments after the driver still get their shard. The
//!   `k`-th address becomes shard `k`, and the shard count *is* the
//!   worker count.
//! * **Handshake frame layout** (all frames `len:u32` little-endian
//!   length-prefixed; see [`exchange::stream`]): on accept the worker
//!   sends a *hello* `magic:u32 = "WUPS", version:u16`; the driver
//!   validates both and answers with a *handshake*
//!   `magic:u32, version:u16, ShardInit payload` (the same
//!   [`exchange::encode_init`] encoding the pipe transport uses — params,
//!   partition, environment models, oracle, bootstrap contacts). Version
//!   skew or a foreign peer is a typed error naming the address on the
//!   driver, a one-line stderr exit on the worker — never a
//!   frame-decode panic. The stdio transport runs the identical
//!   handshake over its pipes.
//! * **Failure paths** — connect and handshake are bounded by timeouts,
//!   so a dead or unreachable worker fails the run cleanly instead of
//!   hanging it. Mid-run, a worker that loses its driver (EOF/broken pipe
//!   before `Stop`) exits non-zero with a one-line message; a driver that
//!   loses a worker surfaces a typed [`exchange::TransportError`] naming
//!   the endpoint, and tearing the transport down stops (and, for child
//!   processes, kills + reaps) the surviving workers.
//! * **Determinism** — the contract below is transport-blind: a scenario
//!   report is bit-identical whether the shards run inline, as threads,
//!   as child processes, or spread over socket workers on other machines,
//!   because every ordering and every RNG draw is fixed by the command
//!   protocol itself, not by who executes it (property-tested across all
//!   three transports, CI-smoked over loopback sockets).
//!
//! # Supervision & recovery
//!
//! The external transports can be wrapped in
//! [`exchange::SupervisedTransport`] ([`crate::Runner::supervised`],
//! `whatsup-sim run --supervise`), which turns a crashed or hung worker
//! from a fatal [`exchange::TransportError`] into a recoverable event —
//! without changing a single byte of the final report. Three pieces:
//!
//! * **Checkpoints** — every `checkpoint_every` completed cycles the
//!   supervisor sends each shard a `TakeCheckpoint` command at the cycle
//!   boundary (mailboxes are provably drained there, so no in-flight mail
//!   is ever serialized). The `Checkpoint` reply is one wire frame
//!   holding the shard's full state via the standard codec: the partition
//!   node range, engine params, environment models, per-node channel
//!   states, known items sorted by id, the oracle copy, then per-node
//!   profile / RPS view / WUP view / seen-set / stats blocks (per-cycle
//!   counters live in the driver, so there is no counter residue to
//!   capture). A `Restore` command feeds the same frame back into a
//!   fresh worker and is acknowledged with `Ack`.
//! * **Command log + replay** — every command frame sent since the last
//!   checkpoint is logged (after its reply arrives) and cleared when a
//!   checkpoint succeeds. On a retryable failure the supervisor restarts
//!   the worker (respawn for child processes, redial for sockets),
//!   re-runs the versioned handshake with the original `ShardInit`,
//!   restores the last checkpoint, replays the logged frames discarding
//!   their replies, then re-issues the in-flight command. Replay is exact
//!   because a shard is a deterministic function of
//!   `(init, command sequence)` — the determinism contract below means
//!   the replayed replies are byte-identical to the originals, so
//!   discarding them loses nothing and the driver above the
//!   [`exchange::ShardTransport`] trait never notices. The restart budget
//!   (`max_restarts` per shard) bounds the loop; when it is exhausted the
//!   *original* error surfaces, not the last recovery attempt's. Fatal
//!   errors (handshake magic/version skew —
//!   [`exchange::TransportErrorKind::is_retryable`]) are never retried.
//! * **Hang detection** — the socket transport arms read/write deadlines
//!   on every stream, so a frozen worker trips a timeout (a retryable
//!   I/O error) instead of hanging the run; pipes surface EOF when the
//!   child dies. Initial dials retry over a bounded window, and
//!   supervised redials reuse it.
//!
//! The fault-injection suite (`tests/transport_faults.rs`) kills and
//! freezes workers mid-run on both external transports and asserts the
//! recovered report is bit-identical to a fault-free run; CI repeats the
//! kill over loopback sockets and `cmp`s the report JSON.
//!
//! # Shard-exchange protocol
//!
//! Bundle layout (see `whatsup_net::codec`): `tag=MAILBOX_BUNDLE`,
//! `from_shard:u32`, `count:u32`, then `count` entries of
//! `to:u32 len:u32 frame`, where `frame` is the standard single-message
//! wire frame — the simulator and the deployment stack share one message
//! encoding, so anything that crosses a shard boundary is by construction
//! expressible on the real network. News frames carry full item content;
//! receiving shards recompute ids and cache content for re-forwarding,
//! exactly like real receivers.
//!
//! Ordering guarantees, which make the exchange invisible to the results:
//!
//! * a bundle preserves the emitting shard's `(sender id, emission order)`
//!   order;
//! * receivers merge bundles in ascending source-shard order, and shard
//!   ranges are contiguous and ascending — so every mailbox ends up in the
//!   same global `(sender id, emission order)` total order a single-shard
//!   run produces;
//! * outcome folds (news receptions, churn resets) happen in ascending
//!   receiver order across shards.
//!
//! # Measurement pipeline
//!
//! Measurement is streaming and windowed, not a single end-of-run
//! aggregate. The driver accumulates a per-cycle counter block
//! ([`whatsup_metrics::CycleStats`]) from the phase replies every cycle
//! already produces — the counters ride the existing round-trips, so
//! there is no dedicated end-of-cycle counter exchange:
//!
//! * *gossip_sent* from the `Outbound` totals of the collect + gossip
//!   delivery rounds, *news_sent* from the publish + BFS rounds — lost
//!   messages included, mirroring the paper's "number of sent messages";
//! * *first_receptions* / *hits* as the per-receiver news outcomes are
//!   folded (a hit is a liked first reception);
//! * *interested* at publish time from the driver's own oracle (each item
//!   counted exactly once);
//! * *crashed* from the churn decisions and explicit node resets;
//!   *live_nodes* is stamped with the population total at the flush.
//!
//! At the end of every cycle the driver flushes the accumulator into the
//! run's [`whatsup_metrics::CycleSeries`]. Every input arrives through
//! reply folds that happen **in shard-index (or ascending receiver)
//! order**, and the fold is pure integer addition over that fixed order,
//! so the series inherits the engine's determinism contract verbatim:
//! **the full time series is bit-identical across shard counts and all
//! three transports** (property-tested in `tests/determinism.rs` and
//! `tests/scenario.rs`, CI-smoked by `cmp`ing report JSON across shard
//! counts).
//!
//! Because every epidemic completes within its publication cycle, one
//! cycle's pooled counters are exactly that cycle's micro-averaged IR
//! numbers, and the scenario's measurement windows
//! ([`crate::scenario::Measurement`]) are resolved against the finished
//! series at `into_report` time — window-scoped aggregates plus recovery
//! metrics (dip depth, time-to-recover, messages spent) for
//! event-anchored windows.
//!
//! # Hot path & allocation discipline
//!
//! The route → deliver loop runs millions of times per simulated cycle,
//! so its steady state is built to allocate nothing and copy bytes once:
//!
//! * **Arena mailboxes** — a shard's mailboxes are one contiguous arena
//!   (`Vec` of `(from, payload, next)` cells) plus per-node chain
//!   heads/tails, not one heap `Vec` per node. A route push is `O(1)` into
//!   the arena; a deliver drain walks the receiver's chain, moving each
//!   payload out and leaving an allocation-free empty behind; `recycle()`
//!   then clears the arena *keeping its capacity*, so after warm-up no
//!   delivery round allocates. Receiver lists cycle through a spare
//!   buffer (`take_receivers`/`restore_receiver_buf`) for the same
//!   reason.
//! * **Zero-copy bundle decode** — inbound bundles are walked with
//!   `codec::bundle_view`, an iterator of borrowed `(to, frame)` slices
//!   over the received buffer; each inner frame decodes straight into its
//!   payload and lands in the arena. No intermediate `Vec<MailEntry>`, no
//!   per-entry frame copies. The borrow ends before the next round's
//!   buffers are touched, so the scratch frames can be reused.
//! * **Encode scratch reuse** — outbound routing drains into per-shard
//!   staging vectors (`emit_scratch`/`route_scratch`) and encodes through
//!   one per-shard `encode_buf`, all drained or cleared rather than
//!   dropped, so their capacity carries cycle-over-cycle.
//! * **Copy-on-write item profiles** — a news message carries its
//!   aggregated profile as an `Arc` ([`whatsup_core::SharedProfile`]):
//!   fanning one reception out to `fLIKE` targets clones the pointer, not
//!   the entries, and the next hop that actually aggregates builds its
//!   merged profile straight from the shared predecessor. Cross-shard,
//!   the per-bundle `codec::NewsDecodeCache` restores that sharing on the
//!   receiving side: consecutive bundle entries with byte-identical item
//!   content or profile spans reuse one parse (byte equality is exact —
//!   the decoders are pure functions of the bytes).
//! * **Profile fingerprints** — every [`whatsup_core::Profile`] maintains
//!   a 128-bit Bloom fingerprint of its rated items at mutation time; the
//!   similarity metrics reject provably disjoint pairs before the scalar
//!   merge-join scan. The rejection is exact for the metrics' semantics
//!   (no shared rated item ⇒ the score is `+0.0` bit-for-bit), so the
//!   fast path cannot perturb determinism — property-tested against the
//!   scan-only reference implementations in `whatsup_core::similarity`.
//! * **Memoized view-merge scores** — each node caches WUP merge
//!   similarity scores keyed by candidate-snapshot identity (`Arc`
//!   address, entry pinning its snapshot alive so the address cannot be
//!   reused) and clears the cache whenever its own profile mutates; a hit
//!   returns the exact `f64` the metric would recompute on the same
//!   operands, so ranking order — and every downstream bit — is
//!   unchanged.
//!
//! None of this changes observable ordering: the arena preserves push
//! order per receiver, routing preserves `(sender id, emission order)`,
//! and the borrowed decode yields entries in exactly the order the
//! encoder wrote. The determinism suites (shard counts × transports) are
//! the regression net for that claim.
//!
//! # Memory model
//!
//! At scale the footprint is **standing live state, not transient
//! spikes**: peak RSS equals the standing RSS at every cycle boundary
//! (measured by the counting-allocator probe in
//! `bench/examples/hotpath_probe.rs`), and allocator overhead is ~10% of
//! RSS — so the only levers that matter are the bytes the protocol
//! actually keeps alive. The budget below is the measured breakdown of a
//! 100 k-node, 10-cycle uniform run (1 shard, metrics off,
//! `Simulation::memory_breakdown`); absolute numbers scale with nodes ×
//! cycles × publication rate, the *shape* is what to remember:
//!
//! | standing state                | 100 k example | grows with                  |
//! |-------------------------------|--------------:|-----------------------------|
//! | own profiles                  |      ~210 MiB | rated items per node        |
//! | pinned view snapshots         |      ~260 MiB | view size × profile size    |
//! | seen sets                     |       ~95 MiB | receptions per node (8 B/id)|
//! | view descriptors + score memo |       ~60 MiB | view size (memo dropped)    |
//! | item records (driver)         |      ~120 MiB | receptions per item         |
//! | mailbox arena + scratch       |       ~40 MiB | peak per-round traffic      |
//! | oracle (CSR)                  |   likes-sized | non-zero likes (4 B each)   |
//!
//! What keeps each row tight:
//!
//! * **Exact-fit compaction** — at every cycle start
//!   ([`shard::ShardState`]'s collect) each node runs
//!   [`whatsup_core::WhatsUpNode::compact`]: profile and seen-set
//!   capacity slack from amortized growth is trimmed to fit (capacities
//!   never influence behavior, so this is invisible to reports), and the
//!   merge-score memo is dropped. The memo is *also* dropped at
//!   `BeginNews` — its hits all happen within a gossip phase, so holding
//!   it (and the candidate snapshots it pins) across the news phase
//!   would stack dead weight under live growth.
//! * **Snapshot sharing** — a disclosed profile is one `Arc` allocation
//!   shared by every view slot and in-flight message that references it;
//!   "pinned view snapshots" counts each allocation once. Cross-shard
//!   the decode cache restores the sharing on the receiving side.
//! * **Sparse oracle** — [`crate::Oracle`] holds likes as CSR or dense
//!   bit-plane, chosen by measured byte cost
//!   (`whatsup_datasets::LikeStore`), and is **process-`Arc`-shared**:
//!   in-process transports hand every shard one pointer. Only the
//!   external transports (child process / socket) pay one copy per
//!   worker, which is the price of actually being distributed.
//! * **Report data is sacred** — item records (per-reception hop and
//!   opinion vectors) feed `SimReport` and cannot be thinned without
//!   changing results; they are driver-owned and exist once regardless
//!   of shard count.
//!
//! Ownership is strictly two-tier. **Shard-owned** (per shard, moves
//! with its partition): node protocol stacks, mailbox arena and scratch,
//! phase RNGs, per-node stats. **Process-shared** (one per process,
//! `Arc`): the oracle and the dataset's item table. Nothing is globally
//! mutable — a shard can be checkpointed, moved, or restored from its
//! own frame alone ([`exchange::SupervisedTransport`]).
//!
//! [`partition::Partition`] is load-aware: `Partition::plan` consumes
//! the scenario's scheduled joins so shards are balanced by their
//! *eventual* node counts, not the bootstrap counts — the contract is
//! that contiguous ascending id ranges cover the final population
//! exactly, and the determinism section below makes the boundary
//! placement invisible to results (only to per-shard RSS).
//!
//! # Determinism contract & static checks
//!
//! Reports are **bit-identical across shard counts and transports**
//! (including the single-shard inline case) for a fixed seed, because no
//! randomness or ordering leaks from the partitioned execution:
//!
//! * every node draws from its own counter-based RNG stream, derived by
//!   [`node_stream`]`(seed, node, cycle, phase)` — never from a shared
//!   generator, and never dependent on how many other nodes exist, where
//!   the shard boundaries fall, or which transport moves the bundles.
//!   Adding nodes (`add_joining_node`) therefore never shifts the streams
//!   of existing nodes;
//! * mailbox contents and the driver folds follow the fixed total orders
//!   above;
//! * message-loss coins are drawn from the *receiver's* stream at delivery
//!   time, in mailbox order;
//! * churn rejoins inherit contact views snapshotted from the pre-churn
//!   state, so application order cannot matter;
//! * the wire codec is lossless for everything behavior depends on
//!   (profiles round-trip entry-exact, scores bit-exact, item ids are
//!   recomputed from identical content).
//!
//! The interactive mutators (`add_joining_node`, `swap_interests`,
//! `reset_node`) draw from a dedicated engine RNG on the driving thread and
//! are deterministic in call order. They run through the same shard
//! commands as the scenario events below, so they work on every transport.
//!
//! The contract is *enforced statically* by the in-tree `whatsup-lint`
//! pass (`cargo run -p whatsup-lint -- --check`, a blocking CI gate):
//! `det-map` forbids `HashMap`/`HashSet` in the crates that feed a
//! `SimReport` — unspecified iteration order is exactly the kind of
//! nondeterminism the property tests can miss — and `det-clock` forbids
//! `Instant::now`/`SystemTime` outside the real-network runtime, so
//! simulated time stays the only clock the engines can observe. Sites
//! that are individually safe (probe-only maps keyed by the deterministic
//! `BuildIdHasher`, maps whose iteration is sorted before it escapes)
//! carry a `// lint:allow(<rule>) <reason>` annotation, which the lint
//! records in its report instead of suppressing silently — the audit
//! trail for every exception lives next to the code it excuses.
//!
//! # Scenario application points
//!
//! A [`crate::scenario::Scenario`] is applied entirely at phase boundaries,
//! which is what extends the determinism contract to every scenario. In
//! cycle order:
//!
//! 1. **Start of cycle** (before collect): the churn model's mass-join
//!    arrivals, then every timeline event stamped `at == cycle`, in list
//!    order. Joins and resets draw their random contact from the driver's
//!    engine RNG (one stream, driving thread, call order = list order) and
//!    move view snapshots via `TakeSnapshots`/`Admit`/`ApplyChurn`
//!    commands; interest swaps broadcast `SwapInterests` so every shard's
//!    oracle copy stays in lockstep.
//! 2. **Collect**: each shard advances its nodes' Gilbert–Elliott channel
//!    chains (one transition per node per cycle, from the node's CHANNEL
//!    stream) before emitting; the states are fixed for the whole cycle.
//! 3. **Deliver (gossip and news)**: the loss model drops messages at the
//!    receiver — constant and Gilbert–Elliott draw one coin per message
//!    from the receiver's phase stream (no draw when the effective
//!    probability is zero); a partition window drops frontier-crossing
//!    messages deterministically, coin-free.
//! 4. **Churn phase**: the churn model's `crash_rate(cycle)` feeds the
//!    per-node crash coins (uniform churn has a constant rate; a crash
//!    wave is non-zero for exactly one cycle).
//! 5. **Publish**: the workload's schedule decides which items publish
//!    this cycle; dissemination itself is scenario-independent. Delivery
//!    round-trips skip shards with no inbound mail (empty bundles
//!    everywhere and nothing pending locally) — a pure traffic
//!    optimization in the sparse BFS tail that cannot change any mailbox.
//!
//! The workload schedule is a pure function of `(workload, config,
//! topics)` computed once at build time; it never consumes engine
//! randomness.

pub mod driver;
pub mod exchange;
pub mod mailbox;
pub mod partition;
pub mod shard;

pub use driver::{planned_shard_node_counts, Simulation};
pub use exchange::{
    ChannelTransport, Command, ProcessTransport, Reply, ShardTransport, SocketTransport,
    SupervisedTransport, Supervision, TransportError,
};
pub use partition::Partition;
pub use shard::{ShardInit, ShardState};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use whatsup_core::NodeId;

/// Phase tags for [`node_stream`] derivation. Distinct phases of the same
/// cycle must never share a stream, or coins drawn in one phase would shift
/// draws in another depending on message volume.
pub mod phase {
    /// `on_cycle` emissions (RPS/WUP initiation).
    pub const CYCLE: u8 = 0;
    /// Gossip mailbox drains (request/response handling + loss coins).
    pub const GOSSIP: u8 = 1;
    /// Churn crash coin and rejoin contact choice.
    pub const CHURN: u8 = 2;
    /// News delivery (BEEP decisions + loss coins).
    pub const NEWS: u8 = 3;
    /// Gilbert–Elliott channel-state transition (scenario loss models).
    pub const CHANNEL: u8 = 4;
}

/// SplitMix64 finalizer.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The counter-based per-node RNG stream for one `(cycle, phase)`.
///
/// A pure function of its arguments: independent of node count, execution
/// order, shard boundaries and transport. This is the engine's only source
/// of randomness inside a cycle.
pub fn node_stream(seed: u64, node: NodeId, cycle: u32, phase: u8) -> ChaCha8Rng {
    const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h = mix64(seed ^ GOLDEN.wrapping_mul(node as u64 ^ 0xfeed_5eed));
    h = mix64(h ^ GOLDEN.wrapping_mul(cycle as u64 + 1));
    h = mix64(h ^ GOLDEN.wrapping_mul(phase as u64 + 1));
    ChaCha8Rng::seed_from_u64(h)
}
