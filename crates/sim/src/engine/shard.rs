//! One shard: the node states of a contiguous id range plus the phase
//! logic the driver orchestrates.
//!
//! A shard mutates only its own nodes. Everything it learns about the rest
//! of the network arrives as mailbox bundles or snapshot requests through
//! the exchange protocol, and everything it emits leaves the same way —
//! which is exactly what keeps the execution identical across shard counts
//! and transports (see the module docs of [`crate::engine`]).

use crate::engine::exchange::{self, Command, FirstReception, NewsOutcome, Outbound, Reply};
use crate::engine::mailbox::{decode_shard_bundle, encode_shard_bundle, MailEntry, Mailbox};
use crate::engine::partition::Partition;
use crate::engine::{node_stream, phase};
use crate::oracle::Oracle;
use crate::scenario::{ChurnModel, LossModel};
use bytes::Bytes;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use whatsup_core::{
    ColdStart, ItemId, NewsItem, NodeId, Opinions, OutMessage, Params, Payload, Profile,
    WhatsUpNode,
};
use whatsup_metrics::CycleStats;

/// Everything needed to build one shard's state — produced by the driver,
/// consumed directly (in-process) or via `exchange::encode_init` (worker
/// processes). Both paths construct through [`ShardState::from_init`], so
/// the transports cannot diverge at bootstrap.
#[derive(Debug, Clone)]
pub struct ShardInit {
    pub index: usize,
    pub partition: Partition,
    pub seed: u64,
    pub loss: LossModel,
    pub churn: ChurnModel,
    pub params: Params,
    pub oracle: Oracle,
    /// Bootstrap contacts per owned node, in local id order (drawn by the
    /// driver so the engine RNG stays on the driving thread).
    pub bootstrap: Vec<Vec<NodeId>>,
}

/// The owned state of one shard.
pub struct ShardState {
    index: usize,
    partition: Partition,
    seed: u64,
    loss: LossModel,
    churn: ChurnModel,
    /// Per-node Gilbert–Elliott channel state (`true` = Bad), advanced once
    /// per cycle at the collect phase from each node's CHANNEL stream. The
    /// channel belongs to the *network*, so churn resets leave it alone;
    /// unused (all-Good) under the other loss models.
    channel_bad: Vec<bool>,
    params: Params,
    /// This shard's oracle copy; the driver keeps every copy in lockstep
    /// when interests are re-mapped.
    oracle: Oracle,
    nodes: Vec<WhatsUpNode>,
    /// Per-node phase RNGs, lazily derived per `(cycle, phase)`.
    phase_rngs: Vec<Option<ChaCha8Rng>>,
    mailbox: Mailbox,
    /// Self-destined emissions of the current round, merged (unserialized)
    /// into the mailboxes at this shard's slot of the next deliver.
    pending_local: Vec<MailEntry>,
    /// News content this shard can re-encode (learned from publishes and
    /// inbound news frames, like a real receiver).
    known_items: HashMap<ItemId, NewsItem>,
    /// Per-cycle measurement counters over the owned nodes, accumulated
    /// during the phases and drained (reset) by
    /// [`Command::TakeCycleCounters`] at the end of every cycle.
    counters: CycleStats,
}

impl ShardState {
    /// Builds the shard: fresh nodes for the owned range, views seeded from
    /// the driver-drawn bootstrap contacts (empty profiles, RPS gets all
    /// contacts, WUP the first half).
    pub fn from_init(init: ShardInit) -> Self {
        let range = init.partition.range(init.index);
        assert_eq!(range.len(), init.bootstrap.len(), "bootstrap list mismatch");
        let mut nodes = Vec::with_capacity(range.len());
        for (local, id) in range.clone().enumerate() {
            let mut node = WhatsUpNode::new(id, init.params.clone());
            let contacts = &init.bootstrap[local];
            let wup_take = (contacts.len() / 2).max(1);
            node.seed_views(
                contacts.iter().map(|&c| (c, Profile::new())),
                contacts.iter().take(wup_take).map(|&c| (c, Profile::new())),
            );
            nodes.push(node);
        }
        let n_local = nodes.len();
        Self {
            index: init.index,
            partition: init.partition,
            seed: init.seed,
            loss: init.loss,
            churn: init.churn,
            channel_bad: vec![false; n_local],
            params: init.params,
            oracle: init.oracle,
            nodes,
            phase_rngs: vec![None; n_local],
            mailbox: Mailbox::new(range),
            pending_local: Vec::new(),
            known_items: HashMap::new(),
            counters: CycleStats::default(),
        }
    }

    pub fn index(&self) -> usize {
        self.index
    }

    fn base(&self) -> NodeId {
        self.partition.range(self.index).start
    }

    fn local(&self, id: NodeId) -> usize {
        let local = id
            .checked_sub(self.base())
            .expect("node not owned by this shard") as usize;
        assert!(local < self.nodes.len(), "node not owned by this shard");
        local
    }

    /// The owned node `id`.
    pub fn node(&self, id: NodeId) -> &WhatsUpNode {
        &self.nodes[self.local(id)]
    }

    /// The owned nodes, in id order.
    pub fn nodes(&self) -> &[WhatsUpNode] {
        &self.nodes
    }

    /// View snapshot of an owned node.
    pub fn snapshot_of(&self, id: NodeId) -> ColdStart {
        self.node(id).views_snapshot()
    }

    /// Registers a node joining at the end of the id space with interests
    /// cloned from `reference`. Every shard updates its partition and
    /// oracle copies; the owning (last) shard additionally receives the
    /// rejoin view `snapshot` and builds the node from it (§II-D cold
    /// start).
    pub fn admit(&mut self, reference: NodeId, snapshot: Option<&[u8]>) {
        self.oracle.add_clone_of(reference);
        let id = self.partition.push_node();
        if let Some(frame) = snapshot {
            assert_eq!(
                self.index + 1,
                self.partition.n_shards(),
                "joiners belong to the last shard"
            );
            let mut node = WhatsUpNode::new(id, self.params.clone());
            node.cold_start(exchange::decode_cold_start(frame), &self.oracle);
            self.nodes.push(node);
            self.phase_rngs.push(None);
            self.channel_bad.push(false);
            self.mailbox.grow();
        }
    }

    /// Executes one phase command. The single entry point shared by the
    /// inline driver, the channel workers and the worker processes.
    pub fn handle(&mut self, cmd: Command) -> Reply {
        match cmd {
            Command::Collect { cycle } => Reply::Outbound(self.collect(cycle)),
            Command::DeliverGossip { cycle, bundles } => {
                Reply::Outbound(self.deliver_gossip(cycle, &bundles))
            }
            Command::ChurnDecide { cycle } => Reply::ChurnDecisions(self.churn_decide(cycle)),
            Command::TakeSnapshots { ids } => Reply::Snapshots(
                ids.iter()
                    .map(|&id| exchange::encode_cold_start(&self.snapshot_of(id)))
                    .collect(),
            ),
            Command::ApplyChurn { resets } => {
                self.apply_churn(&resets);
                Reply::Ack
            }
            Command::Admit {
                reference,
                snapshot,
            } => {
                self.admit(reference, snapshot.as_deref());
                Reply::Ack
            }
            Command::SwapInterests { a, b } => {
                self.oracle.swap_interests(a, b);
                Reply::Ack
            }
            Command::BeginNews => {
                self.phase_rngs.iter_mut().for_each(|r| *r = None);
                Reply::Ack
            }
            Command::Publish { cycle, item } => self.publish(cycle, item),
            Command::DeliverNews {
                cycle,
                item,
                bundles,
            } => self.deliver_news(cycle, item, &bundles),
            Command::TakeCycleCounters => Reply::CycleCounters(self.take_counters()),
            Command::Stop => Reply::Ack,
        }
    }

    /// Groups emissions by destination shard: local mail queues without
    /// serialization, remote mail becomes one wire bundle per destination
    /// (in emission order, which the emitting loops keep in `(sender id,
    /// emission order)` order).
    fn route_out(&mut self, emissions: Vec<(NodeId, OutMessage)>) -> Outbound {
        let shards = self.partition.n_shards();
        let sent = emissions.len() as u64;
        let mut local = 0u64;
        let mut per_dest: Vec<Vec<(NodeId, NodeId, Payload)>> = vec![Vec::new(); shards];
        for (from, m) in emissions {
            let dest = self.partition.shard_of(m.to);
            if dest == self.index {
                local += 1;
                self.pending_local.push(MailEntry {
                    to: m.to,
                    from,
                    payload: m.payload,
                });
            } else {
                per_dest[dest].push((m.to, from, m.payload));
            }
        }
        let bundles = per_dest
            .iter()
            .map(|entries| {
                if entries.is_empty() {
                    Bytes::new()
                } else {
                    encode_shard_bundle(self.index as u32, entries, &self.known_items)
                }
            })
            .collect();
        Outbound {
            sent,
            local,
            bundles,
        }
    }

    /// Merges one round's inbound mail into the per-node mailboxes, in
    /// ascending source-shard order (this shard's own pending queue takes
    /// its slot). With contiguous ascending shard ranges this reproduces
    /// the global `(sender id, emission order)` mailbox order of a
    /// single-shard run.
    fn merge_inbound(&mut self, bundles: &[Bytes]) {
        debug_assert_eq!(bundles.len(), self.partition.n_shards());
        for (src, bundle) in bundles.iter().enumerate() {
            if src == self.index {
                for entry in std::mem::take(&mut self.pending_local) {
                    self.mailbox.push(entry);
                }
            } else if !bundle.is_empty() {
                let known = &mut self.known_items;
                let entries = decode_shard_bundle(bundle, &mut |item| {
                    known.insert(item.id(), item);
                });
                for entry in entries {
                    self.mailbox.push(entry);
                }
            }
        }
    }

    /// Advances the per-node Gilbert–Elliott channel chains (one transition
    /// per cycle, from each node's CHANNEL stream). No-op for the other
    /// loss models.
    fn advance_channels(&mut self, cycle: u32) {
        let LossModel::GilbertElliott {
            good_to_bad,
            bad_to_good,
            ..
        } = self.loss
        else {
            return;
        };
        let base = self.base();
        for (local, bad) in self.channel_bad.iter_mut().enumerate() {
            let flip = if *bad { bad_to_good } else { good_to_bad };
            if flip > 0.0 {
                let id = base + local as NodeId;
                let mut rng = node_stream(self.seed, id, cycle, phase::CHANNEL);
                if rng.gen_bool(flip) {
                    *bad = !*bad;
                }
            }
        }
    }

    /// Drains the per-cycle counters: stamps the live population, returns
    /// the accumulated values and resets them for the next cycle.
    fn take_counters(&mut self) -> CycleStats {
        let mut counters = std::mem::take(&mut self.counters);
        counters.live_nodes = self.nodes.len() as u64;
        counters
    }

    /// Collect phase: every owned node's cycle tick, in id order.
    fn collect(&mut self, cycle: u32) -> Outbound {
        // Fresh gossip-phase streams for the delivery rounds that follow,
        // and this cycle's channel states for the loss coins.
        self.phase_rngs.iter_mut().for_each(|r| *r = None);
        self.advance_channels(cycle);
        let base = self.base();
        let seed = self.seed;
        let mut emissions: Vec<(NodeId, OutMessage)> = Vec::new();
        for (local, node) in self.nodes.iter_mut().enumerate() {
            let id = base + local as NodeId;
            let mut rng = node_stream(seed, id, cycle, phase::CYCLE);
            for m in node.on_cycle(cycle, &mut rng) {
                emissions.push((id, m));
            }
        }
        let out = self.route_out(emissions);
        self.counters.gossip_sent += out.sent;
        out
    }

    /// The active partition frontier at `cycle`, if the loss model opens a
    /// split window: node ids below the cut form one side.
    fn partition_cut(&self, cycle: u32) -> Option<NodeId> {
        if let LossModel::Partition {
            from,
            until,
            frontier,
        } = self.loss
        {
            if cycle >= from && cycle < until {
                return Some((frontier * self.partition.total() as f64).floor() as NodeId);
            }
        }
        None
    }

    /// One gossip delivery round over the owned receivers, ascending.
    fn deliver_gossip(&mut self, cycle: u32, bundles: &[Bytes]) -> Outbound {
        self.merge_inbound(bundles);
        let receivers = self.mailbox.take_receivers();
        let base = self.base();
        let seed = self.seed;
        let loss = self.loss;
        let cut = self.partition_cut(cycle);
        let mut emissions: Vec<(NodeId, OutMessage)> = Vec::new();
        let Self {
            nodes,
            phase_rngs,
            mailbox,
            oracle,
            channel_bad,
            ..
        } = self;
        for id in receivers {
            let local = (id - base) as usize;
            let mail = mailbox.take_mail(id);
            let rng = phase_rngs[local]
                .get_or_insert_with(|| node_stream(seed, id, cycle, phase::GOSSIP));
            let node = &mut nodes[local];
            for (from, payload) in mail {
                if message_dropped(loss, channel_bad[local], cut, from, id, rng) {
                    continue;
                }
                for reply in node.on_message(from, payload, cycle, oracle, rng) {
                    debug_assert!(
                        !matches!(reply.payload, Payload::News(_)),
                        "news cannot appear in the gossip phase"
                    );
                    emissions.push((id, reply));
                }
            }
        }
        let out = self.route_out(emissions);
        self.counters.gossip_sent += out.sent;
        out
    }

    /// Churn coins for the owned nodes: each node crashes with probability
    /// `churn` and picks a uniform rejoin contact from the whole
    /// population, all from its own CHURN stream.
    fn churn_decide(&mut self, cycle: u32) -> Vec<(NodeId, NodeId)> {
        let n = self.partition.total();
        let rate = self.churn.crash_rate(cycle);
        let mut pairs = Vec::new();
        if rate == 0.0 {
            return pairs;
        }
        for id in self.partition.range(self.index) {
            let mut rng = node_stream(self.seed, id, cycle, phase::CHURN);
            if rng.gen_bool(rate) {
                let contact = loop {
                    let c = rng.gen_range(0..n);
                    if c != id as usize {
                        break c;
                    }
                };
                pairs.push((id, contact as NodeId));
            }
        }
        pairs
    }

    /// Applies churn resets: each crashed node rejoins as a fresh instance
    /// cold-started from its contact's (pre-churn) view snapshot. Snapshot
    /// state makes the application order irrelevant.
    fn apply_churn(&mut self, resets: &[(NodeId, Bytes)]) {
        self.counters.crashed += resets.len() as u64;
        for (id, frame) in resets {
            let snapshot = exchange::decode_cold_start(frame);
            let mut fresh = WhatsUpNode::new(*id, self.params.clone());
            fresh.cold_start(snapshot, &self.oracle);
            let local = self.local(*id);
            self.nodes[local] = fresh;
        }
    }

    /// Publishes `item` from its source node (owned by this shard), drawing
    /// from the source's NEWS stream (shared with its deliveries this
    /// cycle).
    fn publish(&mut self, cycle: u32, item: NewsItem) -> Reply {
        let item_id = item.id();
        self.known_items.insert(item_id, item.clone());
        let source = item.source;
        // Ground truth at publication for the per-cycle series: exactly one
        // shard (the source's owner) publishes each item, so the fold
        // across shards counts every item once.
        if let Some(index) = self.oracle.index_of(item_id) {
            self.counters.interested += self.oracle.interested_count(index, source) as u64;
        }
        let local = self.local(source);
        let seed = self.seed;
        let out = {
            let rng = self.phase_rngs[local]
                .get_or_insert_with(|| node_stream(seed, source, cycle, phase::NEWS));
            self.nodes[local].publish(&item, cycle, rng)
        };
        let first_forward_hop = match out.first().map(|m| &m.payload) {
            Some(Payload::News(first)) => Some(first.hops),
            _ => None,
        };
        let emissions = out.into_iter().map(|m| (source, m)).collect();
        let out = self.route_out(emissions);
        self.counters.news_sent += out.sent;
        Reply::Published {
            first_forward_hop,
            out,
        }
    }

    /// One news (BFS) delivery round over the owned receivers, ascending,
    /// reporting per-receiver reception outcomes for the driver's fold.
    fn deliver_news(&mut self, cycle: u32, item_id: ItemId, bundles: &[Bytes]) -> Reply {
        self.merge_inbound(bundles);
        let receivers = self.mailbox.take_receivers();
        let base = self.base();
        let seed = self.seed;
        let loss = self.loss;
        let cut = self.partition_cut(cycle);
        let mut emissions: Vec<(NodeId, OutMessage)> = Vec::new();
        let mut outcomes = Vec::with_capacity(receivers.len());
        let Self {
            nodes,
            phase_rngs,
            mailbox,
            oracle,
            channel_bad,
            ..
        } = self;
        for id in receivers {
            let local = (id - base) as usize;
            let mail = mailbox.take_mail(id);
            let rng =
                phase_rngs[local].get_or_insert_with(|| node_stream(seed, id, cycle, phase::NEWS));
            let node = &mut nodes[local];
            let mut outcome = NewsOutcome {
                receiver: id,
                first: None,
                forward: None,
            };
            for (from, payload) in mail {
                if message_dropped(loss, channel_bad[local], cut, from, id, rng) {
                    continue;
                }
                let Payload::News(news) = &payload else {
                    unreachable!("only news flows in the publication phase")
                };
                debug_assert_eq!(news.header.id, item_id);
                if !node.has_seen(item_id) {
                    outcome.first = Some(FirstReception {
                        hop: news.hops + 1,
                        sender_liked: oracle.likes(from, item_id),
                        receiver_likes: oracle.likes(id, item_id),
                        dislikes: news.dislikes,
                    });
                }
                let replies = node.on_message(from, payload, cycle, oracle, rng);
                if let Some(Payload::News(first_out)) = replies.first().map(|m| &m.payload) {
                    outcome.forward = Some((first_out.hops, oracle.likes(id, item_id)));
                }
                emissions.extend(replies.into_iter().map(|m| (id, m)));
            }
            outcomes.push(outcome);
        }
        for o in &outcomes {
            if let Some(first) = o.first {
                self.counters.first_receptions += 1;
                if first.receiver_likes {
                    self.counters.hits += 1;
                }
            }
        }
        let out = self.route_out(emissions);
        self.counters.news_sent += out.sent;
        Reply::NewsDelivered { out, outcomes }
    }
}

/// Whether one message `from → to` is dropped at delivery time.
///
/// Constant and Gilbert–Elliott losses draw one coin from the *receiver's*
/// phase stream per message (never when the effective probability is zero,
/// so lossless runs draw nothing); the partition window is deterministic —
/// a message crossing the id-space `cut` during the window always drops.
fn message_dropped(
    loss: LossModel,
    receiver_bad: bool,
    cut: Option<NodeId>,
    from: NodeId,
    to: NodeId,
    rng: &mut ChaCha8Rng,
) -> bool {
    match loss {
        LossModel::Constant { p } => p > 0.0 && rng.gen_bool(p),
        LossModel::GilbertElliott { p_good, p_bad, .. } => {
            let p = if receiver_bad { p_bad } else { p_good };
            p > 0.0 && rng.gen_bool(p)
        }
        LossModel::Partition { .. } => match cut {
            Some(cut) => (from < cut) != (to < cut),
            None => false,
        },
    }
}

/// Executes one command frame against the shard: `None` when the frame is
/// a `Stop`, otherwise the encoded reply frame. The single dispatch point
/// every serve loop shares — the in-process channel workers ([`serve`])
/// and the byte-stream transports
/// ([`crate::engine::exchange::stream::serve_stream`], which the
/// `sim-shard-worker` binary runs over pipes and sockets).
pub fn handle_frame(state: &mut ShardState, frame: &[u8]) -> Option<Vec<u8>> {
    let cmd = exchange::decode_command(frame);
    if matches!(cmd, Command::Stop) {
        return None;
    }
    Some(exchange::encode_reply(&state.handle(cmd)))
}

/// The channel-worker serve loop: pull frames, dispatch through
/// [`handle_frame`], push replies — until a `Stop` command or the input
/// closes.
pub fn serve(
    state: &mut ShardState,
    mut next: impl FnMut() -> Option<Vec<u8>>,
    mut send: impl FnMut(Vec<u8>),
) {
    while let Some(frame) = next() {
        match handle_frame(state, &frame) {
            Some(reply) => send(reply),
            None => return,
        }
    }
}
