//! One shard: the node states of a contiguous id range plus the phase
//! logic the driver orchestrates.
//!
//! A shard mutates only its own nodes. Everything it learns about the rest
//! of the network arrives as mailbox bundles or snapshot requests through
//! the exchange protocol, and everything it emits leaves the same way —
//! which is exactly what keeps the execution identical across shard counts
//! and transports (see the module docs of [`crate::engine`]).

use crate::engine::exchange::{self, Command, FirstReception, NewsOutcome, Outbound, Reply};
use crate::engine::mailbox::{decode_shard_bundle_each, MailEntry, Mailbox};
use crate::engine::partition::Partition;
use crate::engine::{node_stream, phase};
use crate::oracle::Oracle;
use crate::scenario::{ChurnModel, LossModel};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
// lint:allow(det-map) import for the probe-only item store annotated below
use std::collections::HashMap;
use whatsup_core::{
    ColdStart, ItemId, NewsItem, NodeId, NodeState, NodeStats, Opinions, OutMessage, Params,
    Payload, Profile, SharedProfile, WhatsUpNode,
};
use whatsup_net::codec;

/// Fixed-item opinion view for the news phase: one publication round
/// delivers exactly one item, so the oracle's id→index map is probed once
/// per round here instead of once per reception (millions of map lookups
/// per cycle at scale).
struct ItemOpinions<'a> {
    oracle: &'a Oracle,
    /// Dataset index of the round's item; `None` for an unknown item
    /// (outside the workload — nobody likes it).
    idx: Option<u32>,
}

impl Opinions for ItemOpinions<'_> {
    fn likes(&self, node: NodeId, _item: ItemId) -> bool {
        match self.idx {
            Some(ix) => self.oracle.likes_index(node, ix),
            None => false,
        }
    }
}

/// Everything needed to build one shard's state — produced by the driver,
/// consumed directly (in-process) or via `exchange::encode_init` (worker
/// processes). Both paths construct through [`ShardState::from_init`], so
/// the transports cannot diverge at bootstrap.
#[derive(Debug, Clone)]
pub struct ShardInit {
    pub index: usize,
    pub partition: Partition,
    pub seed: u64,
    pub loss: LossModel,
    pub churn: ChurnModel,
    pub params: Params,
    pub oracle: Oracle,
    /// Bootstrap contacts per owned node, in local id order (drawn by the
    /// driver so the engine RNG stays on the driving thread).
    pub bootstrap: Vec<Vec<NodeId>>,
}

/// The owned state of one shard.
pub struct ShardState {
    index: usize,
    partition: Partition,
    seed: u64,
    loss: LossModel,
    churn: ChurnModel,
    /// Per-node Gilbert–Elliott channel state (`true` = Bad), advanced once
    /// per cycle at the collect phase from each node's CHANNEL stream. The
    /// channel belongs to the *network*, so churn resets leave it alone;
    /// unused (all-Good) under the other loss models.
    channel_bad: Vec<bool>,
    params: Params,
    /// This shard's oracle copy; the driver keeps every copy in lockstep
    /// when interests are re-mapped.
    oracle: Oracle,
    nodes: Vec<WhatsUpNode>,
    /// Per-node counters, SoA: parallel to [`Self::nodes`]. Cold data the
    /// hot loops only append to — keeping it out of [`WhatsUpNode`] keeps
    /// node iteration from dragging the counter bytes through cache.
    node_stats: Vec<NodeStats>,
    /// Per-node phase RNGs, lazily derived per `(cycle, phase)`.
    phase_rngs: Vec<Option<ChaCha8Rng>>,
    mailbox: Mailbox,
    /// Self-destined emissions of the current round, merged (unserialized)
    /// into the mailboxes at this shard's slot of the next deliver.
    pending_local: Vec<MailEntry>,
    /// News content this shard can re-encode (learned from publishes and
    /// inbound news frames, like a real receiver).
    // lint:allow(det-map) BuildIdHasher keys, probed by id only; checkpoint encode sorts entries
    known_items: HashMap<ItemId, NewsItem, whatsup_core::hash::BuildIdHasher>,
    /// Route-phase staging, reused round-over-round (capacity kept): the
    /// emissions of the current phase loop, and the per-destination-shard
    /// buckets [`Self::route_out`] groups them into.
    emit_scratch: Vec<(NodeId, OutMessage)>,
    route_scratch: Vec<Vec<(NodeId, NodeId, Payload)>>,
    /// Bundle encode buffer, reused round-over-round so steady-state
    /// encoding never grows a fresh allocation.
    encode_buf: BytesMut,
}

impl ShardState {
    /// Builds the shard: fresh nodes for the owned range, views seeded from
    /// the driver-drawn bootstrap contacts (empty profiles, RPS gets all
    /// contacts, WUP the first half).
    pub fn from_init(init: ShardInit) -> Self {
        let range = init.partition.range(init.index);
        assert_eq!(range.len(), init.bootstrap.len(), "bootstrap list mismatch");
        let mut nodes = Vec::with_capacity(range.len());
        // Every bootstrap descriptor carries the same empty profile: one
        // allocation for the whole shard instead of one per view slot.
        let empty = SharedProfile::new(Profile::new());
        for (local, id) in range.clone().enumerate() {
            let mut node = WhatsUpNode::new(id, init.params.clone());
            let contacts = &init.bootstrap[local];
            let wup_take = (contacts.len() / 2).max(1);
            node.seed_views_arcs(
                contacts.iter().map(|&c| (c, SharedProfile::clone(&empty))),
                contacts
                    .iter()
                    .take(wup_take)
                    .map(|&c| (c, SharedProfile::clone(&empty))),
            );
            nodes.push(node);
        }
        let n_local = nodes.len();
        Self {
            index: init.index,
            partition: init.partition,
            seed: init.seed,
            loss: init.loss,
            churn: init.churn,
            channel_bad: vec![false; n_local],
            params: init.params,
            oracle: init.oracle,
            nodes,
            node_stats: vec![NodeStats::default(); n_local],
            phase_rngs: vec![None; n_local],
            mailbox: Mailbox::new(range),
            pending_local: Vec::new(),
            known_items: HashMap::default(), // lint:allow(det-map) see field declaration
            emit_scratch: Vec::new(),
            route_scratch: Vec::new(),
            encode_buf: BytesMut::new(),
        }
    }

    pub fn index(&self) -> usize {
        self.index
    }

    fn base(&self) -> NodeId {
        self.partition.range(self.index).start
    }

    fn local(&self, id: NodeId) -> usize {
        let local = id
            .checked_sub(self.base())
            .expect("node not owned by this shard") as usize;
        assert!(local < self.nodes.len(), "node not owned by this shard");
        local
    }

    /// The owned node `id`.
    pub fn node(&self, id: NodeId) -> &WhatsUpNode {
        &self.nodes[self.local(id)]
    }

    /// The owned nodes, in id order.
    pub fn nodes(&self) -> &[WhatsUpNode] {
        &self.nodes
    }

    /// View snapshot of an owned node.
    pub fn snapshot_of(&self, id: NodeId) -> ColdStart {
        self.node(id).views_snapshot()
    }

    /// Heap accounting by component (diagnostics; backs the byte-budget
    /// table in the engine module docs). Returns `(component, bytes)`
    /// rows. Snapshot bytes count each distinct pinned profile `Arc` once,
    /// excluding the nodes' own live profiles.
    #[doc(hidden)]
    pub fn memory_breakdown(&self) -> Vec<(&'static str, usize)> {
        use std::collections::HashSet; // lint:allow(det-map) diagnostics only, result order is fixed below
        let mut profiles = 0usize;
        let mut seen = 0usize;
        let mut caches = 0usize;
        // lint:allow(det-map) dedup probe for byte totals; never iterated
        let mut pinned: HashSet<usize> = HashSet::new();
        // lint:allow(det-map) membership probe only; never iterated
        let own: HashSet<usize> = self
            .nodes
            .iter()
            .map(|n| n.profile().entries().as_ptr() as usize)
            .collect();
        let mut snapshot_bytes = 0usize;
        for node in &self.nodes {
            let (p, s, c) = node.debug_heap_stats(&mut |shared| {
                let key = shared.entries().as_ptr() as usize;
                if !own.contains(&key) && pinned.insert(key) {
                    // Two allocations per snapshot: the Arc block (counts +
                    // Profile struct) and the entries buffer (capacity).
                    snapshot_bytes += shared.entries_capacity()
                        * std::mem::size_of::<whatsup_core::profile::ProfileEntry>()
                        + std::mem::size_of::<whatsup_core::profile::Profile>()
                        + 16;
                }
            });
            profiles += p;
            seen += s;
            caches += c;
        }
        vec![
            ("own profiles", profiles),
            ("pinned snapshots", snapshot_bytes),
            ("seen sets", seen),
            ("node caches", caches),
            ("mailbox arena", self.mailbox.capacity_bytes()),
            (
                "emit scratch",
                self.emit_scratch.capacity() * std::mem::size_of::<(NodeId, OutMessage)>(),
            ),
            (
                "pending local",
                self.pending_local.capacity() * std::mem::size_of::<MailEntry>(),
            ),
            (
                "phase rngs",
                self.phase_rngs.capacity() * std::mem::size_of::<Option<ChaCha8Rng>>(),
            ),
        ]
    }

    /// Registers a node joining at the end of the id space with interests
    /// cloned from `reference`. Every shard updates its partition and
    /// oracle copies; the owning (last) shard additionally receives the
    /// rejoin view `snapshot` and builds the node from it (§II-D cold
    /// start).
    pub fn admit(&mut self, reference: NodeId, snapshot: Option<&[u8]>) {
        self.oracle.add_clone_of(reference);
        let id = self.partition.push_node();
        if let Some(frame) = snapshot {
            assert_eq!(
                self.index + 1,
                self.partition.n_shards(),
                "joiners belong to the last shard"
            );
            let mut node = WhatsUpNode::new(id, self.params.clone());
            node.cold_start(exchange::decode_cold_start(frame), &self.oracle);
            self.nodes.push(node);
            self.node_stats.push(NodeStats::default());
            self.phase_rngs.push(None);
            self.channel_bad.push(false);
            self.mailbox.grow();
        }
    }

    /// Executes one phase command. The single entry point shared by the
    /// inline driver, the channel workers and the worker processes.
    pub fn handle(&mut self, cmd: Command) -> Reply {
        match cmd {
            Command::Collect { cycle } => Reply::Outbound(self.collect(cycle)),
            Command::DeliverGossip { cycle, bundles } => {
                Reply::Outbound(self.deliver_gossip(cycle, &bundles))
            }
            Command::ChurnDecide { cycle } => Reply::ChurnDecisions(self.churn_decide(cycle)),
            Command::TakeSnapshots { ids } => Reply::Snapshots(
                ids.iter()
                    .map(|&id| exchange::encode_cold_start(&self.snapshot_of(id)))
                    .collect(),
            ),
            Command::ApplyChurn { resets } => {
                self.apply_churn(&resets);
                Reply::Ack
            }
            Command::Admit {
                reference,
                snapshot,
            } => {
                self.admit(reference, snapshot.as_deref());
                Reply::Ack
            }
            Command::SwapInterests { a, b } => {
                self.oracle.swap_interests(a, b);
                Reply::Ack
            }
            Command::BeginNews => {
                self.phase_rngs.iter_mut().for_each(|r| *r = None);
                // Gossip is over for this cycle: the merge-score memo's
                // hits all happen within a gossip phase, so drop it (and
                // the candidate snapshots it pins) before the news phase
                // grows into the freed memory. Probe-only — see
                // `WhatsUpNode::drop_score_memo`.
                self.nodes.iter_mut().for_each(WhatsUpNode::drop_score_memo);
                Reply::Ack
            }
            Command::Publish { cycle, item } => self.publish(cycle, item),
            Command::DeliverNews {
                cycle,
                item,
                bundles,
            } => self.deliver_news(cycle, item, &bundles),
            Command::TakeCheckpoint => Reply::Checkpoint(self.encode_checkpoint()),
            Command::Restore { frame } => {
                self.restore_checkpoint(&frame);
                Reply::Ack
            }
            Command::Stop => Reply::Ack,
        }
    }

    /// Serializes this shard's full dynamic state as one checkpoint frame.
    ///
    /// Layout (all little-endian, wire-codec encodings for the node data):
    /// partition starts, per-node channel states, the known news items
    /// (ascending item id, canonical), the oracle copy, then one
    /// [`NodeState`] per owned node in id order (profile entries, RPS view,
    /// WUP view, seen ids ascending, stats). Per-cycle measurement counters
    /// live in the driver (folded from the phase replies), so checkpoints
    /// carry no counter residue.
    ///
    /// Static state (`index`, `seed`, loss/churn models, params) is *not*
    /// serialized: a restoring worker already received it via the bootstrap
    /// handshake's [`ShardInit`]. Phase RNGs are derived per
    /// `(cycle, phase)` and the restart replays from a cycle boundary, so
    /// no RNG state needs capturing either.
    ///
    /// # Panics
    /// Panics if any mail is in flight — checkpoints are only meaningful at
    /// cycle boundaries, where every mailbox is provably drained.
    pub fn encode_checkpoint(&self) -> Bytes {
        assert!(
            self.mailbox.is_empty() && self.pending_local.is_empty(),
            "checkpoint requires an empty mailbox (cycle boundary)"
        );
        let mut buf = BytesMut::with_capacity(4096);
        let starts = self.partition.starts();
        buf.put_u32_le(starts.len() as u32);
        for &s in starts {
            buf.put_u32_le(s);
        }
        buf.put_u32_le(self.channel_bad.len() as u32);
        for &bad in &self.channel_bad {
            buf.put_u8(u8::from(bad));
        }
        // HashMap iteration order is unspecified; sort for a canonical
        // frame (identical shards must checkpoint to identical bytes).
        let mut items: Vec<&NewsItem> = self.known_items.values().collect();
        items.sort_unstable_by_key(|item| item.id());
        buf.put_u32_le(items.len() as u32);
        for item in items {
            exchange::put_news_item(&mut buf, item);
        }
        exchange::put_oracle(&mut buf, &self.oracle);
        buf.put_u32_le(self.nodes.len() as u32);
        for (node, stats) in self.nodes.iter().zip(&self.node_stats) {
            let st = node.export_state();
            codec::put_profile(&mut buf, &Profile::from_vec(st.profile));
            codec::put_descriptors(&mut buf, &st.rps_view);
            codec::put_descriptors(&mut buf, &st.wup_view);
            buf.put_u32_le(st.seen.len() as u32);
            for item in &st.seen {
                buf.put_u64_le(*item);
            }
            put_node_stats(&mut buf, stats);
        }
        buf.freeze()
    }

    /// Replaces this shard's dynamic state with a checkpoint frame
    /// (recovery path — the shard was just rebuilt from its original init).
    /// Transient state is reset: mailboxes empty (guaranteed at the
    /// checkpointed boundary), phase RNGs re-derived on first use.
    pub fn restore_checkpoint(&mut self, mut frame: &[u8]) {
        let buf = &mut frame;
        let n_starts = buf.get_u32_le() as usize;
        let starts = (0..n_starts).map(|_| buf.get_u32_le()).collect();
        self.partition = Partition::from_starts(starts);
        let n_channels = buf.get_u32_le() as usize;
        self.channel_bad = (0..n_channels).map(|_| buf.get_u8() != 0).collect();
        let n_items = buf.get_u32_le() as usize;
        self.known_items = (0..n_items)
            .map(|_| {
                let item = exchange::get_news_item(buf);
                (item.id(), item)
            })
            .collect();
        self.oracle = exchange::get_oracle(buf);
        let range = self.partition.range(self.index);
        let n_nodes = buf.get_u32_le() as usize;
        assert_eq!(range.len(), n_nodes, "checkpoint/partition node mismatch");
        assert_eq!(n_channels, n_nodes, "checkpoint channel-state mismatch");
        let mut node_stats = Vec::with_capacity(n_nodes);
        self.nodes = range
            .zip(0..n_nodes)
            .map(|(id, _)| {
                let profile = codec::get_profile(buf)
                    .expect("malformed checkpoint profile")
                    .entries()
                    .to_vec();
                let rps_view = codec::get_descriptors(buf).expect("malformed checkpoint view");
                let wup_view = codec::get_descriptors(buf).expect("malformed checkpoint view");
                let n_seen = buf.get_u32_le() as usize;
                let seen = (0..n_seen).map(|_| buf.get_u64_le()).collect();
                let node = WhatsUpNode::from_state(
                    id,
                    self.params.clone(),
                    NodeState {
                        profile,
                        rps_view,
                        wup_view,
                        seen,
                    },
                );
                node_stats.push(get_node_stats(buf));
                node
            })
            .collect();
        self.node_stats = node_stats;
        self.phase_rngs = vec![None; n_nodes];
        self.mailbox = Mailbox::new(self.partition.range(self.index));
        self.pending_local = Vec::new();
    }

    /// Groups the staged emissions ([`Self::emit_scratch`]) by destination
    /// shard: local mail queues without serialization, remote mail becomes
    /// one wire bundle per destination (in emission order, which the
    /// emitting loops keep in `(sender id, emission order)` order). All
    /// staging buffers are drained, not dropped — their capacity carries to
    /// the next round.
    fn route_out(&mut self) -> Outbound {
        let shards = self.partition.n_shards();
        if self.route_scratch.len() != shards {
            self.route_scratch.resize_with(shards, Vec::new);
        }
        let sent = self.emit_scratch.len() as u64;
        let mut local = 0u64;
        for (from, m) in self.emit_scratch.drain(..) {
            let dest = self.partition.shard_of(m.to);
            if dest == self.index {
                local += 1;
                self.pending_local.push(MailEntry {
                    to: m.to,
                    from,
                    payload: m.payload,
                });
            } else {
                self.route_scratch[dest].push((m.to, from, m.payload));
            }
        }
        let bundles = self
            .route_scratch
            .iter_mut()
            .map(|entries| {
                if entries.is_empty() {
                    return Bytes::new();
                }
                self.encode_buf.clear();
                codec::encode_bundle_into(&mut self.encode_buf, self.index as u32, entries, |id| {
                    self.known_items.get(&id).cloned()
                });
                entries.clear();
                Bytes::copy_from_slice(&self.encode_buf)
            })
            .collect();
        Outbound {
            sent,
            local,
            bundles,
        }
    }

    /// Merges one round's inbound mail into the per-node mailboxes, in
    /// ascending source-shard order (this shard's own pending queue takes
    /// its slot). With contiguous ascending shard ranges this reproduces
    /// the global `(sender id, emission order)` mailbox order of a
    /// single-shard run.
    fn merge_inbound(&mut self, bundles: &[Bytes]) {
        debug_assert_eq!(bundles.len(), self.partition.n_shards());
        let Self {
            pending_local,
            mailbox,
            known_items,
            ..
        } = self;
        for (src, bundle) in bundles.iter().enumerate() {
            if src == self.index {
                for entry in pending_local.drain(..) {
                    mailbox.push(entry);
                }
            } else if !bundle.is_empty() {
                decode_shard_bundle_each(
                    bundle,
                    &mut |item| {
                        known_items.insert(item.id(), item);
                    },
                    |to, from, payload| mailbox.push_parts(to, from, payload),
                );
            }
        }
    }

    /// Advances the per-node Gilbert–Elliott channel chains (one transition
    /// per cycle, from each node's CHANNEL stream). No-op for the other
    /// loss models.
    fn advance_channels(&mut self, cycle: u32) {
        let LossModel::GilbertElliott {
            good_to_bad,
            bad_to_good,
            ..
        } = self.loss
        else {
            return;
        };
        let base = self.base();
        for (local, bad) in self.channel_bad.iter_mut().enumerate() {
            let flip = if *bad { bad_to_good } else { good_to_bad };
            if flip > 0.0 {
                let id = base + local as NodeId;
                let mut rng = node_stream(self.seed, id, cycle, phase::CHANNEL);
                if rng.gen_bool(flip) {
                    *bad = !*bad;
                }
            }
        }
    }

    /// Collect phase: every owned node's cycle tick, in id order.
    fn collect(&mut self, cycle: u32) -> Outbound {
        // Cycle start: trim last cycle's allocation slack before growing
        // again (capacities never influence behavior — see
        // `WhatsUpNode::compact`). This keeps standing memory proportional
        // to live state instead of ratcheting to every Vec's high-water.
        self.nodes.iter_mut().for_each(WhatsUpNode::compact);
        // Fresh gossip-phase streams for the delivery rounds that follow,
        // and this cycle's channel states for the loss coins.
        self.phase_rngs.iter_mut().for_each(|r| *r = None);
        self.advance_channels(cycle);
        let base = self.base();
        let seed = self.seed;
        let Self {
            nodes,
            node_stats,
            emit_scratch,
            ..
        } = self;
        {
            for (local, node) in nodes.iter_mut().enumerate() {
                let id = base + local as NodeId;
                let mut rng = node_stream(seed, id, cycle, phase::CYCLE);
                for m in node.on_cycle(cycle, &mut node_stats[local], &mut rng) {
                    emit_scratch.push((id, m));
                }
            }
        }
        self.route_out()
    }

    /// The active partition frontier at `cycle`, if the loss model opens a
    /// split window: node ids below the cut form one side.
    fn partition_cut(&self, cycle: u32) -> Option<NodeId> {
        if let LossModel::Partition {
            from,
            until,
            frontier,
        } = self.loss
        {
            if cycle >= from && cycle < until {
                return Some((frontier * self.partition.total() as f64).floor() as NodeId);
            }
        }
        None
    }

    /// One gossip delivery round over the owned receivers, ascending.
    fn deliver_gossip(&mut self, cycle: u32, bundles: &[Bytes]) -> Outbound {
        self.merge_inbound(bundles);
        let receivers = self.mailbox.take_receivers();
        let base = self.base();
        let seed = self.seed;
        let loss = self.loss;
        let cut = self.partition_cut(cycle);
        let Self {
            nodes,
            node_stats,
            phase_rngs,
            mailbox,
            oracle,
            channel_bad,
            emit_scratch,
            ..
        } = self;
        for &id in &receivers {
            let local = (id - base) as usize;
            let rng = phase_rngs[local]
                .get_or_insert_with(|| node_stream(seed, id, cycle, phase::GOSSIP));
            let node = &mut nodes[local];
            let stats = &mut node_stats[local];
            mailbox.drain_mail(id, |from, payload| {
                if message_dropped(loss, channel_bad[local], cut, from, id, rng) {
                    return;
                }
                for reply in node.on_message(from, payload, cycle, oracle, stats, rng) {
                    debug_assert!(
                        !matches!(reply.payload, Payload::News(_)),
                        "news cannot appear in the gossip phase"
                    );
                    emit_scratch.push((id, reply));
                }
            });
        }
        mailbox.restore_receiver_buf(receivers);
        mailbox.recycle();
        self.route_out()
    }

    /// Churn coins for the owned nodes: each node crashes with probability
    /// `churn` and picks a uniform rejoin contact from the whole
    /// population, all from its own CHURN stream.
    fn churn_decide(&mut self, cycle: u32) -> Vec<(NodeId, NodeId)> {
        let n = self.partition.total();
        let rate = self.churn.crash_rate(cycle);
        let mut pairs = Vec::new();
        if rate == 0.0 {
            return pairs;
        }
        for id in self.partition.range(self.index) {
            let mut rng = node_stream(self.seed, id, cycle, phase::CHURN);
            if rng.gen_bool(rate) {
                let contact = loop {
                    let c = rng.gen_range(0..n);
                    if c != id as usize {
                        break c;
                    }
                };
                pairs.push((id, contact as NodeId));
            }
        }
        pairs
    }

    /// Applies churn resets: each crashed node rejoins as a fresh instance
    /// cold-started from its contact's (pre-churn) view snapshot. Snapshot
    /// state makes the application order irrelevant.
    fn apply_churn(&mut self, resets: &[(NodeId, Bytes)]) {
        for (id, frame) in resets {
            let snapshot = exchange::decode_cold_start(frame);
            let mut fresh = WhatsUpNode::new(*id, self.params.clone());
            fresh.cold_start(snapshot, &self.oracle);
            let local = self.local(*id);
            self.nodes[local] = fresh;
            // A rejoining node is a fresh instance: its counters restart
            // with it, exactly as when they lived inside the node.
            self.node_stats[local] = NodeStats::default();
        }
    }

    /// Publishes `item` from its source node (owned by this shard), drawing
    /// from the source's NEWS stream (shared with its deliveries this
    /// cycle).
    fn publish(&mut self, cycle: u32, item: NewsItem) -> Reply {
        let item_id = item.id();
        self.known_items.insert(item_id, item.clone());
        let source = item.source;
        let local = self.local(source);
        let seed = self.seed;
        let out = {
            let rng = self.phase_rngs[local]
                .get_or_insert_with(|| node_stream(seed, source, cycle, phase::NEWS));
            self.nodes[local].publish(&item, cycle, &mut self.node_stats[local], rng)
        };
        let first_forward_hop = match out.first().map(|m| &m.payload) {
            Some(Payload::News(first)) => Some(first.hops),
            _ => None,
        };
        self.emit_scratch
            .extend(out.into_iter().map(|m| (source, m)));
        let out = self.route_out();
        Reply::Published {
            first_forward_hop,
            out,
        }
    }

    /// One news (BFS) delivery round over the owned receivers, ascending,
    /// reporting per-receiver reception outcomes for the driver's fold.
    fn deliver_news(&mut self, cycle: u32, item_id: ItemId, bundles: &[Bytes]) -> Reply {
        self.merge_inbound(bundles);
        let receivers = self.mailbox.take_receivers();
        let base = self.base();
        let seed = self.seed;
        let loss = self.loss;
        let cut = self.partition_cut(cycle);
        let mut outcomes = Vec::with_capacity(receivers.len());
        let Self {
            nodes,
            node_stats,
            phase_rngs,
            mailbox,
            oracle,
            channel_bad,
            emit_scratch,
            ..
        } = self;
        let oracle: &Oracle = oracle;
        let opinions = ItemOpinions {
            oracle,
            idx: oracle.index_of(item_id),
        };
        for &id in &receivers {
            let local = (id - base) as usize;
            let rng =
                phase_rngs[local].get_or_insert_with(|| node_stream(seed, id, cycle, phase::NEWS));
            let node = &mut nodes[local];
            let stats = &mut node_stats[local];
            // Fixed per (receiver, round): hoisted out of the per-message
            // closure instead of re-resolving on every copy.
            let receiver_likes = opinions.likes(id, item_id);
            let mut outcome = NewsOutcome {
                receiver: id,
                first: None,
                forward: None,
            };
            mailbox.drain_mail(id, |from, payload| {
                if message_dropped(loss, channel_bad[local], cut, from, id, rng) {
                    return;
                }
                let Payload::News(news) = &payload else {
                    unreachable!("only news flows in the publication phase")
                };
                debug_assert_eq!(news.header.id, item_id);
                if !node.has_seen(item_id) {
                    outcome.first = Some(FirstReception {
                        hop: news.hops + 1,
                        sender_liked: opinions.likes(from, item_id),
                        receiver_likes,
                        dislikes: news.dislikes,
                    });
                }
                let replies = node.on_message(from, payload, cycle, &opinions, stats, rng);
                if let Some(Payload::News(first_out)) = replies.first().map(|m| &m.payload) {
                    outcome.forward = Some((first_out.hops, receiver_likes));
                }
                emit_scratch.extend(replies.into_iter().map(|m| (id, m)));
            });
            outcomes.push(outcome);
        }
        mailbox.restore_receiver_buf(receivers);
        mailbox.recycle();
        let out = self.route_out();
        Reply::NewsDelivered { out, outcomes }
    }
}

/// Wire form of one node's counters: seven `u64`s in [`NodeStats`] field
/// order.
fn put_node_stats(buf: &mut BytesMut, stats: &NodeStats) {
    buf.put_u64_le(stats.rps_sent);
    buf.put_u64_le(stats.wup_sent);
    buf.put_u64_le(stats.news_sent);
    buf.put_u64_le(stats.news_received);
    buf.put_u64_le(stats.news_duplicates);
    buf.put_u64_le(stats.news_liked);
    buf.put_u64_le(stats.published);
}

fn get_node_stats(buf: &mut &[u8]) -> NodeStats {
    NodeStats {
        rps_sent: buf.get_u64_le(),
        wup_sent: buf.get_u64_le(),
        news_sent: buf.get_u64_le(),
        news_received: buf.get_u64_le(),
        news_duplicates: buf.get_u64_le(),
        news_liked: buf.get_u64_le(),
        published: buf.get_u64_le(),
    }
}

/// Whether one message `from → to` is dropped at delivery time.
///
/// Constant and Gilbert–Elliott losses draw one coin from the *receiver's*
/// phase stream per message (never when the effective probability is zero,
/// so lossless runs draw nothing); the partition window is deterministic —
/// a message crossing the id-space `cut` during the window always drops.
fn message_dropped(
    loss: LossModel,
    receiver_bad: bool,
    cut: Option<NodeId>,
    from: NodeId,
    to: NodeId,
    rng: &mut ChaCha8Rng,
) -> bool {
    match loss {
        LossModel::Constant { p } => p > 0.0 && rng.gen_bool(p),
        LossModel::GilbertElliott { p_good, p_bad, .. } => {
            let p = if receiver_bad { p_bad } else { p_good };
            p > 0.0 && rng.gen_bool(p)
        }
        LossModel::Partition { .. } => match cut {
            Some(cut) => (from < cut) != (to < cut),
            None => false,
        },
    }
}

/// Executes one command frame against the shard: `None` when the frame is
/// a `Stop`, otherwise the encoded reply frame. The single dispatch point
/// every serve loop shares — the in-process channel workers ([`serve`])
/// and the byte-stream transports
/// ([`crate::engine::exchange::stream::serve_stream`], which the
/// `sim-shard-worker` binary runs over pipes and sockets).
pub fn handle_frame(state: &mut ShardState, frame: &[u8]) -> Option<Vec<u8>> {
    let cmd = exchange::decode_command(frame);
    if matches!(cmd, Command::Stop) {
        return None;
    }
    Some(exchange::encode_reply(&state.handle(cmd)))
}

/// The channel-worker serve loop: pull [`Command`] *values*, dispatch
/// through [`ShardState::handle`], push [`Reply`] values — until a `Stop`
/// command or the input closes.
///
/// Unlike the byte-stream loop ([`handle_frame`] via
/// [`crate::engine::exchange::stream::serve_stream`]), no command/reply
/// codec runs here: in-process workers share the driver's address space,
/// so bundle `Bytes` inside commands and replies move as refcounted
/// clones instead of being re-encoded into per-shard frame copies. The
/// bundles themselves stay wire-encoded (shards produce and consume them
/// through the same codec on every transport), so byte-level parity with
/// the process and socket transports is untouched.
pub fn serve(
    state: &mut ShardState,
    mut next: impl FnMut() -> Option<Command>,
    mut send: impl FnMut(Reply),
) {
    while let Some(cmd) = next() {
        if matches!(cmd, Command::Stop) {
            return;
        }
        send(state.handle(cmd));
    }
}
