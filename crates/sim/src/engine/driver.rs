//! The simulation driver: owns the run-level state (records, counters,
//! oracle, schedule), orchestrates the phase round-trips against any
//! [`ShardTransport`], and exposes the public [`Simulation`] API.
//!
//! The driver never touches node state directly during a cycle — every
//! phase is a command to the shards and a fold of their replies, in shard
//! order (= node-id order, since shard ranges are contiguous ascending).
//! That is what lets the same `run_cycle` drive the inline single-shard
//! path, the in-process channel workers, the `sim-shard-worker` child
//! processes and remote socket workers to bit-identical reports.

use crate::config::{Protocol, SimConfig};
use crate::engine::exchange::{
    Command, NewsOutcome, Outbound, ProcessTransport, Reply, ShardTransport, SocketTransport,
    SupervisedTransport, Supervision, TransportError,
};
use crate::engine::partition::Partition;
use crate::engine::shard::{self, ShardInit, ShardState};
use crate::engine::{node_stream, ChannelTransport};
use crate::oracle::Oracle;
use crate::record::{ItemRecord, NodeIr, SimReport};
use crate::scenario::{Event, Scenario, WindowSpec};
use bytes::Bytes;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use whatsup_core::{NewsItem, NodeId, Opinions, Params, Profile, WhatsUpNode};
use whatsup_datasets::Dataset;
use whatsup_graph::Graph;
use whatsup_metrics::{CycleSeries, CycleStats};

/// Driver-side run state: everything that is not node state.
pub(crate) struct DriverCore {
    protocol: Protocol,
    cfg: SimConfig,
    scenario: Scenario,
    params: Params,
    dataset_name: String,
    items: Vec<NewsItem>,
    /// Cached content hashes of `items` (hashing is string-heavy).
    item_ids: Vec<whatsup_core::ItemId>,
    sources: Vec<NodeId>,
    /// cycle → dataset item indices published that cycle. Also serves the
    /// windowed ground-truth lookups (O(window), not O(items)).
    published_at_cycle: Vec<Vec<u32>>,
    oracle: Oracle,
    records: Vec<ItemRecord>,
    /// Driving-thread RNG for bootstrap and the interactive mutators; the
    /// cycle phases use [`node_stream`] exclusively.
    rng: ChaCha8Rng,
    cycle: u32,
    gossip_messages: u64,
    news_messages_all: u64,
    news_messages_measured: u64,
    /// Liked first receptions per node during the current cycle (Fig. 7c).
    liked_this_cycle: Vec<u32>,
    /// Per-node delivery counters over measured items (Fig. 11).
    per_node: Vec<NodeIr>,
    /// The current cycle's counters, accumulated from the phase replies
    /// the driver already folds (route totals, churn resets, reception
    /// outcomes) and flushed into `series` at the end of every cycle — no
    /// dedicated counter round-trip. Lives on the core (not `run_cycle`)
    /// so interactive mutators between cycles land in the next flush.
    cycle_stats: CycleStats,
    /// Per-cycle measurement series (empty when `cfg.collect_series` is
    /// off).
    series: CycleSeries,
    partition: Partition,
}

impl DriverCore {
    fn into_report(self) -> SimReport {
        let mut report = SimReport {
            protocol: self.protocol.label(),
            dataset: self.dataset_name,
            fanout: self.protocol.fanout(),
            n_nodes: self.partition.total(),
            cycles: self.cycle,
            items: self.records,
            per_node: self.per_node,
            news_messages: self.news_messages_measured,
            news_messages_all: self.news_messages_all,
            gossip_messages: self.gossip_messages,
            series: self.series,
            windows: Vec::new(),
        };
        // Resolve the scenario's measurement windows against the finished
        // series: anchors were validated at build time, so a recovery
        // window that cannot resolve here is a bug, not bad input.
        report.windows = self
            .scenario
            .measurements
            .iter()
            .map(|m| {
                let (from, until, recovery) = match &m.window {
                    WindowSpec::Cycles { from, until } => {
                        (*from, (*until).min(report.cycles), None)
                    }
                    WindowSpec::Recovery { anchor, baseline } => {
                        let at = anchor
                            .resolve(&self.scenario)
                            .expect("anchor validated against the scenario");
                        let recovery = report.series.recovery(at, *baseline);
                        let until = recovery
                            .and_then(|r| r.recovered_at)
                            .map(|c| c + 1)
                            .unwrap_or(report.cycles);
                        (at, until, recovery)
                    }
                };
                report.window_report(&m.name, from, until, recovery)
            })
            .collect();
        report
    }
}

/// The per-shard node counts a run over `n` nodes with `requested` shards
/// (0 = auto) and `scenario` will *end* with: the load-aware initial
/// split, plus every scheduled join on the last shard. Run-summary
/// instrumentation for the CLI — the engine computes the same partition
/// in `build`, and the counts never appear in [`SimReport`] (which must
/// stay byte-identical across shard counts).
pub fn planned_shard_node_counts(n: usize, requested: usize, scenario: &Scenario) -> Vec<usize> {
    let joins = scenario.expected_joins();
    let partition = Partition::plan(n, resolve_shards(requested, n), joins);
    let mut counts: Vec<usize> = (0..partition.n_shards())
        .map(|s| partition.range(s).len())
        .collect();
    *counts.last_mut().expect("at least one shard") += joins;
    counts
}

/// Resolves the configured shard count: `0` = one per available core,
/// always clamped to the population size.
fn resolve_shards(requested: usize, n: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let s = if requested == 0 { auto } else { requested };
    s.clamp(1, n)
}

/// Builds the driver core and one init per shard from `(dataset, protocol,
/// config, scenario)` — shared by the in-process constructor and the
/// multi-process runner so both start from identical state. `force_store`
/// overrides the oracle's dense/sparse byte-cost choice (`Some(true)` =
/// CSR, `Some(false)` = bit-plane); the equivalence property tests use it
/// to pin both representations to the same reports.
fn build(
    dataset: &Dataset,
    protocol: Protocol,
    cfg: SimConfig,
    scenario: Scenario,
    force_store: Option<bool>,
) -> (DriverCore, Vec<ShardInit>) {
    cfg.validate().expect("invalid simulation config");
    scenario.validate(&cfg).expect("invalid scenario");
    let params = cfg
        .build_params(&protocol)
        .expect("protocol does not run on the node engine");
    let n = dataset.n_users();
    assert!(n > 0, "dataset has no users");
    scenario.validate_events(n).expect("invalid scenario");
    let topics: Vec<u32> = dataset.items.iter().map(|spec| spec.topic).collect();
    let item_cycles = scenario.workload.schedule(&cfg, &topics);
    let mut schedule = vec![Vec::new(); cfg.cycles as usize];
    let mut items = Vec::with_capacity(dataset.n_items());
    let mut sources = Vec::with_capacity(dataset.n_items());
    let mut id_to_index = crate::oracle::ItemIndexMap::with_capacity_and_hasher(
        dataset.n_items(),
        Default::default(),
    );
    for spec in &dataset.items {
        let cycle = item_cycles[spec.index as usize];
        let item = NewsItem::new(
            format!("{}-news-{}", dataset.name, spec.index),
            format!("topic-{}", spec.topic),
            format!("https://news.example/{}/{}", dataset.name, spec.index),
            spec.source,
            cycle,
        );
        id_to_index.insert(item.id(), spec.index);
        schedule[cycle as usize].push(spec.index);
        items.push(item);
        sources.push(spec.source);
    }
    assert_eq!(id_to_index.len(), items.len(), "item id (hash) collision");
    let item_ids: Vec<whatsup_core::ItemId> = items.iter().map(|i| i.id()).collect();
    let oracle = match force_store {
        None => Oracle::new(dataset.likes.clone(), id_to_index),
        Some(sparse) => Oracle::new_forced(dataset.likes.clone(), id_to_index, sparse),
    };

    // Bootstrap: every node learns `bootstrap_degree` distinct random
    // contacts (empty profiles), split across both layers, as a stand-in
    // for the paper's bootstrap server. Partial Fisher–Yates over the
    // other `n - 1` ids; drawn here so the engine RNG stays on the driving
    // thread and the contact lists are shard-independent.
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let take = cfg.bootstrap_degree.min(n - 1);
    let mut bootstrap: Vec<Vec<NodeId>> = Vec::with_capacity(n);
    for id in 0..n {
        let contacts: Vec<NodeId> = rand::seq::index::sample(&mut rng, n - 1, take)
            .into_iter()
            // Skip over `id` itself: [0, n-1) minus {id} ≅ shift ≥ id.
            .map(|c| if c >= id { c + 1 } else { c } as NodeId)
            .collect();
        bootstrap.push(contacts);
    }

    let records = dataset
        .items
        .iter()
        .map(|spec| ItemRecord {
            index: spec.index,
            published_at: item_cycles[spec.index as usize],
            measured: item_cycles[spec.index as usize] >= cfg.measure_from,
            ..ItemRecord::default()
        })
        .collect();

    // Load-aware split: the last shard absorbs every scheduled join, so
    // plan its initial range against the final population. Boundaries
    // never affect results — any contiguous split is bit-identical.
    let partition = Partition::plan(n, resolve_shards(cfg.shards, n), scenario.expected_joins());
    let inits = (0..partition.n_shards())
        .map(|s| ShardInit {
            index: s,
            partition: partition.clone(),
            seed: cfg.seed,
            loss: scenario.environment.loss,
            churn: scenario.environment.churn,
            params: params.clone(),
            oracle: oracle.clone(),
            bootstrap: partition
                .range(s)
                .map(|id| bootstrap[id as usize].clone())
                .collect(),
        })
        .collect();

    let core = DriverCore {
        protocol,
        cfg,
        scenario,
        params,
        dataset_name: dataset.name.clone(),
        items,
        item_ids,
        sources,
        published_at_cycle: schedule,
        oracle,
        records,
        rng,
        cycle: 0,
        gossip_messages: 0,
        news_messages_all: 0,
        news_messages_measured: 0,
        liked_this_cycle: vec![0; n],
        per_node: vec![NodeIr::default(); n],
        cycle_stats: CycleStats::default(),
        series: CycleSeries::new(),
        partition,
    };
    (core, inits)
}

fn expect_outbound(replies: Vec<Reply>) -> Vec<Outbound> {
    replies
        .into_iter()
        .map(|r| match r {
            Reply::Outbound(o) => o,
            other => panic!("expected Outbound, got {other:?}"),
        })
        .collect()
}

/// The bundles destined for `dest`, one per source shard in shard order.
fn bundles_for(outs: &[Outbound], dest: usize) -> Vec<Bytes> {
    outs.iter().map(|o| o.bundles[dest].clone()).collect()
}

/// Fetches one node's view snapshot from its owning shard.
fn fetch_snapshot(
    core: &DriverCore,
    t: &mut impl ShardTransport,
    id: NodeId,
) -> Result<Bytes, TransportError> {
    let owner = core.partition.shard_of(id);
    let reply = t
        .roundtrip(vec![(owner, Command::TakeSnapshots { ids: vec![id] })])?
        .pop()
        .expect("one snapshot reply");
    let Reply::Snapshots(mut frames) = reply else {
        panic!("expected Snapshots");
    };
    Ok(frames.pop().expect("one snapshot frame"))
}

/// Admits a node cloning `reference`'s interests: cold start from a random
/// contact's views (drawn from the driver RNG), state built on the owning
/// (last) shard. Returns the joiner's id.
fn join_clone(
    core: &mut DriverCore,
    t: &mut impl ShardTransport,
    reference: NodeId,
) -> Result<NodeId, TransportError> {
    let contact = core.rng.gen_range(0..core.partition.total()) as NodeId;
    let snapshot = fetch_snapshot(core, t, contact)?;
    let id = core.oracle.add_clone_of(reference);
    core.partition.push_node();
    let last = t.n_shards() - 1;
    let batch = (0..t.n_shards())
        .map(|s| {
            (
                s,
                Command::Admit {
                    reference,
                    snapshot: (s == last).then(|| snapshot.clone()),
                },
            )
        })
        .collect();
    t.roundtrip(batch)?;
    core.liked_this_cycle.push(0);
    core.per_node.push(NodeIr::default());
    Ok(id)
}

/// Applies one timeline event through the transport (see the engine module
/// docs for when events fire and which RNG they draw from).
fn apply_event(
    core: &mut DriverCore,
    t: &mut impl ShardTransport,
    event: Event,
) -> Result<(), TransportError> {
    match event {
        Event::JoinClone { reference } => {
            join_clone(core, t, reference)?;
        }
        Event::SwapInterests { a, b } => {
            core.oracle.swap_interests(a, b);
            let batch = (0..t.n_shards())
                .map(|s| (s, Command::SwapInterests { a, b }))
                .collect();
            t.roundtrip(batch)?;
        }
        Event::ResetNode { node } => {
            let n = core.partition.total();
            assert!(n > 1, "a 1-node network has no rejoin contact");
            let contact = loop {
                let c = core.rng.gen_range(0..n);
                if c != node as usize {
                    break c;
                }
            } as NodeId;
            let snapshot = fetch_snapshot(core, t, contact)?;
            let owner = core.partition.shard_of(node);
            t.roundtrip(vec![(
                owner,
                Command::ApplyChurn {
                    resets: vec![(node, snapshot)],
                },
            )])?;
            core.cycle_stats.crashed += 1;
        }
    }
    Ok(())
}

/// Start-of-cycle scenario boundary: the churn model's mass-join arrivals,
/// then the timeline events stamped for this cycle, in list order.
fn apply_cycle_start(
    core: &mut DriverCore,
    t: &mut impl ShardTransport,
) -> Result<(), TransportError> {
    let cycle = core.cycle;
    for _ in 0..core.scenario.environment.churn.joins_at(cycle) {
        let reference = core.rng.gen_range(0..core.partition.total()) as NodeId;
        join_clone(core, t, reference)?;
    }
    let due: Vec<Event> = core
        .scenario
        .events
        .iter()
        .filter(|e| e.at == cycle)
        .map(|e| e.event)
        .collect();
    for event in due {
        apply_event(core, t, event)?;
    }
    Ok(())
}

/// Advances the run by one cycle over `t`: scenario events, gossip, churn,
/// publications.
fn run_cycle(core: &mut DriverCore, t: &mut impl ShardTransport) -> Result<(), TransportError> {
    apply_cycle_start(core, t)?;
    let cycle = core.cycle;
    let shards = t.n_shards();
    core.liked_this_cycle.iter_mut().for_each(|c| *c = 0);

    // --- Gossip phase: collect, then route/deliver until quiet ------------
    let mut outs = expect_outbound(
        t.roundtrip(
            (0..shards)
                .map(|s| (s, Command::Collect { cycle }))
                .collect(),
        )?,
    );
    loop {
        let sent: u64 = outs.iter().map(|o| o.sent).sum();
        if sent == 0 {
            break;
        }
        core.gossip_messages += sent;
        core.cycle_stats.gossip_sent += sent;
        let batch = (0..shards)
            .map(|dest| {
                (
                    dest,
                    Command::DeliverGossip {
                        cycle,
                        bundles: bundles_for(&outs, dest),
                    },
                )
            })
            .collect();
        outs = expect_outbound(t.roundtrip(batch)?);
    }

    // --- Churn phase ------------------------------------------------------
    // Decisions come from per-node CHURN streams on the shards; the driver
    // moves contact view snapshots (all taken from the pre-churn state, so
    // application order cannot matter) to the crashing shards.
    if core.scenario.environment.churn.crash_rate(cycle) > 0.0 && core.partition.total() > 1 {
        let decisions = t.roundtrip(
            (0..shards)
                .map(|s| (s, Command::ChurnDecide { cycle }))
                .collect(),
        )?;
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        for reply in decisions {
            let Reply::ChurnDecisions(p) = reply else {
                panic!("expected ChurnDecisions");
            };
            pairs.extend(p);
        }
        core.cycle_stats.crashed += pairs.len() as u64;
        if !pairs.is_empty() {
            let mut wanted: Vec<Vec<NodeId>> = vec![Vec::new(); shards];
            for &(_, contact) in &pairs {
                wanted[core.partition.shard_of(contact)].push(contact);
            }
            for w in &mut wanted {
                w.sort_unstable();
                w.dedup();
            }
            let batch: Vec<(usize, Command)> = wanted
                .iter()
                .enumerate()
                .filter(|(_, w)| !w.is_empty())
                .map(|(s, w)| (s, Command::TakeSnapshots { ids: w.clone() }))
                .collect();
            let targets: Vec<usize> = batch.iter().map(|(s, _)| *s).collect();
            let replies = t.roundtrip(batch)?;
            let mut snapshots: BTreeMap<NodeId, Bytes> = BTreeMap::new();
            for (s, reply) in targets.into_iter().zip(replies) {
                let Reply::Snapshots(frames) = reply else {
                    panic!("expected Snapshots");
                };
                for (&id, frame) in wanted[s].iter().zip(frames) {
                    snapshots.insert(id, frame);
                }
            }
            let mut resets: Vec<Vec<(NodeId, Bytes)>> = vec![Vec::new(); shards];
            for (node, contact) in pairs {
                resets[core.partition.shard_of(node)].push((node, snapshots[&contact].clone()));
            }
            let batch: Vec<(usize, Command)> = resets
                .into_iter()
                .enumerate()
                .filter(|(_, r)| !r.is_empty())
                .map(|(s, r)| (s, Command::ApplyChurn { resets: r }))
                .collect();
            t.roundtrip(batch)?;
        }
    }

    // --- Publication phase ------------------------------------------------
    if !core.published_at_cycle[cycle as usize].is_empty() {
        t.roundtrip((0..shards).map(|s| (s, Command::BeginNews)).collect())?;
    }
    for k in 0..core.published_at_cycle[cycle as usize].len() {
        let index = core.published_at_cycle[cycle as usize][k];
        disseminate(core, t, index, cycle)?;
    }

    // --- Measurement flush -------------------------------------------------
    // The counters were accumulated from the phase replies this cycle
    // already produced (integer sums in a fixed fold order), so the series
    // stays bit-identical across shard counts and transports without a
    // dedicated end-of-cycle counter round-trip (see the engine module
    // docs' "measurement pipeline").
    let mut stats = std::mem::take(&mut core.cycle_stats);
    stats.live_nodes = core.partition.total() as u64;
    if core.cfg.collect_series {
        core.series.push(stats);
    }
    // Cycle boundary: mailboxes are provably drained here, which is what
    // lets the supervised transports checkpoint shard state without any
    // in-flight mail (plain transports no-op).
    t.cycle_boundary(cycle)?;
    core.cycle += 1;
    Ok(())
}

/// Publishes one item and runs its epidemic to completion as a BFS: every
/// copy at hop distance `h` is delivered before any copy at `h + 1`;
/// outcome folds happen in receiver order.
fn disseminate(
    core: &mut DriverCore,
    t: &mut impl ShardTransport,
    index: u32,
    cycle: u32,
) -> Result<(), TransportError> {
    let shards = t.n_shards();
    let source = core.sources[index as usize];
    let item = core.items[index as usize].clone();
    let item_id = core.item_ids[index as usize];
    let measured = core.records[index as usize].measured;

    // Ground truth at publication (excluding the source).
    let interested: Vec<NodeId> = core
        .oracle
        .interested(index)
        .into_iter()
        .filter(|&u| u != source)
        .collect();
    core.records[index as usize].interested = interested.len() as u32;
    core.cycle_stats.interested += interested.len() as u64;
    if measured {
        for &u in &interested {
            core.per_node[u as usize].interested += 1;
        }
    }

    let owner = core.partition.shard_of(source);
    let reply = t
        .roundtrip(vec![(owner, Command::Publish { cycle, item })])?
        .pop()
        .expect("one publish reply");
    let Reply::Published {
        first_forward_hop,
        out,
    } = reply
    else {
        panic!("expected Published");
    };
    // Fig. 6 forwarding record for the source's own publication.
    if let Some(hop) = first_forward_hop {
        let liked = core.oracle.likes(source, item_id);
        core.records[index as usize].forward_hops.push((hop, liked));
    }

    let mut outs: Vec<Outbound> = (0..shards).map(|_| Outbound::empty(shards)).collect();
    outs[owner] = out;
    loop {
        let sent: u64 = outs.iter().map(|o| o.sent).sum();
        if sent == 0 {
            break;
        }
        core.records[index as usize].news_sent += sent;
        core.news_messages_all += sent;
        core.cycle_stats.news_sent += sent;
        if measured {
            core.news_messages_measured += sent;
        }
        // Sparse BFS tails leave most shards with no inbound mail at all
        // (no bundle addressed to them, nothing in their pending queue).
        // Skipping their round-trip cannot change any mailbox: a skipped
        // shard would merge nothing, drain nothing and emit nothing.
        let active: Vec<usize> = (0..shards)
            .filter(|&dest| {
                outs[dest].local > 0 || outs.iter().any(|o| !o.bundles[dest].is_empty())
            })
            .collect();
        let batch = active
            .iter()
            .map(|&dest| {
                (
                    dest,
                    Command::DeliverNews {
                        cycle,
                        item: item_id,
                        bundles: bundles_for(&outs, dest),
                    },
                )
            })
            .collect();
        let replies = t.roundtrip(batch)?;
        let mut next_outs: Vec<Outbound> = (0..shards).map(|_| Outbound::empty(shards)).collect();
        for (&dest, reply) in active.iter().zip(replies) {
            let Reply::NewsDelivered { out, outcomes } = reply else {
                panic!("expected NewsDelivered");
            };
            fold_outcomes(core, index, measured, &outcomes);
            next_outs[dest] = out;
        }
        outs = next_outs;
    }
    Ok(())
}

/// Folds one shard's per-receiver outcomes into the shared records
/// (receivers arrive in ascending order, shards fold in shard order).
fn fold_outcomes(core: &mut DriverCore, index: u32, measured: bool, outcomes: &[NewsOutcome]) {
    for o in outcomes {
        let to = o.receiver as usize;
        if let Some(first) = o.first {
            let rec = &mut core.records[index as usize];
            rec.reached += 1;
            rec.infection_hops.push((first.hop, first.sender_liked));
            core.cycle_stats.first_receptions += 1;
            if measured {
                core.per_node[to].received += 1;
            }
            if first.receiver_likes {
                rec.hits += 1;
                core.cycle_stats.hits += 1;
                rec.dislikes_at_liked_reception.push(first.dislikes);
                core.liked_this_cycle[to] += 1;
                if measured {
                    core.per_node[to].hits += 1;
                }
            }
        }
        if let Some((hop, liked)) = o.forward {
            core.records[index as usize].forward_hops.push((hop, liked));
        }
    }
}

/// Single-shard fast path: drive the shard in place, no serialization.
struct InlineTransport<'a> {
    shards: &'a mut [ShardState],
}

impl ShardTransport for InlineTransport<'_> {
    fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn roundtrip(&mut self, batch: Vec<(usize, Command)>) -> Result<Vec<Reply>, TransportError> {
        Ok(batch
            .into_iter()
            .map(|(s, cmd)| self.shards[s].handle(cmd))
            .collect())
    }
}

/// Runs every remaining cycle of `core` over `t`.
fn drive(core: &mut DriverCore, t: &mut impl ShardTransport) -> Result<(), TransportError> {
    while core.cycle < core.cfg.cycles {
        run_cycle(core, t)?;
    }
    Ok(())
}

/// A running simulation of one node-based protocol over one dataset.
pub struct Simulation {
    core: DriverCore,
    shards: Vec<ShardState>,
}

impl Simulation {
    /// Builds a simulation with `cfg.shards` in-process shards under the
    /// legacy scenario the config describes (uniform publications, constant
    /// loss, uniform churn). Prefer routing through [`crate::Runner`] —
    /// this constructor is the engine-internal entry point.
    ///
    /// # Panics
    /// Panics if `protocol` is one of the global engines (cascade, pub/sub,
    /// centralized — use [`crate::Runner`] or
    /// [`crate::engines::run_protocol`]) or if the config is invalid.
    pub fn new(dataset: &Dataset, protocol: Protocol, cfg: SimConfig) -> Self {
        let scenario = Scenario::from_config(&cfg);
        Self::with_scenario(dataset, protocol, cfg, scenario)
    }

    /// Builds a simulation running `scenario` (the scenario's environment
    /// replaces the config's `loss`/`churn_per_cycle` knobs).
    pub(crate) fn with_scenario(
        dataset: &Dataset,
        protocol: Protocol,
        cfg: SimConfig,
        scenario: Scenario,
    ) -> Self {
        let (core, inits) = build(dataset, protocol, cfg, scenario, None);
        let shards = inits.into_iter().map(ShardState::from_init).collect();
        Self { core, shards }
    }

    /// [`Simulation::new`] with the oracle's dense/sparse representation
    /// forced (`true` = CSR, `false` = bit-plane) instead of chosen by
    /// byte cost. Test hook for the representation-equivalence properties;
    /// reports must be byte-identical either way.
    #[doc(hidden)]
    pub fn new_with_forced_store(
        dataset: &Dataset,
        protocol: Protocol,
        cfg: SimConfig,
        sparse: bool,
    ) -> Self {
        let scenario = Scenario::from_config(&cfg);
        let (core, inits) = build(dataset, protocol, cfg, scenario, Some(sparse));
        let shards = inits.into_iter().map(ShardState::from_init).collect();
        Self { core, shards }
    }

    /// Builds and runs the whole simulation on child worker processes (one
    /// `sim-shard-worker` per shard, mailbox bundles over stdio pipes).
    /// Bit-identical to the in-process engine for the same config.
    pub fn run_multiprocess(
        dataset: &Dataset,
        protocol: Protocol,
        cfg: SimConfig,
        worker: &Path,
    ) -> io::Result<SimReport> {
        let scenario = Scenario::from_config(&cfg);
        Self::run_multiprocess_scenario(dataset, protocol, cfg, scenario, worker, None)
    }

    /// [`Simulation::run_multiprocess`] under an explicit scenario. Events
    /// flow to the workers as phase commands, so the full scenario grammar
    /// works across process boundaries. With `supervision`, crashed
    /// children are respawned and recovered by checkpoint/replay instead
    /// of failing the run (see [`SupervisedTransport`]).
    pub(crate) fn run_multiprocess_scenario(
        dataset: &Dataset,
        protocol: Protocol,
        cfg: SimConfig,
        scenario: Scenario,
        worker: &Path,
        supervision: Option<Supervision>,
    ) -> io::Result<SimReport> {
        let (mut core, inits) = build(dataset, protocol, cfg, scenario, None);
        // On any error, dropping the transport stops + reaps the children.
        let transport = ProcessTransport::spawn(worker, &inits)?;
        match supervision {
            None => {
                let mut t = transport;
                drive(&mut core, &mut t)?;
                t.shutdown()?;
            }
            Some(sup) => {
                let mut t = SupervisedTransport::new(transport, sup);
                drive(&mut core, &mut t)?;
                let restarts = t.restarts_used();
                t.shutdown()?;
                if restarts > 0 {
                    eprintln!("supervisor: recovered {restarts} worker restart(s)");
                }
            }
        }
        Ok(core.into_report())
    }

    /// Builds and runs the whole simulation on already-listening
    /// `sim-shard-worker --listen` processes, one per `workers` address
    /// (shard `k` goes to `workers[k]`; the shard count *is* the worker
    /// count, overriding `cfg.shards`). Bit-identical to the in-process
    /// engine for the same config.
    pub fn run_socket(
        dataset: &Dataset,
        protocol: Protocol,
        cfg: SimConfig,
        workers: &[String],
    ) -> io::Result<SimReport> {
        let scenario = Scenario::from_config(&cfg);
        Self::run_socket_scenario(dataset, protocol, cfg, scenario, workers, None)
    }

    /// [`Simulation::run_socket`] under an explicit scenario. With
    /// `supervision`, crashed or hung workers are redialed (a replacement
    /// listener must take over the address) and recovered by
    /// checkpoint/replay instead of failing the run.
    pub(crate) fn run_socket_scenario(
        dataset: &Dataset,
        protocol: Protocol,
        mut cfg: SimConfig,
        scenario: Scenario,
        workers: &[String],
        supervision: Option<Supervision>,
    ) -> io::Result<SimReport> {
        if workers.is_empty() {
            return Err(io::Error::other(
                "socket transport needs at least one worker address",
            ));
        }
        if workers.len() > dataset.n_users() {
            return Err(io::Error::other(format!(
                "{} socket workers for {} nodes — shards cannot outnumber nodes",
                workers.len(),
                dataset.n_users()
            )));
        }
        cfg.shards = workers.len();
        let (mut core, inits) = build(dataset, protocol, cfg, scenario, None);
        // On any error, dropping the transport sends Stop and closes the
        // connections, so the remote workers exit instead of lingering.
        match supervision {
            None => {
                let mut t = SocketTransport::connect(workers, &inits)?;
                drive(&mut core, &mut t)?;
                t.shutdown()?;
            }
            Some(sup) => {
                let socket = SocketTransport::connect_with(workers, &inits, sup.dial_window)?;
                let mut t = SupervisedTransport::new(socket, sup);
                drive(&mut core, &mut t)?;
                let restarts = t.restarts_used();
                t.shutdown()?;
                if restarts > 0 {
                    eprintln!("supervisor: recovered {restarts} worker restart(s)");
                }
            }
        }
        Ok(core.into_report())
    }

    pub fn protocol(&self) -> Protocol {
        self.core.protocol
    }

    pub fn current_cycle(&self) -> u32 {
        self.core.cycle
    }

    pub fn n_nodes(&self) -> usize {
        self.core.partition.total()
    }

    /// Number of engine shards this simulation runs on.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Nodes currently owned by each shard, in shard order. Run-summary
    /// instrumentation (the CLI prints it next to peak RSS) — deliberately
    /// *not* part of [`SimReport`], which must stay byte-identical across
    /// shard counts.
    pub fn shard_node_counts(&self) -> Vec<usize> {
        (0..self.shards.len())
            .map(|s| self.core.partition.range(s).len())
            .collect()
    }

    /// Aggregated per-component heap accounting across shards
    /// (diagnostics; see `ShardState::memory_breakdown`).
    #[doc(hidden)]
    pub fn memory_breakdown(&self) -> Vec<(&'static str, usize)> {
        let mut totals: Vec<(&'static str, usize)> = Vec::new();
        for shard in &self.shards {
            for (name, bytes) in shard.memory_breakdown() {
                match totals.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, t)) => *t += bytes,
                    None => totals.push((name, bytes)),
                }
            }
        }
        let core = &self.core;
        let records: usize = core
            .records
            .iter()
            .map(|r| {
                std::mem::size_of::<ItemRecord>()
                    + r.dislikes_at_liked_reception.capacity()
                    + (r.forward_hops.capacity() + r.infection_hops.capacity())
                        * std::mem::size_of::<(u16, bool)>()
            })
            .sum();
        totals.push(("item records", records));
        totals.push((
            "driver per-node",
            core.per_node.capacity() * std::mem::size_of::<NodeIr>()
                + core.liked_this_cycle.capacity() * 4,
        ));
        totals
    }

    pub fn oracle(&self) -> &Oracle {
        &self.core.oracle
    }

    pub fn node(&self, id: NodeId) -> &WhatsUpNode {
        self.shards[self.core.partition.shard_of(id)].node(id)
    }

    /// Liked first receptions per node during the last completed cycle.
    pub fn liked_receptions_last_cycle(&self, id: NodeId) -> u32 {
        self.core.liked_this_cycle[id as usize]
    }

    /// The per-node RNG stream this simulation uses for `(node, cycle,
    /// phase)` — exposed so tests can assert stream stability.
    pub fn stream_for(&self, node: NodeId, cycle: u32, phase: u8) -> ChaCha8Rng {
        node_stream(self.core.cfg.seed, node, cycle, phase)
    }

    /// Runs all remaining cycles and reports.
    pub fn run(mut self) -> SimReport {
        while self.core.cycle < self.core.cfg.cycles {
            self.step();
        }
        self.into_report()
    }

    /// Advances one cycle: gossip phase, churn, then publications. With one
    /// shard the phases run inline; with more, each shard runs on its own
    /// scoped worker thread and the phases exchange serialized bundles over
    /// channels.
    pub fn step(&mut self) {
        assert!(
            self.core.cycle < self.core.cfg.cycles,
            "simulation already finished"
        );
        let core = &mut self.core;
        let states = &mut self.shards;
        if states.len() == 1 {
            run_cycle(core, &mut InlineTransport { shards: states })
                .expect("inline transport cannot fail");
        } else {
            std::thread::scope(|scope| {
                let mut to = Vec::with_capacity(states.len());
                let mut from = Vec::with_capacity(states.len());
                for state in states.iter_mut() {
                    let (cmd_tx, cmd_rx) = crossbeam::channel::unbounded::<Command>();
                    let (rep_tx, rep_rx) = crossbeam::channel::unbounded::<Reply>();
                    scope.spawn(move || {
                        shard::serve(
                            state,
                            || cmd_rx.recv().ok(),
                            |reply| {
                                let _ = rep_tx.send(reply);
                            },
                        )
                    });
                    to.push(cmd_tx);
                    from.push(rep_rx);
                }
                let mut transport = ChannelTransport::new(to, from);
                // A channel failure means a shard thread panicked; the
                // scope re-raises that panic when it joins, so this
                // expect only adds context.
                run_cycle(core, &mut transport).expect("shard worker thread failed");
                transport.stop();
            });
        }
    }

    /// Crashes `id` and rejoins it fresh (cold start from a random contact
    /// drawn from the engine RNG). Equivalent to a
    /// [`crate::scenario::Event::ResetNode`] timeline event.
    pub fn reset_node(&mut self, id: NodeId) {
        apply_event(
            &mut self.core,
            &mut InlineTransport {
                shards: &mut self.shards,
            },
            Event::ResetNode { node: id },
        )
        .expect("inline transport cannot fail");
    }

    /// Registers a node joining mid-run (§V-C): interests mirror
    /// `reference`, views inherited from a random contact, cold-start
    /// profile from the contact's RPS view (§II-D). The node joins the last
    /// shard; every shard's oracle copy and partition stay in lockstep.
    /// Equivalent to a [`crate::scenario::Event::JoinClone`] timeline event.
    pub fn add_joining_node(&mut self, reference: NodeId) -> NodeId {
        join_clone(
            &mut self.core,
            &mut InlineTransport {
                shards: &mut self.shards,
            },
            reference,
        )
        .expect("inline transport cannot fail")
    }

    /// Swaps the ground-truth interests of two nodes (§V-C). Equivalent to
    /// a [`crate::scenario::Event::SwapInterests`] timeline event.
    pub fn swap_interests(&mut self, a: NodeId, b: NodeId) {
        apply_event(
            &mut self.core,
            &mut InlineTransport {
                shards: &mut self.shards,
            },
            Event::SwapInterests { a, b },
        )
        .expect("inline transport cannot fail");
    }

    /// Mean live similarity between `id`'s profile and the *current*
    /// profiles of its WUP view members.
    pub fn live_view_similarity(&self, id: NodeId) -> f64 {
        self.view_similarity_against(id, self.node(id).profile())
    }

    /// Fig. 7's y-axis: mean similarity between `id`'s *ground-truth
    /// interest profile* (its opinions on the items of the current profile
    /// window) and the live profiles of its WUP view members. Using the
    /// ground truth rather than the node's own lagging profile makes an
    /// interest switch visible immediately: the old view scores poorly for
    /// the new interests until WUP rebuilds it.
    pub fn interest_view_similarity(&self, id: NodeId) -> f64 {
        let gt = self.ground_truth_profile(id);
        self.view_similarity_against(id, &gt)
    }

    /// The windowed ground-truth profile of a node: its true opinion on
    /// every item published within the current profile window. Uses the
    /// per-cycle publication index, so the scan is O(window · items/cycle),
    /// not O(total items).
    pub fn ground_truth_profile(&self, id: NodeId) -> Profile {
        let window = self.core.params.profile_window;
        let now = self.core.cycle;
        let cutoff = now.saturating_sub(window);
        let last = now.min(self.core.published_at_cycle.len() as u32);
        Profile::from_entries((cutoff..last).flat_map(|cycle| {
            self.core.published_at_cycle[cycle as usize]
                .iter()
                .map(move |&index| {
                    let liked = self.core.oracle.likes_index(id, index);
                    whatsup_core::ProfileEntry {
                        item: self.core.item_ids[index as usize],
                        timestamp: cycle,
                        score: if liked { 1.0 } else { 0.0 },
                    }
                })
        }))
    }

    fn view_similarity_against(&self, id: NodeId, reference: &Profile) -> f64 {
        let node = self.node(id);
        let metric = node.params().metric;
        let neighbors = node.wup_neighbor_ids();
        if neighbors.is_empty() {
            return 0.0;
        }
        let sum: f64 = neighbors
            .iter()
            .map(|&nb| metric.score(reference, self.node(nb).profile()))
            .sum();
        sum / neighbors.len() as f64
    }

    /// The current WUP overlay as a directed graph (Fig. 4 analyses).
    pub fn wup_overlay(&self) -> Graph {
        let n = self.core.partition.total();
        let mut g = Graph::new(n);
        for shard in &self.shards {
            for node in shard.nodes() {
                for v in node.wup_neighbor_ids() {
                    if (v as usize) < n {
                        g.add_edge(node.id(), v);
                    }
                }
            }
        }
        g
    }

    /// Report for the cycles executed so far, consuming the simulation (the
    /// records move — nothing is cloned).
    pub fn into_report(self) -> SimReport {
        self.core.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_datasets::{survey, SurveyConfig};

    fn tiny_dataset() -> Dataset {
        survey::generate(&SurveyConfig::paper().scaled(0.12), 42)
    }

    fn quick_cfg() -> SimConfig {
        SimConfig {
            cycles: 20,
            publish_from: 2,
            measure_from: 8,
            ..Default::default()
        }
    }

    #[test]
    fn whatsup_run_produces_sane_report() {
        let d = tiny_dataset();
        let sim = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg());
        let report = sim.run();
        assert_eq!(report.n_nodes, d.n_users());
        assert!(report.measured_items() > 0);
        let s = report.scores();
        assert!(s.recall > 0.2, "recall collapsed: {s:?}");
        assert!(s.precision > 0.2, "precision collapsed: {s:?}");
        assert!(report.news_messages > 0);
        assert!(report.gossip_messages > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = tiny_dataset();
        let r1 = Simulation::new(&d, Protocol::WhatsUp { f_like: 4 }, quick_cfg()).run();
        let r2 = Simulation::new(&d, Protocol::WhatsUp { f_like: 4 }, quick_cfg()).run();
        assert_eq!(r1.scores(), r2.scores());
        assert_eq!(r1.news_messages, r2.news_messages);
        assert_eq!(r1.gossip_messages, r2.gossip_messages);
        assert_eq!(r1, r2, "full reports must be bit-identical");
    }

    #[test]
    fn sharded_run_matches_single_shard() {
        let d = tiny_dataset();
        let single = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg()).run();
        for shards in [2usize, 3] {
            let cfg = SimConfig {
                shards,
                ..quick_cfg()
            };
            let sim = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, cfg);
            assert_eq!(sim.n_shards(), shards);
            let sharded = sim.run();
            assert_eq!(single, sharded, "{shards} shards diverged");
        }
    }

    #[test]
    fn shard_count_is_clamped_to_population() {
        let d = tiny_dataset();
        let cfg = SimConfig {
            shards: 10_000_000,
            ..quick_cfg()
        };
        let sim = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, cfg);
        assert_eq!(sim.n_shards(), d.n_users());
    }

    #[test]
    fn gossip_floods_with_high_recall_low_precision() {
        let d = tiny_dataset();
        let gossip = Simulation::new(&d, Protocol::Gossip { fanout: 5 }, quick_cfg()).run();
        let s = gossip.scores();
        assert!(s.recall > 0.9, "homogeneous gossip must flood: {s:?}");
        // Flooding precision ≈ mean like rate (well below 0.6).
        assert!(s.precision < 0.6, "flooding precision too high: {s:?}");
    }

    #[test]
    fn whatsup_beats_gossip_precision_at_same_fanout() {
        let d = tiny_dataset();
        let wu = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg()).run();
        let go = Simulation::new(&d, Protocol::Gossip { fanout: 5 }, quick_cfg()).run();
        assert!(
            wu.scores().precision > go.scores().precision,
            "whatsup {:?} vs gossip {:?}",
            wu.scores(),
            go.scores()
        );
    }

    #[test]
    fn loss_degrades_recall() {
        let d = tiny_dataset();
        let clean = Simulation::new(&d, Protocol::WhatsUp { f_like: 3 }, quick_cfg()).run();
        let lossy_cfg = SimConfig {
            loss: 0.5,
            ..quick_cfg()
        };
        let lossy = Simulation::new(&d, Protocol::WhatsUp { f_like: 3 }, lossy_cfg).run();
        assert!(
            lossy.scores().recall < clean.scores().recall,
            "50% loss must hurt recall: clean {:?} lossy {:?}",
            clean.scores(),
            lossy.scores()
        );
    }

    #[test]
    fn dislike_counters_stay_within_ttl() {
        let d = tiny_dataset();
        let report = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg()).run();
        let dist = report.dislike_distribution(4);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for r in &report.items {
            assert!(r.dislikes_at_liked_reception.iter().all(|&x| x <= 4));
        }
    }

    #[test]
    fn overlay_graph_has_out_degree_bounded_by_view() {
        let d = tiny_dataset();
        let mut sim = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg());
        for _ in 0..10 {
            sim.step();
        }
        let g = sim.wup_overlay();
        assert_eq!(g.len(), d.n_users());
        for u in 0..g.len() as u32 {
            assert!(g.out_degree(u) <= 10, "view size bound violated");
        }
    }

    #[test]
    fn joining_node_integrates() {
        let d = tiny_dataset();
        let mut sim = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, quick_cfg());
        for _ in 0..6 {
            sim.step();
        }
        let joiner = sim.add_joining_node(0);
        assert_eq!(joiner as usize, d.n_users());
        for _ in 6..quick_cfg().cycles as usize {
            sim.step();
        }
        // The joiner must have acquired neighbors and a profile.
        assert!(!sim.node(joiner).wup_neighbor_ids().is_empty());
        assert!(sim.live_view_similarity(joiner) >= 0.0);
    }

    #[test]
    fn joining_node_integrates_on_sharded_engine() {
        let d = tiny_dataset();
        let cfg = SimConfig {
            shards: 3,
            ..quick_cfg()
        };
        let mut sim = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, cfg);
        for _ in 0..6 {
            sim.step();
        }
        let joiner = sim.add_joining_node(0);
        sim.swap_interests(1, 2);
        for _ in 6..quick_cfg().cycles as usize {
            sim.step();
        }
        assert!(!sim.node(joiner).wup_neighbor_ids().is_empty());
        assert!(sim.live_view_similarity(joiner) >= 0.0);
    }

    #[test]
    fn measured_flag_follows_threshold() {
        let d = tiny_dataset();
        let report = Simulation::new(&d, Protocol::WhatsUp { f_like: 4 }, quick_cfg()).run();
        for r in &report.items {
            assert_eq!(r.measured, r.published_at >= quick_cfg().measure_from);
        }
    }

    #[test]
    fn churn_keeps_running_and_degrades_gracefully() {
        let d = tiny_dataset();
        let churny = SimConfig {
            churn_per_cycle: 0.05,
            ..quick_cfg()
        };
        let a = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, churny.clone()).run();
        let b = Simulation::new(&d, Protocol::WhatsUp { f_like: 5 }, churny).run();
        assert_eq!(a, b, "churn must stay deterministic");
        assert!(a.scores().recall > 0.0);
    }

    #[test]
    #[should_panic(expected = "does not run on the node engine")]
    fn global_protocols_rejected() {
        let d = tiny_dataset();
        let _ = Simulation::new(&d, Protocol::Cascade, quick_cfg());
    }
}
