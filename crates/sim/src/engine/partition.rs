//! Contiguous node-id partition: shard `s` owns `[starts[s], starts[s+1])`.
//!
//! Contiguity is load-bearing for determinism: concatenating per-shard data
//! in shard-index order equals concatenating it in node-id order, which is
//! the total order the whole exchange protocol is built on.

use whatsup_core::NodeId;

/// The shard map. Balanced at construction (sizes differ by at most one);
/// nodes joining mid-run extend the last shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `n_shards + 1` boundaries; `starts[0] == 0`, `starts[S] == total`.
    starts: Vec<NodeId>,
}

impl Partition {
    /// Splits `n` nodes into `shards` contiguous ranges, the first
    /// `n % shards` ranges one node larger.
    ///
    /// # Panics
    /// Panics unless `1 <= shards <= n`.
    pub fn new(n: usize, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        assert!(shards <= n, "more shards ({shards}) than nodes ({n})");
        let base = n / shards;
        let extra = n % shards;
        let mut starts = Vec::with_capacity(shards + 1);
        let mut at = 0usize;
        starts.push(0);
        for s in 0..shards {
            at += base + usize::from(s < extra);
            starts.push(at as NodeId);
        }
        Self { starts }
    }

    /// Load-aware split: sizes the initial ranges against the population
    /// the run will *end* with. Every join — mass-join bursts, flash-crowd
    /// clones — lands on the last shard ([`Partition::push_node`]), so a
    /// balanced initial split leaves the last shard carrying all
    /// `expected_joins` extra nodes for the rest of the run. This planner
    /// instead balances `n + expected_joins` across the shards and assigns
    /// the last shard its final-size share minus the joins it will absorb
    /// (clamped so every shard starts with at least one node).
    ///
    /// Any contiguous split preserves bit-identity — shard-order
    /// concatenation equals node-id order regardless of where the
    /// boundaries sit — so this only moves load, never results. With
    /// `expected_joins == 0` it reduces exactly to [`Partition::new`].
    ///
    /// # Panics
    /// Panics unless `1 <= shards <= n`.
    pub fn plan(n: usize, shards: usize, expected_joins: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        assert!(shards <= n, "more shards ({shards}) than nodes ({n})");
        if shards == 1 {
            return Self::new(n, 1);
        }
        let fin = n + expected_joins;
        let (base, extra) = (fin / shards, fin % shards);
        // Final-size target of the last shard, minus the joins it absorbs.
        let last_target = base + usize::from(shards - 1 < extra);
        let last = last_target
            .saturating_sub(expected_joins)
            .clamp(1, n - (shards - 1));
        // The first `shards - 1` ranges split the rest evenly.
        let head = n - last;
        let (h_base, h_extra) = (head / (shards - 1), head % (shards - 1));
        let mut starts = Vec::with_capacity(shards + 1);
        let mut at = 0usize;
        starts.push(0);
        for s in 0..shards - 1 {
            at += h_base + usize::from(s < h_extra);
            starts.push(at as NodeId);
        }
        starts.push(n as NodeId);
        Self { starts }
    }

    pub fn n_shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total number of nodes.
    pub fn total(&self) -> usize {
        *self.starts.last().expect("non-empty boundaries") as usize
    }

    /// The id range shard `s` owns.
    pub fn range(&self, s: usize) -> std::ops::Range<NodeId> {
        self.starts[s]..self.starts[s + 1]
    }

    /// The shard owning node `id`.
    ///
    /// # Panics
    /// Panics for ids outside the population (a message addressed to an
    /// unknown node is an engine bug, not a recoverable condition).
    pub fn shard_of(&self, id: NodeId) -> usize {
        assert!(
            (id as usize) < self.total(),
            "message addressed to unknown node {id}"
        );
        self.starts.partition_point(|&s| s <= id) - 1
    }

    /// Registers one node joining at the end of the id space (owned by the
    /// last shard). Returns the new node's id.
    pub fn push_node(&mut self) -> NodeId {
        let id = *self.starts.last().expect("non-empty boundaries");
        *self.starts.last_mut().expect("non-empty boundaries") = id + 1;
        id
    }

    /// The raw boundaries (serialization support).
    pub fn starts(&self) -> &[NodeId] {
        &self.starts
    }

    /// Rebuilds a partition from its boundaries.
    ///
    /// # Panics
    /// Panics unless the boundaries start at 0 and are non-decreasing with
    /// at least one shard.
    pub fn from_starts(starts: Vec<NodeId>) -> Self {
        assert!(starts.len() >= 2, "need at least one shard");
        assert_eq!(starts[0], 0, "partition must start at node 0");
        assert!(
            starts.windows(2).all(|w| w[0] <= w[1]),
            "boundaries must be non-decreasing"
        );
        Self { starts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_split_covers_all_ids() {
        for n in [1usize, 2, 7, 100, 101] {
            for s in 1..=n.min(8) {
                let p = Partition::new(n, s);
                assert_eq!(p.n_shards(), s);
                assert_eq!(p.total(), n);
                let mut seen = 0usize;
                for shard in 0..s {
                    let r = p.range(shard);
                    for id in r.clone() {
                        assert_eq!(p.shard_of(id), shard);
                    }
                    seen += r.len();
                    // Balanced: sizes differ by at most one.
                    assert!(r.len() >= n / s && r.len() <= n / s + 1);
                }
                assert_eq!(seen, n);
            }
        }
    }

    #[test]
    fn ranges_are_contiguous_and_ascending() {
        let p = Partition::new(10, 3);
        assert_eq!(p.range(0), 0..4);
        assert_eq!(p.range(1), 4..7);
        assert_eq!(p.range(2), 7..10);
    }

    #[test]
    fn push_node_grows_last_shard() {
        let mut p = Partition::new(6, 2);
        assert_eq!(p.push_node(), 6);
        assert_eq!(p.total(), 7);
        assert_eq!(p.shard_of(6), 1);
        assert_eq!(p.range(0), 0..3, "earlier shards untouched");
    }

    #[test]
    fn plan_without_joins_is_the_balanced_split() {
        for n in [1usize, 2, 7, 100, 101, 1000] {
            for s in 1..=n.min(8) {
                assert_eq!(Partition::plan(n, s, 0), Partition::new(n, s), "{n}/{s}");
            }
        }
    }

    #[test]
    fn plan_balances_the_final_population() {
        // 100 nodes + 20 joins over 4 shards: final target 30 per shard,
        // so the last shard starts with 10 and ends at 30.
        let p = Partition::plan(100, 4, 20);
        assert_eq!(p.total(), 100);
        assert_eq!(p.range(3).len(), 10);
        let head: Vec<usize> = (0..3).map(|s| p.range(s).len()).collect();
        assert_eq!(head, vec![30, 30, 30]);
    }

    #[test]
    fn plan_clamps_to_one_node_per_shard() {
        // Joins dwarf the population: every shard still starts non-empty.
        let p = Partition::plan(4, 4, 1_000);
        assert_eq!(p.total(), 4);
        for s in 0..4 {
            assert_eq!(p.range(s).len(), 1);
        }
    }

    #[test]
    fn plan_ranges_stay_contiguous_ascending() {
        for joins in [0usize, 1, 7, 50, 500] {
            let p = Partition::plan(97, 5, joins);
            assert_eq!(p.total(), 97);
            let mut seen = 0usize;
            for s in 0..5 {
                let r = p.range(s);
                assert!(!r.is_empty(), "shard {s} empty at joins={joins}");
                assert_eq!(r.start as usize, seen);
                seen = r.end as usize;
            }
            assert_eq!(seen, 97);
        }
    }

    #[test]
    fn starts_roundtrip() {
        let p = Partition::new(11, 4);
        let q = Partition::from_starts(p.starts().to_vec());
        assert_eq!(p, q);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn out_of_range_id_panics() {
        Partition::new(4, 2).shard_of(4);
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn too_many_shards_rejected() {
        Partition::new(2, 3);
    }
}
