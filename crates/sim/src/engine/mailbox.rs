//! Per-node mailboxes and the serialized mailbox-bundle exchange.
//!
//! A [`Mailbox`] owns the mail for one shard's node range, stored in a
//! per-shard **arena**: one contiguous entry vector plus per-node chain
//! heads/tails, instead of one heap `Vec` per node. The route step appends
//! to the arena in arrival order (`O(1)`, no per-node allocation); the
//! deliver step drains receivers in ascending id order by walking their
//! chains; [`Mailbox::recycle`] then resets the arena *keeping its
//! capacity*, so steady-state rounds allocate nothing. Bundles are encoded
//! with the `whatsup-net` wire codec (`MAILBOX_BUNDLE` frames), so
//! cross-shard traffic uses exactly the deployment stack's message
//! encoding.

use std::collections::BTreeMap;
use whatsup_core::{ItemId, NewsItem, NodeId, Payload};
use whatsup_net::codec;

/// One addressed in-flight message.
#[derive(Debug, Clone, PartialEq)]
pub struct MailEntry {
    pub to: NodeId,
    pub from: NodeId,
    pub payload: Payload,
}

/// Chain terminator / empty-slot marker in the arena index arrays.
const NONE: u32 = u32::MAX;

/// One arena cell: a received message plus the index of the next message
/// for the same receiver.
#[derive(Debug)]
struct ArenaEntry {
    from: NodeId,
    payload: Payload,
    next: u32,
}

/// A payload that owns no heap memory — what a drained arena cell is left
/// holding (an empty descriptor list never allocates).
fn empty_payload() -> Payload {
    Payload::RpsRequest(Vec::new())
}

/// The per-node mailboxes of one shard's id range, arena-backed.
#[derive(Debug)]
pub struct Mailbox {
    /// First owned node id.
    base: NodeId,
    /// This round's messages, in push order, chained per receiver. Cleared
    /// (capacity kept) by [`Self::recycle`] after every delivery round.
    arena: Vec<ArenaEntry>,
    /// Per owned node: arena index of its first/last pending message.
    heads: Vec<u32>,
    tails: Vec<u32>,
    /// Owned ids with mail, in first-touch order (sorted on drain).
    receivers: Vec<NodeId>,
    /// Spare buffer the sorted receiver list is built in, cycled back via
    /// [`Self::restore_receiver_buf`] so neither list reallocates in steady
    /// state.
    receivers_spare: Vec<NodeId>,
}

impl Mailbox {
    pub fn new(range: std::ops::Range<NodeId>) -> Self {
        let n = (range.end - range.start) as usize;
        Self {
            base: range.start,
            arena: Vec::new(),
            heads: vec![NONE; n],
            tails: vec![NONE; n],
            receivers: Vec::new(),
            receivers_spare: Vec::new(),
        }
    }

    fn slot_index(&self, id: NodeId) -> usize {
        let local = id
            .checked_sub(self.base)
            .expect("message routed to the wrong shard") as usize;
        assert!(local < self.heads.len(), "message routed to unknown node");
        local
    }

    /// Appends one message to its receiver's chain (mailbox order is push
    /// order — callers must push in the global total order).
    pub fn push(&mut self, entry: MailEntry) {
        self.push_parts(entry.to, entry.from, entry.payload);
    }

    /// [`Self::push`] without requiring a materialized [`MailEntry`].
    pub fn push_parts(&mut self, to: NodeId, from: NodeId, payload: Payload) {
        let local = self.slot_index(to);
        let idx = self.arena.len() as u32;
        match self.tails[local] {
            NONE => {
                self.receivers.push(to);
                self.heads[local] = idx;
            }
            tail => self.arena[tail as usize].next = idx,
        }
        self.tails[local] = idx;
        self.arena.push(ArenaEntry {
            from,
            payload,
            next: NONE,
        });
    }

    /// The receivers with mail, ascending, clearing the bookkeeping for the
    /// next round. The returned vector is the mailbox's own spare buffer —
    /// hand it back via [`Self::restore_receiver_buf`] after the drain loop
    /// so its capacity survives the round.
    pub fn take_receivers(&mut self) -> Vec<NodeId> {
        let mut out = std::mem::take(&mut self.receivers_spare);
        out.clear();
        out.append(&mut self.receivers);
        out.sort_unstable();
        out
    }

    /// Returns the buffer from [`Self::take_receivers`] for reuse.
    pub fn restore_receiver_buf(&mut self, buf: Vec<NodeId>) {
        self.receivers_spare = buf;
    }

    /// Drains one receiver's mail in push order, passing each `(from,
    /// payload)` to `visit`. The drained cells stay in the arena (their
    /// payloads replaced by an allocation-free empty) until
    /// [`Self::recycle`] reclaims the round's memory in one sweep.
    pub fn drain_mail(&mut self, id: NodeId, mut visit: impl FnMut(NodeId, Payload)) {
        let local = self.slot_index(id);
        let mut cur = self.heads[local];
        self.heads[local] = NONE;
        self.tails[local] = NONE;
        while cur != NONE {
            let cell = &mut self.arena[cur as usize];
            let from = cell.from;
            let payload = std::mem::replace(&mut cell.payload, empty_payload());
            cur = cell.next;
            visit(from, payload);
        }
    }

    /// Resets the arena after a delivery round, keeping its capacity —
    /// steady-state rounds reuse the same backing memory. Every receiver
    /// must have been drained first.
    pub fn recycle(&mut self) {
        debug_assert!(
            self.receivers.is_empty() && self.heads.iter().all(|&h| h == NONE),
            "recycle with undelivered mail"
        );
        self.arena.clear();
    }

    /// Standing capacity of the arena and its index arrays, in bytes
    /// (diagnostics: the steady-state memory the mailbox holds between
    /// rounds).
    #[doc(hidden)]
    pub fn capacity_bytes(&self) -> usize {
        self.arena.capacity() * std::mem::size_of::<ArenaEntry>()
            + (self.heads.capacity()
                + self.tails.capacity()
                + self.receivers.capacity()
                + self.receivers_spare.capacity())
                * std::mem::size_of::<u32>()
    }

    /// Adds a slot for a node appended to this shard's range.
    pub fn grow(&mut self) {
        self.heads.push(NONE);
        self.tails.push(NONE);
    }

    /// Whether no mail is pending — true at every cycle boundary (each
    /// delivery round drains what the previous route step filled and
    /// recycles the arena), which is what lets checkpoints skip in-flight
    /// mail entirely.
    pub fn is_empty(&self) -> bool {
        self.receivers.is_empty() && self.arena.is_empty()
    }
}

/// Encodes one shard's outbound mail for another shard as a wire bundle.
/// `items` resolves news ids to content (news travels as content on the
/// wire; ids are recomputed by the receiver).
pub fn encode_shard_bundle(
    from_shard: u32,
    entries: &[(NodeId, NodeId, Payload)],
    items: &BTreeMap<ItemId, NewsItem>,
) -> bytes::Bytes {
    codec::encode_bundle(from_shard, entries, |id| items.get(&id).cloned())
}

/// Streams a wire bundle's mail entries to `sink` without materializing an
/// intermediate vector: each inner frame is decoded as a borrowed view over
/// `frame` and converted straight into its payload. Each *distinct* news
/// content is passed to `register` once per repetition run (the receiving
/// shard caches it so its nodes can re-forward the item later); consecutive
/// entries with identical content or profile bytes decode through a
/// [`codec::NewsDecodeCache`], which turns a fan-out's repeated copies into
/// `Arc` clones of one parse.
///
/// # Panics
/// Panics on malformed frames: bundles only travel the engine's own
/// transports, so corruption is an engine bug.
pub fn decode_shard_bundle_each(
    frame: &[u8],
    register: &mut impl FnMut(NewsItem),
    mut sink: impl FnMut(NodeId, NodeId, Payload),
) {
    let view = codec::bundle_view(frame).expect("malformed shard bundle");
    let mut cache = codec::NewsDecodeCache::default();
    for entry in view {
        let (to, inner) = entry.expect("malformed shard bundle entry");
        let (from, payload, fresh_item) =
            codec::decode_bundle_entry(inner, &mut cache).expect("malformed bundled message");
        if let Some(item) = fresh_item {
            register(item);
        }
        sink(to, from, payload);
    }
}

/// Decodes a wire bundle into owned mail entries (see
/// [`decode_shard_bundle_each`] for the streaming form the engine uses).
pub fn decode_shard_bundle(frame: &[u8], register: &mut impl FnMut(NewsItem)) -> Vec<MailEntry> {
    let mut entries = Vec::new();
    decode_shard_bundle_each(frame, register, |to, from, payload| {
        entries.push(MailEntry { to, from, payload });
    });
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_core::{NewsMessage, Profile, SharedProfile};

    fn entry(to: NodeId, from: NodeId) -> MailEntry {
        MailEntry {
            to,
            from,
            payload: Payload::RpsRequest(vec![]),
        }
    }

    #[test]
    fn mailbox_preserves_push_order_and_sorts_receivers() {
        let mut m = Mailbox::new(10..20);
        m.push(entry(15, 1));
        m.push(entry(12, 2));
        m.push(entry(15, 3));
        let receivers = m.take_receivers();
        assert_eq!(receivers, vec![12, 15]);
        let mut senders = Vec::new();
        m.drain_mail(15, |from, _| senders.push(from));
        assert_eq!(senders, vec![1, 3], "push order kept");
        m.drain_mail(12, |from, _| senders.push(from));
        assert_eq!(senders, vec![1, 3, 2]);
        m.restore_receiver_buf(receivers);
        m.recycle();
        assert!(m.is_empty());
        assert!(m.take_receivers().is_empty(), "bookkeeping cleared");
    }

    #[test]
    fn arena_capacity_survives_recycle() {
        let mut m = Mailbox::new(0..4);
        for round in 0..3 {
            for i in 0..50u32 {
                m.push(entry(i % 4, i));
            }
            let receivers = m.take_receivers();
            for &id in &receivers {
                m.drain_mail(id, |_, _| {});
            }
            m.restore_receiver_buf(receivers);
            m.recycle();
            assert!(m.is_empty(), "round {round} left mail behind");
            assert!(m.arena.capacity() >= 50, "arena capacity must be kept");
        }
    }

    #[test]
    #[should_panic(expected = "wrong shard")]
    fn foreign_id_rejected() {
        Mailbox::new(10..20).push(entry(3, 0));
    }

    #[test]
    fn bundle_roundtrip_restores_mail_and_registers_items() {
        let item = NewsItem::new("t", "d", "l", 4, 2);
        let mut items = BTreeMap::new();
        items.insert(item.id(), item.clone());
        let entries = vec![
            (
                7u32,
                4u32,
                Payload::News(NewsMessage {
                    header: item.header(),
                    profile: SharedProfile::new(Profile::new()),
                    dislikes: 0,
                    hops: 1,
                }),
            ),
            (8u32, 5u32, Payload::WupRequest(vec![])),
        ];
        let frame = encode_shard_bundle(0, &entries, &items);
        let mut registered = Vec::new();
        let mail = decode_shard_bundle(&frame, &mut |i| registered.push(i));
        assert_eq!(mail.len(), 2);
        assert_eq!((mail[0].to, mail[0].from), (7, 4));
        assert_eq!(mail[0].payload, entries[0].2);
        assert_eq!(mail[1].payload, entries[1].2);
        assert_eq!(registered, vec![item]);
    }
}
