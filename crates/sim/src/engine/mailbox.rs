//! Per-node mailboxes and the serialized mailbox-bundle exchange.
//!
//! A [`Mailbox`] owns the slots for one shard's node range. The route step
//! fills slots in arrival order; the deliver step drains receivers in
//! ascending id order. Bundles are encoded with the `whatsup-net` wire
//! codec (`MAILBOX_BUNDLE` frames), so cross-shard traffic uses exactly the
//! deployment stack's message encoding.

use std::collections::HashMap;
use whatsup_core::{ItemId, NewsItem, NodeId, Payload};
use whatsup_net::codec;

/// One addressed in-flight message.
#[derive(Debug, Clone, PartialEq)]
pub struct MailEntry {
    pub to: NodeId,
    pub from: NodeId,
    pub payload: Payload,
}

/// The per-node mailboxes of one shard's id range.
#[derive(Debug)]
pub struct Mailbox {
    /// First owned node id.
    base: NodeId,
    /// One slot per owned node, reused across rounds and cycles.
    slots: Vec<Vec<(NodeId, Payload)>>,
    /// Owned ids with mail, in first-touch order (sorted on drain).
    receivers: Vec<NodeId>,
}

impl Mailbox {
    pub fn new(range: std::ops::Range<NodeId>) -> Self {
        Self {
            base: range.start,
            slots: (range.start..range.end).map(|_| Vec::new()).collect(),
            receivers: Vec::new(),
        }
    }

    fn slot_index(&self, id: NodeId) -> usize {
        let local = id
            .checked_sub(self.base)
            .expect("message routed to the wrong shard") as usize;
        assert!(local < self.slots.len(), "message routed to unknown node");
        local
    }

    /// Appends one message to its receiver's slot (mailbox order is push
    /// order — callers must push in the global total order).
    pub fn push(&mut self, entry: MailEntry) {
        let local = self.slot_index(entry.to);
        if self.slots[local].is_empty() {
            self.receivers.push(entry.to);
        }
        self.slots[local].push((entry.from, entry.payload));
    }

    /// The receivers with mail, ascending, clearing the bookkeeping for the
    /// next round.
    pub fn take_receivers(&mut self) -> Vec<NodeId> {
        let mut out = std::mem::take(&mut self.receivers);
        out.sort_unstable();
        out
    }

    /// Drains one receiver's mail.
    pub fn take_mail(&mut self, id: NodeId) -> Vec<(NodeId, Payload)> {
        let local = self.slot_index(id);
        std::mem::take(&mut self.slots[local])
    }

    /// Adds a slot for a node appended to this shard's range.
    pub fn grow(&mut self) {
        self.slots.push(Vec::new());
    }

    /// Whether no slot holds mail — true at every cycle boundary (each
    /// delivery round drains what the previous route step filled), which is
    /// what lets checkpoints skip in-flight mail entirely.
    pub fn is_empty(&self) -> bool {
        self.receivers.is_empty() && self.slots.iter().all(Vec::is_empty)
    }
}

/// Encodes one shard's outbound mail for another shard as a wire bundle.
/// `items` resolves news ids to content (news travels as content on the
/// wire; ids are recomputed by the receiver).
pub fn encode_shard_bundle(
    from_shard: u32,
    entries: &[(NodeId, NodeId, Payload)],
    items: &HashMap<ItemId, NewsItem>,
) -> bytes::Bytes {
    codec::encode_bundle(from_shard, entries, |id| items.get(&id).cloned())
}

/// Decodes a wire bundle back into mail entries, registering every news
/// item's content with `register` (the receiving shard caches it so its
/// nodes can re-forward the item later).
///
/// # Panics
/// Panics on malformed frames: bundles only travel the engine's own
/// transports, so corruption is an engine bug.
pub fn decode_shard_bundle(frame: &[u8], register: &mut impl FnMut(NewsItem)) -> Vec<MailEntry> {
    let (_shard, message) = codec::decode(frame).expect("malformed shard bundle");
    let codec::WireMessage::Bundle(entries) = message else {
        panic!("expected a mailbox bundle frame");
    };
    entries
        .into_iter()
        .map(|e| {
            if let codec::WireMessage::News { item, .. } = &e.message {
                register(item.clone());
            }
            MailEntry {
                to: e.to,
                from: e.from,
                payload: e.message.into_payload(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_core::{NewsMessage, Profile};

    fn entry(to: NodeId, from: NodeId) -> MailEntry {
        MailEntry {
            to,
            from,
            payload: Payload::RpsRequest(vec![]),
        }
    }

    #[test]
    fn mailbox_preserves_push_order_and_sorts_receivers() {
        let mut m = Mailbox::new(10..20);
        m.push(entry(15, 1));
        m.push(entry(12, 2));
        m.push(entry(15, 3));
        assert_eq!(m.take_receivers(), vec![12, 15]);
        let mail = m.take_mail(15);
        assert_eq!(mail.len(), 2);
        assert_eq!((mail[0].0, mail[1].0), (1, 3), "push order kept");
        assert!(m.take_receivers().is_empty(), "bookkeeping cleared");
    }

    #[test]
    #[should_panic(expected = "wrong shard")]
    fn foreign_id_rejected() {
        Mailbox::new(10..20).push(entry(3, 0));
    }

    #[test]
    fn bundle_roundtrip_restores_mail_and_registers_items() {
        let item = NewsItem::new("t", "d", "l", 4, 2);
        let mut items = HashMap::new();
        items.insert(item.id(), item.clone());
        let entries = vec![
            (
                7u32,
                4u32,
                Payload::News(NewsMessage {
                    header: item.header(),
                    profile: Profile::new(),
                    dislikes: 0,
                    hops: 1,
                }),
            ),
            (8u32, 5u32, Payload::WupRequest(vec![])),
        ];
        let frame = encode_shard_bundle(0, &entries, &items);
        let mut registered = Vec::new();
        let mail = decode_shard_bundle(&frame, &mut |i| registered.push(i));
        assert_eq!(mail.len(), 2);
        assert_eq!((mail[0].to, mail[0].from), (7, 4));
        assert_eq!(mail[0].payload, entries[0].2);
        assert_eq!(mail[1].payload, entries[1].2);
        assert_eq!(registered, vec![item]);
    }
}
