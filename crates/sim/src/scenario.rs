//! The scenario layer: one typed, serializable description of a workload.
//!
//! The paper evaluates WHATSUP under fanout sweeps, message loss, churn and
//! joining/switching nodes (§V-C–§V-E); real news systems add flash crowds,
//! diurnal publication waves and correlated failures on top. A [`Scenario`]
//! captures all of those as data:
//!
//! * [`Workload`] — when the dataset's items are published (uniform spread,
//!   flash-crowd burst, diurnal wave, topic-skewed hotspot);
//! * [`Environment`] — the network the run happens in: a [`LossModel`]
//!   (constant, bursty Gilbert–Elliott, timed partition window) and a
//!   [`ChurnModel`] (uniform per-cycle, correlated crash wave, mass join);
//! * `events` — a cycle-stamped timeline of typed [`Event`]s (join a clone,
//!   swap interests, reset a node) replacing hand-written choreography;
//! * `measurements` — named measurement windows ([`Measurement`]) over the
//!   run's per-cycle series: explicit cycle ranges, or recovery windows
//!   anchored to the scenario's own events ("from the crash wave firing
//!   until recall recovers to the pre-event baseline"), rendered into the
//!   report as window-scoped aggregates plus dip-depth/time-to-recover/
//!   messages-spent recovery metrics.
//!
//! Scenarios are applied at phase boundaries inside the sharded engine (see
//! `crate::engine`), so the determinism contract — reports bit-identical
//! across shard counts and exchange transports — holds for **every**
//! scenario, not just the default one. [`crate::Runner`] is the entry point
//! that takes one.
//!
//! # JSON schema
//!
//! Scenarios round-trip through JSON (`to_json` / `serde_json::from_str`).
//! Every enum is a tagged object with a `"kind"` discriminator; all numbers
//! are JSON numbers (f64-precision — seeds above 2^53 do not round-trip).
//!
//! ```json
//! {
//!   "workload":
//!     {"kind": "uniform"}
//!     | {"kind": "flash_crowd", "at": 6, "fraction": 0.3}
//!     | {"kind": "diurnal", "period": 12, "amplitude": 0.8}
//!     | {"kind": "topic_hotspot", "topic": 2, "at": 6, "span": 3},
//!   "environment": {
//!     "loss":
//!       {"kind": "constant", "p": 0.1}
//!       | {"kind": "gilbert_elliott", "p_good": 0.02, "p_bad": 0.4,
//!          "good_to_bad": 0.15, "bad_to_good": 0.5}
//!       | {"kind": "partition", "from": 5, "until": 9, "frontier": 0.5},
//!     "churn":
//!       {"kind": "none"}
//!       | {"kind": "uniform", "per_cycle": 0.02}
//!       | {"kind": "crash_wave", "at": 8, "fraction": 0.15}
//!       | {"kind": "mass_join", "at": 8, "count": 5}
//!   },
//!   "events": [
//!     {"at": 6, "kind": "join_clone", "reference": 0},
//!     {"at": 7, "kind": "swap_interests", "a": 1, "b": 2},
//!     {"at": 9, "kind": "reset_node", "node": 3}
//!   ],
//!   "measurements": [
//!     {"name": "steady_state", "kind": "cycles", "from": 5, "until": 8},
//!     {"name": "crash_recovery", "kind": "recovery",
//!      "anchor": {"kind": "crash_wave"}, "baseline": 3}
//!   ]
//! }
//! ```
//!
//! A measurement is either `"kind": "cycles"` (explicit half-open range
//! `[from, until)`) or `"kind": "recovery"` (from the anchor's cycle until
//! recall recovers to the pooled recall of the `baseline` cycles before
//! it). Anchors name a cycle directly (`{"kind": "cycle", "at": 8}`) or
//! point at the scenario's own events — `"crash_wave"`, `"mass_join"`,
//! `"flash_crowd"`, `"partition_start"`, `"partition_end"`, or
//! `{"kind": "event", "index": k}` for the `k`-th timeline event.
//! Validation rejects anchors the scenario cannot resolve (e.g. a
//! `crash_wave` anchor without a crash-wave churn model), empty or
//! duplicate window names, and measurements on runs that disable
//! `collect_series`. Window names are free-form; each becomes one entry of
//! the report's `windows` table.
//!
//! A [`ScenarioFile`] wraps a scenario with everything else a run needs —
//! dataset recipe, protocol and [`SimConfig`] — and is what the
//! `whatsup-sim` CLI executes:
//!
//! ```json
//! {
//!   "dataset": {"kind": "survey" | "digg" | "synthetic",
//!               "scale": 0.08, "seed": 11},
//!   "protocol": {"kind": "whatsup", "f_like": 4},
//!   "config": {"cycles": 14, "publish_from": 2, "measure_from": 5},
//!   "scenario": { ... }
//! }
//! ```
//!
//! `config` accepts any subset of [`SimConfig`]'s fields (missing fields
//! take their defaults).
//!
//! ## Protocol selection
//!
//! `protocol` picks the engine the scenario runs on. The `"kind"` values
//! are: the per-node gossip stack — `"whatsup"`, `"whatsup_cos"`,
//! `"no_amplification"`, `"no_orientation"` (knob `f_like`/`fanout`),
//! `"cf_wup"`, `"cf_cos"` (knob `k`), `"gossip"` (knob `fanout`); the
//! global-knowledge baselines — `"cascade"`, `"c_pub_sub"`, `"c_whatsup"`
//! (no per-cycle events or environment models; scenario validation rejects
//! those combinations); and `"anti_entropy"` (knob `fanout`) — the
//! scuttlebutt digest/delta engine (`crate::engines::antientropy`), which
//! runs under the full scenario grid like the gossip stack and additionally
//! reads the `datagram_budget`, `phi_threshold` and `down_cycles` config
//! fields. The `whatsup-sim run --protocol anti-entropy` flag overrides the
//! file's protocol from the CLI, and `whatsup-sim compare` runs both.

use crate::config::{Protocol, SimConfig};
use serde::json::{Error, Value};
use serde::{Deserialize, Serialize};
use whatsup_core::NodeId;
use whatsup_datasets::{digg, survey, synthetic, Dataset};
use whatsup_datasets::{DiggConfig, SurveyConfig, SyntheticConfig};

/// When the dataset's items are published (the x-axis of every epidemic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Items spread evenly over `[publish_from, cycles)` (the paper's
    /// methodology, and the legacy `SimConfig::schedule`).
    Uniform,
    /// A breaking-news spike: every `⌈1/fraction⌉`-th item publishes at
    /// cycle `at`; the rest keep their uniform slot. The stride selection
    /// approximates the fraction from below (e.g. `0.7` bursts every 2nd
    /// item = 50%); `1.0` bursts everything.
    FlashCrowd { at: u32, fraction: f64 },
    /// A sinusoidal day/night wave: per-cycle publication density follows
    /// `1 + amplitude · sin(2π · (cycle - publish_from) / period)`.
    Diurnal { period: u32, amplitude: f64 },
    /// One topic goes hot: its items publish inside `[at, at + span)`;
    /// items of other topics keep their uniform slot.
    TopicHotspot { topic: u32, at: u32, span: u32 },
}

impl Workload {
    /// Publication cycle per item. `topics[i]` is item `i`'s topic (only
    /// [`Workload::TopicHotspot`] reads it). Every returned cycle lies in
    /// `[publish_from, cycles)`; the mapping is a pure function of its
    /// inputs.
    pub fn schedule(&self, cfg: &SimConfig, topics: &[u32]) -> Vec<u32> {
        let n = topics.len();
        let clamp = |c: u32| c.clamp(cfg.publish_from, cfg.cycles.saturating_sub(1));
        let uniform = cfg.schedule(n);
        match *self {
            Workload::Uniform => uniform,
            Workload::FlashCrowd { at, fraction } => {
                let stride = (1.0 / fraction.max(f64::EPSILON)).ceil().max(1.0) as usize;
                let burst = clamp(at);
                uniform
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| if i % stride == 0 { burst } else { c })
                    .collect()
            }
            Workload::Diurnal { period, amplitude } => {
                let span = (cfg.cycles - cfg.publish_from).max(1);
                let weight = |c: u32| {
                    let t = (c - cfg.publish_from) as f64 / period.max(1) as f64;
                    1.0 + amplitude * (std::f64::consts::TAU * t).sin()
                };
                let total: f64 = (0..span).map(|k| weight(cfg.publish_from + k)).sum();
                let mut out = Vec::with_capacity(n);
                let mut cum = 0.0;
                let mut cycle = cfg.publish_from;
                for i in 0..n {
                    // Item i sits at quantile (i + ½)/n of the density.
                    let target = (i as f64 + 0.5) / n as f64 * total;
                    while cycle + 1 < cfg.publish_from + span && cum + weight(cycle) < target {
                        cum += weight(cycle);
                        cycle += 1;
                    }
                    out.push(cycle);
                }
                out
            }
            Workload::TopicHotspot { topic, at, span } => {
                let n_hot = topics.iter().filter(|&&t| t == topic).count().max(1) as u64;
                let mut rank = 0u64;
                uniform
                    .into_iter()
                    .zip(topics)
                    .map(|(c, &t)| {
                        if t == topic {
                            // u64 arithmetic: `at + rank·span/n_hot` cannot
                            // overflow before the clamp into the run window.
                            let slot = (at as u64 + rank * span.max(1) as u64 / n_hot)
                                .min(u32::MAX as u64) as u32;
                            rank += 1;
                            clamp(slot)
                        } else {
                            c
                        }
                    })
                    .collect()
            }
        }
    }
}

/// Per-message loss (paper §V-E generalized). Every model draws its coins
/// from the *receiver's* phase stream (or none at all), so it cannot leak
/// across shard boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// Independent per-message loss with a fixed probability (the legacy
    /// `SimConfig::loss`).
    Constant { p: f64 },
    /// Bursty loss: each node's inbound channel is a two-state Markov chain
    /// (Good/Bad) advanced once per cycle; messages drop with `p_good` or
    /// `p_bad` depending on the receiver's current state.
    GilbertElliott {
        p_good: f64,
        p_bad: f64,
        /// P(Good → Bad) per cycle.
        good_to_bad: f64,
        /// P(Bad → Good) per cycle.
        bad_to_good: f64,
    },
    /// A timed network split: during `[from, until)` every message crossing
    /// the id-space frontier (`frontier` = fraction of the population in
    /// the lower half) is dropped deterministically.
    Partition {
        from: u32,
        until: u32,
        frontier: f64,
    },
}

/// Node arrivals and departures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnModel {
    /// A stable population.
    None,
    /// Every cycle each node crashes (and rejoins cold) with this
    /// probability (the legacy `SimConfig::churn_per_cycle`).
    Uniform { per_cycle: f64 },
    /// A correlated failure: at cycle `at`, each node crashes with
    /// probability `fraction` — one burst, then quiet.
    CrashWave { at: u32, fraction: f64 },
    /// `count` fresh nodes join at cycle `at`, each cloning the interests
    /// of a uniformly drawn existing node.
    MassJoin { at: u32, count: u32 },
}

impl ChurnModel {
    /// The per-node crash probability at `cycle`.
    pub fn crash_rate(&self, cycle: u32) -> f64 {
        match *self {
            ChurnModel::Uniform { per_cycle } => per_cycle,
            ChurnModel::CrashWave { at, fraction } if cycle == at => fraction,
            _ => 0.0,
        }
    }

    /// Number of nodes joining at the start of `cycle`.
    pub fn joins_at(&self, cycle: u32) -> u32 {
        match *self {
            ChurnModel::MassJoin { at, count } if cycle == at => count,
            _ => 0,
        }
    }
}

/// The network conditions of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    pub loss: LossModel,
    pub churn: ChurnModel,
}

impl Default for Environment {
    fn default() -> Self {
        Self {
            loss: LossModel::Constant { p: 0.0 },
            churn: ChurnModel::None,
        }
    }
}

/// One typed timeline event (paper §V-C's interactive experiments as data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// A node joins with interests cloned from `reference` (cold start from
    /// a random contact's views, §II-D). Joiners take the next free id.
    JoinClone { reference: NodeId },
    /// Nodes `a` and `b` swap their ground-truth interests.
    SwapInterests { a: NodeId, b: NodeId },
    /// `node` crashes and rejoins fresh from a random contact's views.
    ResetNode { node: NodeId },
}

/// An [`Event`] stamped with the cycle it fires at (start of that cycle,
/// before the collect phase; same-cycle events apply in list order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    pub at: u32,
    pub event: Event,
}

/// Where a recovery measurement window is anchored: either an explicit
/// cycle, or one of the scenario's own events — so the window follows the
/// event when the scenario is tuned, instead of drifting out of sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Anchor {
    /// An explicit cycle.
    Cycle { at: u32 },
    /// The environment's [`ChurnModel::CrashWave`] firing cycle.
    CrashWave,
    /// The environment's [`ChurnModel::MassJoin`] arrival cycle.
    MassJoin,
    /// The workload's [`Workload::FlashCrowd`] burst cycle.
    FlashCrowd,
    /// The cycle the [`LossModel::Partition`] window opens.
    PartitionStart,
    /// The cycle the [`LossModel::Partition`] window closes (heals).
    PartitionEnd,
    /// The `index`-th timeline event's cycle (list order).
    Event { index: usize },
}

impl Anchor {
    /// The cycle this anchor names in `scenario`, or `None` when the
    /// scenario has no such event (validation rejects those).
    pub fn resolve(&self, scenario: &Scenario) -> Option<u32> {
        match *self {
            Anchor::Cycle { at } => Some(at),
            Anchor::CrashWave => match scenario.environment.churn {
                ChurnModel::CrashWave { at, .. } => Some(at),
                _ => None,
            },
            Anchor::MassJoin => match scenario.environment.churn {
                ChurnModel::MassJoin { at, .. } => Some(at),
                _ => None,
            },
            Anchor::FlashCrowd => match scenario.workload {
                Workload::FlashCrowd { at, .. } => Some(at),
                _ => None,
            },
            Anchor::PartitionStart => match scenario.environment.loss {
                LossModel::Partition { from, .. } => Some(from),
                _ => None,
            },
            Anchor::PartitionEnd => match scenario.environment.loss {
                LossModel::Partition { until, .. } => Some(until),
                _ => None,
            },
            Anchor::Event { index } => scenario.events.get(index).map(|e| e.at),
        }
    }

    fn describe(&self) -> &'static str {
        match self {
            Anchor::Cycle { .. } => "cycle",
            Anchor::CrashWave => "crash_wave (scenario has no crash wave)",
            Anchor::MassJoin => "mass_join (scenario has no mass join)",
            Anchor::FlashCrowd => "flash_crowd (workload has no flash crowd)",
            Anchor::PartitionStart | Anchor::PartitionEnd => {
                "partition (loss model has no partition window)"
            }
            Anchor::Event { .. } => "event (index out of range)",
        }
    }
}

/// The cycle span one measurement covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowSpec {
    /// An explicit half-open cycle range `[from, until)`.
    Cycles { from: u32, until: u32 },
    /// From the anchor's cycle until recall recovers to the pre-event
    /// baseline (the pooled recall of the `baseline` cycles before the
    /// anchor), or the end of the run if it never does. Yields the derived
    /// recovery metrics (dip depth, time-to-recover, messages spent).
    Recovery { anchor: Anchor, baseline: u32 },
}

/// One named measurement window, rendered into the report as a
/// `crate::record::WindowReport` (window-scoped IR aggregate + traffic,
/// plus recovery metrics for [`WindowSpec::Recovery`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Measurement {
    pub name: String,
    pub window: WindowSpec,
}

/// Upper bound on one mass-join burst — a capacity guard, far above any
/// plausible experiment, so a typo'd scenario file cannot ask the engine to
/// allocate millions of nodes.
pub const MAX_MASS_JOIN: usize = 100_000;

/// A complete workload description: what publishes when, under which
/// network conditions, with which choreographed population changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    pub workload: Workload,
    pub environment: Environment,
    pub events: Vec<TimedEvent>,
    /// Named measurement windows rendered into the report (empty = only
    /// the whole-run aggregates).
    pub measurements: Vec<Measurement>,
}

impl Default for Scenario {
    fn default() -> Self {
        Self {
            workload: Workload::Uniform,
            environment: Environment::default(),
            events: Vec::new(),
            measurements: Vec::new(),
        }
    }
}

impl Scenario {
    /// The legacy scenario a bare [`SimConfig`] describes: uniform
    /// publications, constant loss, uniform churn, no events. Runs built
    /// from it are bit-identical to the pre-scenario engine.
    pub fn from_config(cfg: &SimConfig) -> Self {
        Self {
            workload: Workload::Uniform,
            environment: Environment {
                loss: LossModel::Constant { p: cfg.loss },
                churn: if cfg.churn_per_cycle > 0.0 {
                    ChurnModel::Uniform {
                        per_cycle: cfg.churn_per_cycle,
                    }
                } else {
                    ChurnModel::None
                },
            },
            events: Vec::new(),
            measurements: Vec::new(),
        }
    }

    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    pub fn with_environment(mut self, environment: Environment) -> Self {
        self.environment = environment;
        self
    }

    pub fn with_events(mut self, events: Vec<TimedEvent>) -> Self {
        self.events = events;
        self
    }

    pub fn with_measurements(mut self, measurements: Vec<Measurement>) -> Self {
        self.measurements = measurements;
        self
    }

    /// Checks every model parameter against `cfg`'s run shape.
    pub fn validate(&self, cfg: &SimConfig) -> Result<(), String> {
        let prob = |p: f64, what: &str| {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("{what} must be a probability, got {p}"))
            }
        };
        let in_run = |at: u32, what: &str| {
            if at < cfg.cycles {
                Ok(())
            } else {
                Err(format!(
                    "{what} at cycle {at} falls outside the {}-cycle run",
                    cfg.cycles
                ))
            }
        };
        match self.workload {
            Workload::Uniform => {}
            Workload::FlashCrowd { at, fraction } => {
                in_run(at, "flash-crowd burst")?;
                if !(fraction > 0.0 && fraction <= 1.0) {
                    return Err(format!(
                        "flash-crowd fraction must be in (0, 1], got {fraction}"
                    ));
                }
            }
            Workload::Diurnal { period, amplitude } => {
                if period == 0 {
                    return Err("diurnal period must be ≥ 1".into());
                }
                if !(0.0..=1.0).contains(&amplitude) {
                    return Err(format!(
                        "diurnal amplitude must be in [0, 1], got {amplitude}"
                    ));
                }
            }
            Workload::TopicHotspot { at, span, .. } => {
                in_run(at, "topic hotspot")?;
                if span == 0 {
                    return Err("hotspot span must be ≥ 1".into());
                }
            }
        }
        match self.environment.loss {
            LossModel::Constant { p } => prob(p, "loss")?,
            LossModel::GilbertElliott {
                p_good,
                p_bad,
                good_to_bad,
                bad_to_good,
            } => {
                prob(p_good, "p_good")?;
                prob(p_bad, "p_bad")?;
                prob(good_to_bad, "good_to_bad")?;
                prob(bad_to_good, "bad_to_good")?;
            }
            LossModel::Partition {
                from,
                until,
                frontier,
            } => {
                if !(frontier > 0.0 && frontier < 1.0) {
                    return Err(format!(
                        "partition frontier must be in (0, 1), got {frontier}"
                    ));
                }
                if from >= until {
                    return Err(format!(
                        "partition window [{from}, {until}) is empty — it would never open"
                    ));
                }
                in_run(from, "partition window start")?;
            }
        }
        match self.environment.churn {
            ChurnModel::None => {}
            ChurnModel::Uniform { per_cycle } => prob(per_cycle, "churn")?,
            ChurnModel::CrashWave { at, fraction } => {
                in_run(at, "crash wave")?;
                prob(fraction, "crash-wave fraction")?;
            }
            ChurnModel::MassJoin { at, count } => {
                in_run(at, "mass join")?;
                if count as usize > MAX_MASS_JOIN {
                    return Err(format!(
                        "mass join of {count} nodes exceeds the engine limit ({MAX_MASS_JOIN})"
                    ));
                }
            }
        }
        for e in &self.events {
            if e.at >= cfg.cycles {
                return Err(format!(
                    "event at cycle {} falls outside the {}-cycle run",
                    e.at, cfg.cycles
                ));
            }
        }
        if !self.measurements.is_empty() && !cfg.collect_series {
            return Err(
                "measurement windows need the per-cycle series — enable collect_series".into(),
            );
        }
        let mut names = std::collections::BTreeSet::new();
        for m in &self.measurements {
            if m.name.is_empty() {
                return Err("measurement window name must not be empty".into());
            }
            if !names.insert(m.name.as_str()) {
                return Err(format!("duplicate measurement window name {:?}", m.name));
            }
            match m.window {
                WindowSpec::Cycles { from, until } => {
                    if from >= until {
                        return Err(format!(
                            "measurement {:?}: window [{from}, {until}) is empty",
                            m.name
                        ));
                    }
                    in_run(from, "measurement window start")?;
                }
                WindowSpec::Recovery { anchor, baseline } => {
                    if baseline == 0 {
                        return Err(format!(
                            "measurement {:?}: recovery baseline must span ≥ 1 cycle",
                            m.name
                        ));
                    }
                    let Some(at) = anchor.resolve(self) else {
                        return Err(format!(
                            "measurement {:?}: anchor does not resolve — {}",
                            m.name,
                            anchor.describe()
                        ));
                    };
                    in_run(at, "measurement anchor")?;
                }
            }
        }
        Ok(())
    }

    /// Checks that this scenario is expressible on the global baseline
    /// engines (cascade, pub/sub, centralized). They have no per-cycle
    /// gossip layer, so only the workload schedule applies there; timeline
    /// events and the non-trivial environment models would be silently
    /// ignored — reject them instead. (Constant loss and uniform churn pass
    /// through for config-knob parity; the engines document ignoring them.)
    pub fn validate_for_global(&self, protocol: &Protocol) -> Result<(), String> {
        if !protocol.is_global() {
            return Ok(());
        }
        let engine = protocol.label();
        if !self.events.is_empty() {
            return Err(format!(
                "timeline events cannot fire on the global {engine} engine"
            ));
        }
        if !matches!(self.environment.loss, LossModel::Constant { .. }) {
            return Err(format!(
                "only constant loss is expressible on the global {engine} engine"
            ));
        }
        if !matches!(
            self.environment.churn,
            ChurnModel::None | ChurnModel::Uniform { .. }
        ) {
            return Err(format!(
                "crash waves and mass joins cannot fire on the global {engine} engine"
            ));
        }
        if !self.measurements.is_empty() {
            return Err(format!(
                "measurement windows need the per-cycle engine — the global {engine} \
                 engine produces no time series"
            ));
        }
        Ok(())
    }

    /// Total nodes the schedule will add over the run: the mass-join
    /// burst (if any) plus every choreographed `JoinClone` event. The
    /// load-aware partition planner
    /// ([`crate::engine::partition::Partition::plan`]) uses this to size
    /// the last shard — the one all joiners land on — for its *final*
    /// population instead of its initial one.
    pub fn expected_joins(&self) -> usize {
        let mass = match self.environment.churn {
            ChurnModel::MassJoin { count, .. } => count as usize,
            _ => 0,
        };
        let clones = self
            .events
            .iter()
            .filter(|e| matches!(e.event, Event::JoinClone { .. }))
            .count();
        mass + clones
    }

    /// Checks every event's node ids against the population the run will
    /// actually have when the event fires: `initial_nodes`, plus the mass
    /// join once its cycle has passed, plus every `JoinClone` that fired
    /// earlier (events execute ordered by cycle, list order within one).
    /// Call it once the dataset size is known — invalid ids would otherwise
    /// surface as index panics deep inside the engine.
    pub fn validate_events(&self, initial_nodes: usize) -> Result<(), String> {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| self.events[i].at);
        let mass = |cycle: u32| match self.environment.churn {
            ChurnModel::MassJoin { at, count } if at <= cycle => count as usize,
            _ => 0,
        };
        let mut prior_joins = 0usize;
        for &i in &order {
            let e = &self.events[i];
            let population = initial_nodes + mass(e.at) + prior_joins;
            let check = |id: NodeId, what: &str| {
                if (id as usize) < population {
                    Ok(())
                } else {
                    Err(format!(
                        "{what} {id} is out of range at cycle {} (population {population})",
                        e.at
                    ))
                }
            };
            match e.event {
                Event::JoinClone { reference } => {
                    check(reference, "join reference")?;
                    prior_joins += 1;
                }
                Event::SwapInterests { a, b } => {
                    check(a, "swap node")?;
                    check(b, "swap node")?;
                }
                Event::ResetNode { node } => {
                    check(node, "reset node")?;
                    if population < 2 {
                        return Err(format!(
                            "reset at cycle {} needs a rejoin contact (population 1)",
                            e.at
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------------

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::object(entries)
}

fn num(n: impl Into<f64>) -> Value {
    Value::Number(n.into())
}

fn string(s: &str) -> Value {
    Value::String(s.to_string())
}

impl Workload {
    pub fn to_json(&self) -> Value {
        match *self {
            Workload::Uniform => obj(vec![("kind", string("uniform"))]),
            Workload::FlashCrowd { at, fraction } => obj(vec![
                ("kind", string("flash_crowd")),
                ("at", num(at)),
                ("fraction", num(fraction)),
            ]),
            Workload::Diurnal { period, amplitude } => obj(vec![
                ("kind", string("diurnal")),
                ("period", num(period)),
                ("amplitude", num(amplitude)),
            ]),
            Workload::TopicHotspot { topic, at, span } => obj(vec![
                ("kind", string("topic_hotspot")),
                ("topic", num(topic)),
                ("at", num(at)),
                ("span", num(span)),
            ]),
        }
    }
}

impl LossModel {
    pub fn to_json(&self) -> Value {
        match *self {
            LossModel::Constant { p } => obj(vec![("kind", string("constant")), ("p", num(p))]),
            LossModel::GilbertElliott {
                p_good,
                p_bad,
                good_to_bad,
                bad_to_good,
            } => obj(vec![
                ("kind", string("gilbert_elliott")),
                ("p_good", num(p_good)),
                ("p_bad", num(p_bad)),
                ("good_to_bad", num(good_to_bad)),
                ("bad_to_good", num(bad_to_good)),
            ]),
            LossModel::Partition {
                from,
                until,
                frontier,
            } => obj(vec![
                ("kind", string("partition")),
                ("from", num(from)),
                ("until", num(until)),
                ("frontier", num(frontier)),
            ]),
        }
    }
}

impl ChurnModel {
    pub fn to_json(&self) -> Value {
        match *self {
            ChurnModel::None => obj(vec![("kind", string("none"))]),
            ChurnModel::Uniform { per_cycle } => obj(vec![
                ("kind", string("uniform")),
                ("per_cycle", num(per_cycle)),
            ]),
            ChurnModel::CrashWave { at, fraction } => obj(vec![
                ("kind", string("crash_wave")),
                ("at", num(at)),
                ("fraction", num(fraction)),
            ]),
            ChurnModel::MassJoin { at, count } => obj(vec![
                ("kind", string("mass_join")),
                ("at", num(at)),
                ("count", num(count)),
            ]),
        }
    }
}

impl TimedEvent {
    pub fn to_json(&self) -> Value {
        let mut entries = vec![("at", num(self.at))];
        match self.event {
            Event::JoinClone { reference } => {
                entries.push(("kind", string("join_clone")));
                entries.push(("reference", num(reference)));
            }
            Event::SwapInterests { a, b } => {
                entries.push(("kind", string("swap_interests")));
                entries.push(("a", num(a)));
                entries.push(("b", num(b)));
            }
            Event::ResetNode { node } => {
                entries.push(("kind", string("reset_node")));
                entries.push(("node", num(node)));
            }
        }
        obj(entries)
    }
}

impl Anchor {
    pub fn to_json(&self) -> Value {
        match *self {
            Anchor::Cycle { at } => obj(vec![("kind", string("cycle")), ("at", num(at))]),
            Anchor::CrashWave => obj(vec![("kind", string("crash_wave"))]),
            Anchor::MassJoin => obj(vec![("kind", string("mass_join"))]),
            Anchor::FlashCrowd => obj(vec![("kind", string("flash_crowd"))]),
            Anchor::PartitionStart => obj(vec![("kind", string("partition_start"))]),
            Anchor::PartitionEnd => obj(vec![("kind", string("partition_end"))]),
            Anchor::Event { index } => obj(vec![
                ("kind", string("event")),
                ("index", num(index as u32)),
            ]),
        }
    }
}

impl Measurement {
    pub fn to_json(&self) -> Value {
        let mut entries = vec![("name", string(&self.name))];
        match self.window {
            WindowSpec::Cycles { from, until } => {
                entries.push(("kind", string("cycles")));
                entries.push(("from", num(from)));
                entries.push(("until", num(until)));
            }
            WindowSpec::Recovery { anchor, baseline } => {
                entries.push(("kind", string("recovery")));
                entries.push(("anchor", anchor.to_json()));
                entries.push(("baseline", num(baseline)));
            }
        }
        obj(entries)
    }
}

impl Scenario {
    pub fn to_json(&self) -> Value {
        obj(vec![
            ("workload", self.workload.to_json()),
            (
                "environment",
                obj(vec![
                    ("loss", self.environment.loss.to_json()),
                    ("churn", self.environment.churn.to_json()),
                ]),
            ),
            (
                "events",
                Value::Array(self.events.iter().map(TimedEvent::to_json).collect()),
            ),
            (
                "measurements",
                Value::Array(self.measurements.iter().map(Measurement::to_json).collect()),
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// JSON decoding
// ---------------------------------------------------------------------------

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, Error> {
    v.get(key)
        .ok_or_else(|| Error::new(format!("missing field {key:?}")))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, Error> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| Error::new(format!("field {key:?} must be a number")))
}

fn u32_field(v: &Value, key: &str) -> Result<u32, Error> {
    field(v, key)?
        .as_u64()
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| Error::new(format!("field {key:?} must be a u32")))
}

fn kind_of(v: &Value) -> Result<&str, Error> {
    field(v, "kind")?
        .as_str()
        .ok_or_else(|| Error::new("field \"kind\" must be a string"))
}

impl Deserialize for Workload {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match kind_of(v)? {
            "uniform" => Ok(Workload::Uniform),
            "flash_crowd" => Ok(Workload::FlashCrowd {
                at: u32_field(v, "at")?,
                fraction: f64_field(v, "fraction")?,
            }),
            "diurnal" => Ok(Workload::Diurnal {
                period: u32_field(v, "period")?,
                amplitude: f64_field(v, "amplitude")?,
            }),
            "topic_hotspot" => Ok(Workload::TopicHotspot {
                topic: u32_field(v, "topic")?,
                at: u32_field(v, "at")?,
                span: u32_field(v, "span")?,
            }),
            other => Err(Error::new(format!("unknown workload kind {other:?}"))),
        }
    }
}

impl Deserialize for LossModel {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match kind_of(v)? {
            "constant" => Ok(LossModel::Constant {
                p: f64_field(v, "p")?,
            }),
            "gilbert_elliott" => Ok(LossModel::GilbertElliott {
                p_good: f64_field(v, "p_good")?,
                p_bad: f64_field(v, "p_bad")?,
                good_to_bad: f64_field(v, "good_to_bad")?,
                bad_to_good: f64_field(v, "bad_to_good")?,
            }),
            "partition" => Ok(LossModel::Partition {
                from: u32_field(v, "from")?,
                until: u32_field(v, "until")?,
                frontier: f64_field(v, "frontier")?,
            }),
            other => Err(Error::new(format!("unknown loss kind {other:?}"))),
        }
    }
}

impl Deserialize for ChurnModel {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match kind_of(v)? {
            "none" => Ok(ChurnModel::None),
            "uniform" => Ok(ChurnModel::Uniform {
                per_cycle: f64_field(v, "per_cycle")?,
            }),
            "crash_wave" => Ok(ChurnModel::CrashWave {
                at: u32_field(v, "at")?,
                fraction: f64_field(v, "fraction")?,
            }),
            "mass_join" => Ok(ChurnModel::MassJoin {
                at: u32_field(v, "at")?,
                count: u32_field(v, "count")?,
            }),
            other => Err(Error::new(format!("unknown churn kind {other:?}"))),
        }
    }
}

impl Deserialize for TimedEvent {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let at = u32_field(v, "at")?;
        let event = match kind_of(v)? {
            "join_clone" => Event::JoinClone {
                reference: u32_field(v, "reference")?,
            },
            "swap_interests" => Event::SwapInterests {
                a: u32_field(v, "a")?,
                b: u32_field(v, "b")?,
            },
            "reset_node" => Event::ResetNode {
                node: u32_field(v, "node")?,
            },
            other => return Err(Error::new(format!("unknown event kind {other:?}"))),
        };
        Ok(TimedEvent { at, event })
    }
}

impl Deserialize for Anchor {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(match kind_of(v)? {
            "cycle" => Anchor::Cycle {
                at: u32_field(v, "at")?,
            },
            "crash_wave" => Anchor::CrashWave,
            "mass_join" => Anchor::MassJoin,
            "flash_crowd" => Anchor::FlashCrowd,
            "partition_start" => Anchor::PartitionStart,
            "partition_end" => Anchor::PartitionEnd,
            "event" => Anchor::Event {
                index: u32_field(v, "index")? as usize,
            },
            other => return Err(Error::new(format!("unknown anchor kind {other:?}"))),
        })
    }
}

impl Deserialize for Measurement {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let name = field(v, "name")?
            .as_str()
            .ok_or_else(|| Error::new("field \"name\" must be a string"))?
            .to_string();
        let window = match kind_of(v)? {
            "cycles" => WindowSpec::Cycles {
                from: u32_field(v, "from")?,
                until: u32_field(v, "until")?,
            },
            "recovery" => WindowSpec::Recovery {
                anchor: Anchor::from_json_value(field(v, "anchor")?)?,
                baseline: u32_field(v, "baseline")?,
            },
            other => return Err(Error::new(format!("unknown measurement kind {other:?}"))),
        };
        Ok(Measurement { name, window })
    }
}

impl Deserialize for Scenario {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let environment = field(v, "environment")?;
        Ok(Scenario {
            workload: Workload::from_json_value(field(v, "workload")?)?,
            environment: Environment {
                loss: LossModel::from_json_value(field(environment, "loss")?)?,
                churn: ChurnModel::from_json_value(field(environment, "churn")?)?,
            },
            events: match v.get("events") {
                None => Vec::new(),
                Some(events) => Vec::<TimedEvent>::from_json_value(events)?,
            },
            measurements: match v.get("measurements") {
                None => Vec::new(),
                Some(ms) => Vec::<Measurement>::from_json_value(ms)?,
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Protocol / SimConfig / dataset recipe codecs (the scenario-file surface)
// ---------------------------------------------------------------------------

impl Protocol {
    pub fn to_json(&self) -> Value {
        match *self {
            Protocol::WhatsUp { f_like } => obj(vec![
                ("kind", string("whatsup")),
                ("f_like", num(f_like as u32)),
            ]),
            Protocol::WhatsUpCos { f_like } => obj(vec![
                ("kind", string("whatsup_cos")),
                ("f_like", num(f_like as u32)),
            ]),
            Protocol::CfWup { k } => obj(vec![("kind", string("cf_wup")), ("k", num(k as u32))]),
            Protocol::CfCos { k } => obj(vec![("kind", string("cf_cos")), ("k", num(k as u32))]),
            Protocol::Gossip { fanout } => obj(vec![
                ("kind", string("gossip")),
                ("fanout", num(fanout as u32)),
            ]),
            Protocol::Cascade => obj(vec![("kind", string("cascade"))]),
            Protocol::CPubSub => obj(vec![("kind", string("c_pub_sub"))]),
            Protocol::CWhatsUp { f_like } => obj(vec![
                ("kind", string("c_whatsup")),
                ("f_like", num(f_like as u32)),
            ]),
            Protocol::NoAmplification { fanout } => obj(vec![
                ("kind", string("no_amplification")),
                ("fanout", num(fanout as u32)),
            ]),
            Protocol::NoOrientation { f_like } => obj(vec![
                ("kind", string("no_orientation")),
                ("f_like", num(f_like as u32)),
            ]),
            Protocol::AntiEntropy { fanout } => obj(vec![
                ("kind", string("anti_entropy")),
                ("fanout", num(fanout as u32)),
            ]),
        }
    }
}

impl Deserialize for Protocol {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let usize_field = |key: &str| u32_field(v, key).map(|n| n as usize);
        Ok(match kind_of(v)? {
            "whatsup" => Protocol::WhatsUp {
                f_like: usize_field("f_like")?,
            },
            "whatsup_cos" => Protocol::WhatsUpCos {
                f_like: usize_field("f_like")?,
            },
            "cf_wup" => Protocol::CfWup {
                k: usize_field("k")?,
            },
            "cf_cos" => Protocol::CfCos {
                k: usize_field("k")?,
            },
            "gossip" => Protocol::Gossip {
                fanout: usize_field("fanout")?,
            },
            "cascade" => Protocol::Cascade,
            "c_pub_sub" => Protocol::CPubSub,
            "c_whatsup" => Protocol::CWhatsUp {
                f_like: usize_field("f_like")?,
            },
            "no_amplification" => Protocol::NoAmplification {
                fanout: usize_field("fanout")?,
            },
            "no_orientation" => Protocol::NoOrientation {
                f_like: usize_field("f_like")?,
            },
            "anti_entropy" => Protocol::AntiEntropy {
                fanout: usize_field("fanout")?,
            },
            other => return Err(Error::new(format!("unknown protocol kind {other:?}"))),
        })
    }
}

impl SimConfig {
    pub fn to_json(&self) -> Value {
        let opt_num = |o: Option<f64>| o.map(Value::Number).unwrap_or(Value::Null);
        obj(vec![
            ("cycles", num(self.cycles)),
            ("publish_from", num(self.publish_from)),
            ("measure_from", num(self.measure_from)),
            ("loss", num(self.loss)),
            ("seed", num(self.seed as f64)),
            ("bootstrap_degree", num(self.bootstrap_degree as u32)),
            (
                "profile_window",
                opt_num(self.profile_window.map(f64::from)),
            ),
            ("ttl_override", opt_num(self.ttl_override.map(f64::from))),
            (
                "wup_view_override",
                opt_num(self.wup_view_override.map(|v| v as f64)),
            ),
            ("obfuscation", opt_num(self.obfuscation)),
            ("churn_per_cycle", num(self.churn_per_cycle)),
            ("collect_series", Value::Bool(self.collect_series)),
            ("shards", num(self.shards as u32)),
            ("datagram_budget", num(self.datagram_budget as u32)),
            ("phi_threshold", num(self.phi_threshold)),
            ("down_cycles", num(self.down_cycles)),
        ])
    }
}

/// Partial decode: any missing field keeps its [`SimConfig::default`].
impl Deserialize for SimConfig {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let mut cfg = SimConfig::default();
        let set_u32 = |slot: &mut u32, key: &str| -> Result<(), Error> {
            if let Some(val) = v.get(key) {
                *slot = val
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| Error::new(format!("field {key:?} must be a u32")))?;
            }
            Ok(())
        };
        set_u32(&mut cfg.cycles, "cycles")?;
        set_u32(&mut cfg.publish_from, "publish_from")?;
        set_u32(&mut cfg.measure_from, "measure_from")?;
        if let Some(val) = v.get("loss") {
            cfg.loss = val
                .as_f64()
                .ok_or_else(|| Error::new("field \"loss\" must be a number"))?;
        }
        if let Some(val) = v.get("seed") {
            cfg.seed = val
                .as_u64()
                .ok_or_else(|| Error::new("field \"seed\" must be a non-negative integer"))?;
        }
        if let Some(val) = v.get("bootstrap_degree") {
            cfg.bootstrap_degree = val
                .as_u64()
                .ok_or_else(|| Error::new("field \"bootstrap_degree\" must be an integer"))?
                as usize;
        }
        // Optional overrides: absent or null = None; anything else must be
        // an in-range number (a typo'd string or out-of-range value must
        // not silently run with defaults).
        let opt_int = |key: &str, max: u64| -> Result<Option<u64>, Error> {
            match v.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(val) => val.as_u64().filter(|&n| n <= max).map(Some).ok_or_else(|| {
                    Error::new(format!("field {key:?} must be an integer ≤ {max} or null"))
                }),
            }
        };
        cfg.profile_window = opt_int("profile_window", u64::from(u32::MAX))?.map(|n| n as u32);
        cfg.ttl_override = opt_int("ttl_override", u64::from(u8::MAX))?.map(|n| n as u8);
        cfg.wup_view_override = opt_int("wup_view_override", u32::MAX as u64)?.map(|n| n as usize);
        cfg.obfuscation = match v.get("obfuscation") {
            None | Some(Value::Null) => None,
            Some(val) => Some(
                val.as_f64()
                    .ok_or_else(|| Error::new("field \"obfuscation\" must be a number or null"))?,
            ),
        };
        if let Some(val) = v.get("churn_per_cycle") {
            cfg.churn_per_cycle = val
                .as_f64()
                .ok_or_else(|| Error::new("field \"churn_per_cycle\" must be a number"))?;
        }
        if let Some(val) = v.get("collect_series") {
            cfg.collect_series = val
                .as_bool()
                .ok_or_else(|| Error::new("field \"collect_series\" must be a boolean"))?;
        }
        if let Some(val) = v.get("shards") {
            cfg.shards = val
                .as_u64()
                .ok_or_else(|| Error::new("field \"shards\" must be an integer"))?
                as usize;
        }
        if let Some(val) = v.get("datagram_budget") {
            cfg.datagram_budget = val
                .as_u64()
                .ok_or_else(|| Error::new("field \"datagram_budget\" must be an integer"))?
                as usize;
        }
        if let Some(val) = v.get("phi_threshold") {
            cfg.phi_threshold = val
                .as_f64()
                .ok_or_else(|| Error::new("field \"phi_threshold\" must be a number"))?;
        }
        set_u32(&mut cfg.down_cycles, "down_cycles")?;
        Ok(cfg)
    }
}

/// A reproducible dataset: generator kind + scale + seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetRecipe {
    pub kind: DatasetKind,
    pub scale: f64,
    pub seed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    Survey,
    Digg,
    Synthetic,
}

impl DatasetRecipe {
    /// Generates the dataset this recipe describes.
    pub fn build(&self) -> Dataset {
        match self.kind {
            DatasetKind::Survey => {
                survey::generate(&SurveyConfig::paper().scaled(self.scale), self.seed)
            }
            DatasetKind::Digg => digg::generate(&DiggConfig::paper().scaled(self.scale), self.seed),
            DatasetKind::Synthetic => {
                synthetic::generate(&SyntheticConfig::paper().scaled(self.scale), self.seed)
            }
        }
    }

    pub fn to_json(&self) -> Value {
        let kind = match self.kind {
            DatasetKind::Survey => "survey",
            DatasetKind::Digg => "digg",
            DatasetKind::Synthetic => "synthetic",
        };
        obj(vec![
            ("kind", string(kind)),
            ("scale", num(self.scale)),
            ("seed", num(self.seed as f64)),
        ])
    }
}

impl Deserialize for DatasetRecipe {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let kind = match kind_of(v)? {
            "survey" => DatasetKind::Survey,
            "digg" => DatasetKind::Digg,
            "synthetic" => DatasetKind::Synthetic,
            other => return Err(Error::new(format!("unknown dataset kind {other:?}"))),
        };
        Ok(DatasetRecipe {
            kind,
            scale: f64_field(v, "scale")?,
            seed: field(v, "seed")?
                .as_u64()
                .ok_or_else(|| Error::new("field \"seed\" must be a non-negative integer"))?,
        })
    }
}

/// Everything the `whatsup-sim` CLI needs to execute one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioFile {
    pub dataset: DatasetRecipe,
    pub protocol: Protocol,
    pub config: SimConfig,
    pub scenario: Scenario,
}

impl ScenarioFile {
    pub fn to_json(&self) -> Value {
        obj(vec![
            ("dataset", self.dataset.to_json()),
            ("protocol", self.protocol.to_json()),
            ("config", self.config.to_json()),
            ("scenario", self.scenario.to_json()),
        ])
    }

    /// Parses a scenario file and validates it.
    pub fn from_json_str(text: &str) -> Result<Self, Error> {
        let file: ScenarioFile = serde_json::from_str(text)?;
        file.scenario.validate(&file.config).map_err(Error::new)?;
        file.config.validate().map_err(Error::new)?;
        Ok(file)
    }
}

impl Deserialize for ScenarioFile {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let config = match v.get("config") {
            None => SimConfig::default(),
            Some(cfg) => SimConfig::from_json_value(cfg)?,
        };
        // No explicit scenario block = the scenario the config describes
        // (its loss/churn knobs must not be silently discarded — the
        // library path without `.scenario()` resolves the same way).
        let scenario = match v.get("scenario") {
            None => Scenario::from_config(&config),
            Some(s) => Scenario::from_json_value(s)?,
        };
        Ok(ScenarioFile {
            dataset: DatasetRecipe::from_json_value(field(v, "dataset")?)?,
            protocol: Protocol::from_json_value(field(v, "protocol")?)?,
            config,
            scenario,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            cycles: 20,
            publish_from: 4,
            measure_from: 8,
            ..Default::default()
        }
    }

    #[test]
    fn uniform_matches_legacy_schedule() {
        let c = cfg();
        let topics = vec![0u32; 50];
        assert_eq!(Workload::Uniform.schedule(&c, &topics), c.schedule(50));
    }

    #[test]
    fn flash_crowd_concentrates_a_fraction() {
        let c = cfg();
        let topics = vec![0u32; 100];
        let s = Workload::FlashCrowd {
            at: 10,
            fraction: 0.25,
        }
        .schedule(&c, &topics);
        let burst = s.iter().filter(|&&x| x == 10).count();
        assert!(
            (20..=35).contains(&burst),
            "≈25% of items must hit the burst cycle, got {burst}"
        );
        assert!(s.iter().all(|&x| (4..20).contains(&x)));
    }

    #[test]
    fn diurnal_peaks_beat_troughs() {
        let c = SimConfig {
            cycles: 28,
            publish_from: 4,
            measure_from: 8,
            ..Default::default()
        };
        let topics = vec![0u32; 600];
        let s = Workload::Diurnal {
            period: 24,
            amplitude: 0.9,
        }
        .schedule(&c, &topics);
        assert!(s.windows(2).all(|w| w[0] <= w[1]), "monotone in item index");
        assert!(s.iter().all(|&x| (4..28).contains(&x)));
        // First half-period (rising sine) must out-publish the second.
        let peak: usize = s.iter().filter(|&&x| x < 16).count();
        assert!(peak > 350, "peak half got {peak}/600");
    }

    #[test]
    fn topic_hotspot_clusters_its_topic() {
        let c = cfg();
        let topics: Vec<u32> = (0..90).map(|i| i % 3).collect();
        let s = Workload::TopicHotspot {
            topic: 1,
            at: 12,
            span: 2,
        }
        .schedule(&c, &topics);
        for (i, &cycle) in s.iter().enumerate() {
            if topics[i] == 1 {
                assert!((12..14).contains(&cycle), "hot item at {cycle}");
            }
        }
        // Other topics keep the uniform slots.
        let uniform = c.schedule(90);
        for (i, &cycle) in s.iter().enumerate() {
            if topics[i] != 1 {
                assert_eq!(cycle, uniform[i]);
            }
        }
    }

    #[test]
    fn crash_rate_and_joins_fire_on_schedule() {
        let wave = ChurnModel::CrashWave {
            at: 7,
            fraction: 0.3,
        };
        assert_eq!(wave.crash_rate(6), 0.0);
        assert_eq!(wave.crash_rate(7), 0.3);
        assert_eq!(wave.crash_rate(8), 0.0);
        let join = ChurnModel::MassJoin { at: 5, count: 4 };
        assert_eq!(join.joins_at(5), 4);
        assert_eq!(join.joins_at(6), 0);
        assert_eq!(ChurnModel::Uniform { per_cycle: 0.1 }.crash_rate(99), 0.1);
    }

    #[test]
    fn from_config_mirrors_legacy_knobs() {
        let c = SimConfig {
            loss: 0.2,
            churn_per_cycle: 0.05,
            ..cfg()
        };
        let s = Scenario::from_config(&c);
        assert_eq!(s.workload, Workload::Uniform);
        assert_eq!(s.environment.loss, LossModel::Constant { p: 0.2 });
        assert_eq!(s.environment.churn, ChurnModel::Uniform { per_cycle: 0.05 });
        assert!(s.events.is_empty());
        assert!(s.validate(&c).is_ok());
    }

    #[test]
    fn validation_rejects_bad_models() {
        let c = cfg();
        let bad_fraction = Scenario::default().with_workload(Workload::FlashCrowd {
            at: 5,
            fraction: 0.0,
        });
        assert!(bad_fraction.validate(&c).is_err());
        let bad_loss = Scenario::default().with_environment(Environment {
            loss: LossModel::Constant { p: 1.5 },
            churn: ChurnModel::None,
        });
        assert!(bad_loss.validate(&c).is_err());
        let late_event = Scenario::default().with_events(vec![TimedEvent {
            at: 99,
            event: Event::ResetNode { node: 0 },
        }]);
        assert!(late_event.validate(&c).is_err());
        let bad_frontier = Scenario::default().with_environment(Environment {
            loss: LossModel::Partition {
                from: 2,
                until: 6,
                frontier: 1.0,
            },
            churn: ChurnModel::None,
        });
        assert!(bad_frontier.validate(&c).is_err());
    }

    #[test]
    fn optional_config_fields_reject_garbage() {
        let base = r#"{"dataset": {"kind": "survey", "scale": 0.1, "seed": 1},
                       "protocol": {"kind": "whatsup", "f_like": 4},
                       "config": {"cycles": 30, CONFIG}}"#;
        let with = |extra: &str| ScenarioFile::from_json_str(&base.replace("CONFIG", extra));
        assert!(with(r#""ttl_override": 4"#).is_ok());
        assert!(with(r#""ttl_override": null"#).is_ok());
        assert!(with(r#""ttl_override": 300"#).is_err(), "u8 overflow");
        assert!(with(r#""ttl_override": "4""#).is_err(), "string typo");
        assert!(with(r#""obfuscation": "0.5""#).is_err(), "string typo");
        assert!(with(r#""profile_window": 13"#).is_ok());
    }

    #[test]
    fn missing_scenario_block_inherits_the_config_knobs() {
        // Without an explicit scenario, the config's loss/churn knobs must
        // become the scenario — exactly like the library path without
        // `.scenario()`.
        let file = ScenarioFile::from_json_str(
            r#"{"dataset": {"kind": "survey", "scale": 0.1, "seed": 1},
                "protocol": {"kind": "whatsup", "f_like": 4},
                "config": {"cycles": 30, "loss": 0.3, "churn_per_cycle": 0.05}}"#,
        )
        .unwrap();
        assert_eq!(file.scenario, Scenario::from_config(&file.config));
        assert_eq!(
            file.scenario.environment.loss,
            LossModel::Constant { p: 0.3 }
        );
        assert_eq!(
            file.scenario.environment.churn,
            ChurnModel::Uniform { per_cycle: 0.05 }
        );
    }

    #[test]
    fn global_engines_reject_inexpressible_scenarios() {
        let global = Protocol::CPubSub;
        let node = Protocol::WhatsUp { f_like: 4 };
        let with_events = Scenario::default().with_events(vec![TimedEvent {
            at: 2,
            event: Event::ResetNode { node: 0 },
        }]);
        assert!(with_events.validate_for_global(&global).is_err());
        assert!(with_events.validate_for_global(&node).is_ok());
        let bursty = Scenario::default().with_environment(Environment {
            loss: LossModel::GilbertElliott {
                p_good: 0.0,
                p_bad: 0.5,
                good_to_bad: 0.1,
                bad_to_good: 0.5,
            },
            churn: ChurnModel::None,
        });
        assert!(bursty.validate_for_global(&global).is_err());
        // The legacy config knobs stay expressible (engines document
        // ignoring them).
        let legacy = Scenario::from_config(&SimConfig {
            loss: 0.2,
            churn_per_cycle: 0.05,
            ..cfg()
        });
        assert!(legacy.validate_for_global(&global).is_ok());
    }

    #[test]
    fn partition_windows_must_open_inside_the_run() {
        let c = cfg();
        let window = |from: u32, until: u32| {
            Scenario::default()
                .with_environment(Environment {
                    loss: LossModel::Partition {
                        from,
                        until,
                        frontier: 0.5,
                    },
                    churn: ChurnModel::None,
                })
                .validate(&c)
        };
        assert!(window(5, 10).is_ok());
        assert!(window(10, 10).is_err(), "empty window");
        assert!(window(12, 8).is_err(), "inverted window");
        assert!(window(25, 30).is_err(), "opens after the run ends");
    }

    #[test]
    fn event_ids_are_checked_against_the_running_population() {
        // 10 initial nodes; node 10 only exists after a join.
        let bad = Scenario::default().with_events(vec![TimedEvent {
            at: 3,
            event: Event::ResetNode { node: 10 },
        }]);
        assert!(bad.validate_events(10).is_err());
        let grown = Scenario::default().with_events(vec![
            TimedEvent {
                at: 2,
                event: Event::JoinClone { reference: 9 },
            },
            TimedEvent {
                at: 3,
                event: Event::SwapInterests { a: 10, b: 0 },
            },
        ]);
        assert!(grown.validate_events(10).is_ok(), "joiner id usable later");
        // A mass join at cycle 2 makes ids 10..15 valid from cycle 2 on.
        let massed = Scenario::default()
            .with_environment(Environment {
                loss: LossModel::Constant { p: 0.0 },
                churn: ChurnModel::MassJoin { at: 2, count: 5 },
            })
            .with_events(vec![TimedEvent {
                at: 2,
                event: Event::ResetNode { node: 14 },
            }]);
        assert!(massed.validate_events(10).is_ok());
        let too_early = Scenario::default()
            .with_environment(Environment {
                loss: LossModel::Constant { p: 0.0 },
                churn: ChurnModel::MassJoin { at: 5, count: 5 },
            })
            .with_events(vec![TimedEvent {
                at: 2,
                event: Event::ResetNode { node: 14 },
            }]);
        assert!(too_early.validate_events(10).is_err());
    }

    #[test]
    fn scenario_json_round_trips() {
        let scenario = Scenario {
            workload: Workload::FlashCrowd {
                at: 6,
                fraction: 0.3,
            },
            environment: Environment {
                loss: LossModel::GilbertElliott {
                    p_good: 0.02,
                    p_bad: 0.45,
                    good_to_bad: 0.15,
                    bad_to_good: 0.5,
                },
                churn: ChurnModel::CrashWave {
                    at: 8,
                    fraction: 0.12,
                },
            },
            events: vec![
                TimedEvent {
                    at: 6,
                    event: Event::JoinClone { reference: 0 },
                },
                TimedEvent {
                    at: 7,
                    event: Event::SwapInterests { a: 1, b: 2 },
                },
                TimedEvent {
                    at: 9,
                    event: Event::ResetNode { node: 3 },
                },
            ],
            measurements: vec![
                Measurement {
                    name: "steady".into(),
                    window: WindowSpec::Cycles { from: 3, until: 8 },
                },
                Measurement {
                    name: "crash".into(),
                    window: WindowSpec::Recovery {
                        anchor: Anchor::CrashWave,
                        baseline: 3,
                    },
                },
                Measurement {
                    name: "second_event".into(),
                    window: WindowSpec::Recovery {
                        anchor: Anchor::Event { index: 1 },
                        baseline: 2,
                    },
                },
            ],
        };
        let text = scenario.to_json().pretty();
        let back: Scenario = serde_json::from_str(&text).unwrap();
        assert_eq!(back, scenario);
    }

    #[test]
    fn anchors_resolve_against_the_scenario() {
        let scenario = Scenario {
            workload: Workload::FlashCrowd {
                at: 6,
                fraction: 0.5,
            },
            environment: Environment {
                loss: LossModel::Partition {
                    from: 4,
                    until: 9,
                    frontier: 0.5,
                },
                churn: ChurnModel::CrashWave {
                    at: 8,
                    fraction: 0.2,
                },
            },
            events: vec![TimedEvent {
                at: 11,
                event: Event::ResetNode { node: 0 },
            }],
            measurements: Vec::new(),
        };
        assert_eq!(Anchor::Cycle { at: 3 }.resolve(&scenario), Some(3));
        assert_eq!(Anchor::CrashWave.resolve(&scenario), Some(8));
        assert_eq!(Anchor::FlashCrowd.resolve(&scenario), Some(6));
        assert_eq!(Anchor::PartitionStart.resolve(&scenario), Some(4));
        assert_eq!(Anchor::PartitionEnd.resolve(&scenario), Some(9));
        assert_eq!(Anchor::Event { index: 0 }.resolve(&scenario), Some(11));
        assert_eq!(Anchor::Event { index: 1 }.resolve(&scenario), None);
        assert_eq!(Anchor::MassJoin.resolve(&scenario), None);
    }

    #[test]
    fn measurement_validation_rejects_bad_windows() {
        let c = cfg();
        let with = |m: Measurement| Scenario::default().with_measurements(vec![m]);
        // Empty range.
        assert!(with(Measurement {
            name: "w".into(),
            window: WindowSpec::Cycles { from: 5, until: 5 },
        })
        .validate(&c)
        .is_err());
        // Out of the run.
        assert!(with(Measurement {
            name: "w".into(),
            window: WindowSpec::Cycles {
                from: 25,
                until: 30
            },
        })
        .validate(&c)
        .is_err());
        // Unresolvable anchor (no crash wave in the default environment).
        assert!(with(Measurement {
            name: "w".into(),
            window: WindowSpec::Recovery {
                anchor: Anchor::CrashWave,
                baseline: 2,
            },
        })
        .validate(&c)
        .is_err());
        // Zero-cycle baseline.
        assert!(with(Measurement {
            name: "w".into(),
            window: WindowSpec::Recovery {
                anchor: Anchor::Cycle { at: 5 },
                baseline: 0,
            },
        })
        .validate(&c)
        .is_err());
        // Empty and duplicate names.
        assert!(with(Measurement {
            name: String::new(),
            window: WindowSpec::Cycles { from: 0, until: 5 },
        })
        .validate(&c)
        .is_err());
        let dup = Scenario::default().with_measurements(vec![
            Measurement {
                name: "w".into(),
                window: WindowSpec::Cycles { from: 0, until: 5 },
            },
            Measurement {
                name: "w".into(),
                window: WindowSpec::Cycles { from: 5, until: 9 },
            },
        ]);
        assert!(dup.validate(&c).is_err());
        // Measurements without the series to measure on.
        let off = SimConfig {
            collect_series: false,
            ..c.clone()
        };
        let good = with(Measurement {
            name: "w".into(),
            window: WindowSpec::Cycles { from: 0, until: 5 },
        });
        assert!(good.validate(&c).is_ok());
        assert!(good.validate(&off).is_err());
        // And not on the global engines.
        assert!(good.validate_for_global(&Protocol::CPubSub).is_err());
        assert!(good
            .validate_for_global(&Protocol::WhatsUp { f_like: 4 })
            .is_ok());
    }

    #[test]
    fn scenario_file_round_trips_and_validates() {
        let file = ScenarioFile {
            dataset: DatasetRecipe {
                kind: DatasetKind::Survey,
                scale: 0.08,
                seed: 11,
            },
            protocol: Protocol::WhatsUp { f_like: 4 },
            config: SimConfig {
                cycles: 14,
                publish_from: 2,
                measure_from: 5,
                ..Default::default()
            },
            scenario: Scenario::default().with_workload(Workload::FlashCrowd {
                at: 6,
                fraction: 0.3,
            }),
        };
        let text = file.to_json().pretty();
        let back = ScenarioFile::from_json_str(&text).unwrap();
        assert_eq!(back, file);
        // A partial config keeps defaults for the missing fields.
        let partial: ScenarioFile = ScenarioFile::from_json_str(
            r#"{"dataset": {"kind": "digg", "scale": 0.1, "seed": 3},
                "protocol": {"kind": "gossip", "fanout": 5},
                "config": {"cycles": 30}}"#,
        )
        .unwrap();
        assert_eq!(partial.config.cycles, 30);
        assert_eq!(
            partial.config.measure_from,
            SimConfig::default().measure_from
        );
        assert_eq!(partial.scenario, Scenario::default());
    }

    #[test]
    fn malformed_scenarios_are_rejected() {
        assert!(serde_json::from_str::<Scenario>("{}").is_err());
        assert!(
            serde_json::from_str::<Workload>(r#"{"kind": "surprise"}"#).is_err(),
            "unknown kinds must fail"
        );
        assert!(
            ScenarioFile::from_json_str(
                r#"{"dataset": {"kind": "survey", "scale": 0.1, "seed": 1},
                    "protocol": {"kind": "whatsup", "f_like": 4},
                    "config": {"cycles": 10, "measure_from": 12}}"#
            )
            .is_err(),
            "file-level validation must run"
        );
    }
}
