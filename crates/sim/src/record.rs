//! Per-item dissemination records and the aggregated simulation report.

use serde::{Deserialize, Serialize};
use whatsup_metrics::{IrAggregate, IrScores, ItemOutcome};

/// Everything the evaluation needs to know about one item's dissemination.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ItemRecord {
    /// Dataset index of the item.
    pub index: u32,
    /// Cycle the item was published at.
    pub published_at: u32,
    /// Ground-truth interested nodes at publication time (excluding source).
    pub interested: u32,
    /// Nodes that received the item at least once (excluding source).
    pub reached: u32,
    /// Interested nodes among the reached.
    pub hits: u32,
    /// News copies sent for this item (including lost ones — the paper's
    /// "number of sent messages").
    pub news_sent: u64,
    /// Dislike-counter value carried by the copy that first reached each
    /// node that *liked* the item (Table IV's distribution).
    pub dislikes_at_liked_reception: Vec<u8>,
    /// `(hop, by_like)` for every forwarding action (Fig. 6 "Forward by …").
    /// The hop is the distance of the forwarding node from the source.
    pub forward_hops: Vec<(u16, bool)>,
    /// `(hop, by_like)` for every first reception (Fig. 6 "Infection by …"),
    /// classified by the *sender's* opinion.
    pub infection_hops: Vec<(u16, bool)>,
    /// Whether this item counts towards the reported metrics (published
    /// after the measurement threshold).
    pub measured: bool,
}

impl ItemRecord {
    pub fn outcome(&self) -> ItemOutcome {
        ItemOutcome::new(
            self.interested as usize,
            self.reached as usize,
            self.hits as usize,
        )
    }
}

/// Per-node delivery counters over measured items (Fig. 11 needs per-user
/// precision/recall).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeIr {
    /// Measured items delivered to this node (first receptions).
    pub received: u64,
    /// Measured items delivered that the node liked.
    pub hits: u64,
    /// Measured items the node was interested in (and did not publish).
    pub interested: u64,
}

impl NodeIr {
    /// This user's own precision/recall/F1 over the workload.
    pub fn scores(&self) -> IrScores {
        let precision = if self.received == 0 {
            0.0
        } else {
            self.hits as f64 / self.received as f64
        };
        let recall = if self.interested == 0 {
            0.0
        } else {
            self.hits as f64 / self.interested as f64
        };
        IrScores::from_pr(precision, recall)
    }
}

/// Aggregated result of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    pub protocol: String,
    pub dataset: String,
    /// Fanout knob of the run, when the protocol has one.
    pub fanout: Option<usize>,
    pub n_nodes: usize,
    pub cycles: u32,
    /// Per-item records (measured and warmup items alike).
    pub items: Vec<ItemRecord>,
    /// Per-node counters over measured items (empty for engines that do not
    /// track them).
    pub per_node: Vec<NodeIr>,
    /// Total news (dissemination) messages sent, measured items only.
    pub news_messages: u64,
    /// Total news messages including warmup items.
    pub news_messages_all: u64,
    /// Gossip-layer messages (RPS + WUP) over the whole run.
    pub gossip_messages: u64,
}

impl SimReport {
    /// IR aggregate over measured items.
    pub fn aggregate(&self) -> IrAggregate {
        let mut agg = IrAggregate::new();
        for r in self.items.iter().filter(|r| r.measured) {
            agg.push(r.outcome());
        }
        agg
    }

    /// Micro-averaged precision/recall/F1 over measured items — the paper's
    /// headline numbers.
    pub fn scores(&self) -> IrScores {
        self.aggregate().micro()
    }

    /// Macro-averaged (per-item mean) scores.
    pub fn scores_macro(&self) -> IrScores {
        self.aggregate().macro_avg()
    }

    /// Number of measured items.
    pub fn measured_items(&self) -> usize {
        self.items.iter().filter(|r| r.measured).count()
    }

    /// The run's headline numbers as a strict-JSON value tree (what the
    /// `whatsup-sim` CLI writes; stable keys, machine-parseable).
    pub fn summary_json(&self) -> serde::json::Value {
        use serde::json::Value;
        let s = self.scores();
        Value::object(vec![
            ("protocol", Value::String(self.protocol.clone())),
            ("dataset", Value::String(self.dataset.clone())),
            (
                "fanout",
                self.fanout
                    .map(|f| Value::Number(f as f64))
                    .unwrap_or(Value::Null),
            ),
            ("n_nodes", Value::Number(self.n_nodes as f64)),
            ("cycles", Value::Number(f64::from(self.cycles))),
            (
                "measured_items",
                Value::Number(self.measured_items() as f64),
            ),
            (
                "scores",
                Value::object(vec![
                    ("precision", Value::Number(s.precision)),
                    ("recall", Value::Number(s.recall)),
                    ("f1", Value::Number(s.f1)),
                ]),
            ),
            ("news_messages", Value::Number(self.news_messages as f64)),
            (
                "news_messages_all",
                Value::Number(self.news_messages_all as f64),
            ),
            (
                "gossip_messages",
                Value::Number(self.gossip_messages as f64),
            ),
            ("messages_per_user", Value::Number(self.messages_per_user())),
        ])
    }

    /// Fig. 3 x-axis: news messages per cycle per node (measured items,
    /// measured cycle span).
    pub fn messages_per_cycle_per_node(&self) -> f64 {
        let span: u32 = self.measured_span().max(1);
        self.news_messages as f64 / span as f64 / self.n_nodes.max(1) as f64
    }

    /// Table III/V: news messages per user (whole run, measured items).
    pub fn messages_per_user(&self) -> f64 {
        self.news_messages as f64 / self.n_nodes.max(1) as f64
    }

    fn measured_span(&self) -> u32 {
        let mut min = u32::MAX;
        let mut max = 0;
        for r in self.items.iter().filter(|r| r.measured) {
            min = min.min(r.published_at);
            max = max.max(r.published_at);
        }
        if min == u32::MAX {
            0
        } else {
            max - min + 1
        }
    }

    /// Table IV: fraction of liked receptions per dislike-counter value
    /// `0..=max_ttl` (anything above the last bucket is clamped into it).
    pub fn dislike_distribution(&self, max_ttl: usize) -> Vec<f64> {
        let mut counts = vec![0u64; max_ttl + 1];
        let mut total = 0u64;
        for r in self.items.iter().filter(|r| r.measured) {
            for &d in &r.dislikes_at_liked_reception {
                counts[(d as usize).min(max_ttl)] += 1;
                total += 1;
            }
        }
        if total == 0 {
            return vec![0.0; max_ttl + 1];
        }
        counts
            .into_iter()
            .map(|c| c as f64 / total as f64)
            .collect()
    }

    /// Fig. 6 series: per-hop counts of (forward by like, infection by like,
    /// forward by dislike, infection by dislike), averaged per measured item.
    pub fn hop_profile(&self, max_hops: usize) -> HopProfile {
        let mut p = HopProfile::new(max_hops);
        let measured = self.measured_items().max(1) as f64;
        for r in self.items.iter().filter(|r| r.measured) {
            for &(h, like) in &r.forward_hops {
                let h = (h as usize).min(max_hops);
                if like {
                    p.forward_like[h] += 1.0;
                } else {
                    p.forward_dislike[h] += 1.0;
                }
            }
            for &(h, like) in &r.infection_hops {
                let h = (h as usize).min(max_hops);
                if like {
                    p.infection_like[h] += 1.0;
                } else {
                    p.infection_dislike[h] += 1.0;
                }
            }
        }
        for v in [
            &mut p.forward_like,
            &mut p.forward_dislike,
            &mut p.infection_like,
            &mut p.infection_dislike,
        ] {
            for x in v.iter_mut() {
                *x /= measured;
            }
        }
        p
    }
}

/// Per-hop dissemination activity (Fig. 6), averaged per item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopProfile {
    pub forward_like: Vec<f64>,
    pub forward_dislike: Vec<f64>,
    pub infection_like: Vec<f64>,
    pub infection_dislike: Vec<f64>,
}

impl HopProfile {
    fn new(max_hops: usize) -> Self {
        Self {
            forward_like: vec![0.0; max_hops + 1],
            forward_dislike: vec![0.0; max_hops + 1],
            infection_like: vec![0.0; max_hops + 1],
            infection_dislike: vec![0.0; max_hops + 1],
        }
    }

    /// Mean hop distance of infections (the paper reports ≈5 on the survey).
    pub fn mean_infection_hop(&self) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for (h, (l, d)) in self
            .infection_like
            .iter()
            .zip(&self.infection_dislike)
            .enumerate()
        {
            weighted += h as f64 * (l + d);
            total += l + d;
        }
        if total == 0.0 {
            0.0
        } else {
            weighted / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(measured: bool) -> ItemRecord {
        ItemRecord {
            index: 0,
            published_at: 10,
            interested: 10,
            reached: 20,
            hits: 10,
            news_sent: 100,
            dislikes_at_liked_reception: vec![0, 0, 1, 2],
            forward_hops: vec![(0, true), (1, false)],
            infection_hops: vec![(1, true), (2, false)],
            measured,
        }
    }

    fn report() -> SimReport {
        SimReport {
            protocol: "WhatsUp".into(),
            dataset: "survey".into(),
            fanout: Some(10),
            n_nodes: 100,
            cycles: 65,
            items: vec![record(true), record(false)],
            per_node: vec![NodeIr {
                received: 10,
                hits: 5,
                interested: 8,
            }],
            news_messages: 100,
            news_messages_all: 200,
            gossip_messages: 40,
        }
    }

    #[test]
    fn node_ir_scores() {
        let n = NodeIr {
            received: 10,
            hits: 5,
            interested: 8,
        };
        let s = n.scores();
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 0.625).abs() < 1e-12);
        let empty = NodeIr::default();
        assert_eq!(empty.scores(), IrScores::default());
    }

    #[test]
    fn only_measured_items_count() {
        let r = report();
        assert_eq!(r.measured_items(), 1);
        let s = r.scores();
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn message_normalizations() {
        let r = report();
        // One measured item at cycle 10 → span 1.
        assert!((r.messages_per_cycle_per_node() - 1.0).abs() < 1e-12);
        assert!((r.messages_per_user() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dislike_distribution_normalizes() {
        let r = report();
        let d = r.dislike_distribution(4);
        assert_eq!(d.len(), 5);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hop_profile_buckets() {
        let r = report();
        let p = r.hop_profile(30);
        assert!((p.forward_like[0] - 1.0).abs() < 1e-12);
        assert!((p.forward_dislike[1] - 1.0).abs() < 1e-12);
        assert!((p.infection_like[1] - 1.0).abs() < 1e-12);
        assert!((p.infection_dislike[2] - 1.0).abs() < 1e-12);
        let mean = p.mean_infection_hop();
        assert!((mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_sane() {
        let r = SimReport::default();
        assert_eq!(r.scores(), IrScores::default());
        assert_eq!(r.dislike_distribution(4), vec![0.0; 5]);
        assert_eq!(r.hop_profile(5).mean_infection_hop(), 0.0);
    }
}
