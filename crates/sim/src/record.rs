//! Per-item dissemination records and the aggregated simulation report,
//! including the per-cycle time series and its measurement windows.

use serde::{Deserialize, Serialize};
use whatsup_metrics::{CycleSeries, IrAggregate, IrScores, ItemOutcome, RecoveryMetrics};

/// Version stamp of the report summary JSON (`SimReport::summary_json`).
/// Bump on any breaking change to the summary's shape; `whatsup-sim check`
/// rejects reports carrying any other version.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// Column names of the summary JSON's `series` object, in rendering
/// order — the single source of truth shared by the renderer
/// (`SimReport::summary_json`) and the `whatsup-sim check` validator.
pub const SERIES_COLUMNS: [&str; 9] = [
    "first_receptions",
    "hits",
    "interested",
    "news_sent",
    "gossip_sent",
    "live_nodes",
    "crashed",
    "recall",
    "precision",
];

/// Everything the evaluation needs to know about one item's dissemination.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ItemRecord {
    /// Dataset index of the item.
    pub index: u32,
    /// Cycle the item was published at.
    pub published_at: u32,
    /// Ground-truth interested nodes at publication time (excluding source).
    pub interested: u32,
    /// Nodes that received the item at least once (excluding source).
    pub reached: u32,
    /// Interested nodes among the reached.
    pub hits: u32,
    /// News copies sent for this item (including lost ones — the paper's
    /// "number of sent messages").
    pub news_sent: u64,
    /// Dislike-counter value carried by the copy that first reached each
    /// node that *liked* the item (Table IV's distribution).
    pub dislikes_at_liked_reception: Vec<u8>,
    /// `(hop, by_like)` for every forwarding action (Fig. 6 "Forward by …").
    /// The hop is the distance of the forwarding node from the source.
    pub forward_hops: Vec<(u16, bool)>,
    /// `(hop, by_like)` for every first reception (Fig. 6 "Infection by …"),
    /// classified by the *sender's* opinion.
    pub infection_hops: Vec<(u16, bool)>,
    /// Whether this item counts towards the reported metrics (published
    /// after the measurement threshold).
    pub measured: bool,
}

impl ItemRecord {
    pub fn outcome(&self) -> ItemOutcome {
        ItemOutcome::new(
            self.interested as usize,
            self.reached as usize,
            self.hits as usize,
        )
    }
}

/// Per-node delivery counters over measured items (Fig. 11 needs per-user
/// precision/recall).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeIr {
    /// Measured items delivered to this node (first receptions).
    pub received: u64,
    /// Measured items delivered that the node liked.
    pub hits: u64,
    /// Measured items the node was interested in (and did not publish).
    pub interested: u64,
}

impl NodeIr {
    /// This user's own precision/recall/F1 over the workload.
    pub fn scores(&self) -> IrScores {
        let precision = if self.received == 0 {
            0.0
        } else {
            self.hits as f64 / self.received as f64
        };
        let recall = if self.interested == 0 {
            0.0
        } else {
            self.hits as f64 / self.interested as f64
        };
        IrScores::from_pr(precision, recall)
    }
}

/// Aggregated result of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    pub protocol: String,
    pub dataset: String,
    /// Fanout knob of the run, when the protocol has one.
    pub fanout: Option<usize>,
    pub n_nodes: usize,
    pub cycles: u32,
    /// Per-item records (measured and warmup items alike).
    pub items: Vec<ItemRecord>,
    /// Per-node counters over measured items (empty for engines that do not
    /// track them).
    pub per_node: Vec<NodeIr>,
    /// Total news (dissemination) messages sent, measured items only.
    pub news_messages: u64,
    /// Total news messages including warmup items.
    pub news_messages_all: u64,
    /// Gossip-layer messages (RPS + WUP) over the whole run.
    pub gossip_messages: u64,
    /// Per-cycle measurement series, folded from the shards' counter
    /// frames in shard-index order — bit-identical across shard counts
    /// and transports. Empty for the global engines and for runs with
    /// `SimConfig::collect_series` off.
    pub series: CycleSeries,
    /// The scenario's named measurement windows, resolved against the
    /// finished series (empty when the scenario declares none).
    pub windows: Vec<WindowReport>,
}

/// One resolved measurement window of the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowReport {
    /// The scenario's window name.
    pub name: String,
    /// Resolved half-open cycle range `[from, until)`. For recovery
    /// windows, `until` is the cycle after recovery (or the end of the
    /// run when recall never recovered).
    pub from: u32,
    pub until: u32,
    /// Items published inside the window (warmup items included — the
    /// window is the measurement boundary here, not `measured`).
    pub items: u32,
    /// Micro-averaged precision/recall/F1 over those items.
    pub scores: IrScores,
    /// News messages sent during the window's cycles.
    pub news_sent: u64,
    /// Gossip messages sent during the window's cycles.
    pub gossip_sent: u64,
    /// Recovery metrics, present for event-anchored recovery windows.
    pub recovery: Option<RecoveryMetrics>,
}

impl SimReport {
    /// IR aggregate over measured items.
    pub fn aggregate(&self) -> IrAggregate {
        let mut agg = IrAggregate::new();
        for r in self.items.iter().filter(|r| r.measured) {
            agg.push(r.outcome());
        }
        agg
    }

    /// Micro-averaged precision/recall/F1 over measured items — the paper's
    /// headline numbers.
    pub fn scores(&self) -> IrScores {
        self.aggregate().micro()
    }

    /// Macro-averaged (per-item mean) scores.
    pub fn scores_macro(&self) -> IrScores {
        self.aggregate().macro_avg()
    }

    /// IR aggregate over the items published in the cycle window
    /// `[from, until)` — warmup items included (the window *is* the
    /// measurement boundary). Because every epidemic completes within its
    /// publication cycle, this item-based pool equals the series' pooled
    /// reception counters over the same window.
    pub fn aggregate_window(&self, from: u32, until: u32) -> IrAggregate {
        let mut agg = IrAggregate::new();
        for r in self
            .items
            .iter()
            .filter(|r| r.published_at >= from && r.published_at < until)
        {
            agg.push(r.outcome());
        }
        agg
    }

    /// Builds one resolved measurement window over this report: the
    /// window-scoped item aggregate plus the series' pooled traffic, with
    /// `recovery` attached for event-anchored windows.
    pub fn window_report(
        &self,
        name: &str,
        from: u32,
        until: u32,
        recovery: Option<RecoveryMetrics>,
    ) -> WindowReport {
        let agg = self.aggregate_window(from, until);
        let pooled = self.series.pooled(from, until);
        WindowReport {
            name: name.to_string(),
            from,
            until,
            items: agg.len() as u32,
            scores: agg.micro(),
            news_sent: pooled.news_sent,
            gossip_sent: pooled.gossip_sent,
            recovery,
        }
    }

    /// Number of measured items.
    pub fn measured_items(&self) -> usize {
        self.items.iter().filter(|r| r.measured).count()
    }

    /// The per-cycle series as parallel JSON arrays (index = cycle; the
    /// derived `recall`/`precision` columns are `null` on cycles without
    /// publications/receptions). Renders exactly the [`SERIES_COLUMNS`],
    /// in that order — `whatsup-sim check` validates against the same
    /// list.
    fn series_json(&self) -> serde::json::Value {
        use serde::json::Value;
        use whatsup_metrics::CycleStats;
        let cycles = self.series.cycles();
        let ints = |f: fn(&CycleStats) -> u64| {
            Value::Array(cycles.iter().map(|c| Value::Number(f(c) as f64)).collect())
        };
        let ratios = |f: fn(&CycleStats) -> Option<f64>| {
            Value::Array(
                cycles
                    .iter()
                    .map(|c| f(c).map(Value::Number).unwrap_or(Value::Null))
                    .collect(),
            )
        };
        let column = |key: &'static str| match key {
            "first_receptions" => ints(|c| c.first_receptions),
            "hits" => ints(|c| c.hits),
            "interested" => ints(|c| c.interested),
            "news_sent" => ints(|c| c.news_sent),
            "gossip_sent" => ints(|c| c.gossip_sent),
            "live_nodes" => ints(|c| c.live_nodes),
            "crashed" => ints(|c| c.crashed),
            "recall" => ratios(CycleStats::recall),
            "precision" => ratios(CycleStats::precision),
            other => unreachable!("SERIES_COLUMNS names an unrendered column {other:?}"),
        };
        Value::object(SERIES_COLUMNS.map(|key| (key, column(key))))
    }

    /// The measurement windows (and their recovery metrics) as JSON.
    fn windows_json(&self) -> serde::json::Value {
        use serde::json::Value;
        let opt_u32 = |o: Option<u32>| {
            o.map(|n| Value::Number(f64::from(n)))
                .unwrap_or(Value::Null)
        };
        Value::Array(
            self.windows
                .iter()
                .map(|w| {
                    let recovery = match &w.recovery {
                        None => Value::Null,
                        Some(r) => Value::object(vec![
                            ("anchor", Value::Number(f64::from(r.anchor))),
                            ("baseline_recall", Value::Number(r.baseline_recall)),
                            ("dip_depth", Value::Number(r.dip_depth)),
                            ("dip_cycle", Value::Number(f64::from(r.dip_cycle))),
                            ("recovered_at", opt_u32(r.recovered_at)),
                            ("time_to_recover", opt_u32(r.time_to_recover())),
                            ("messages_spent", Value::Number(r.messages_spent as f64)),
                        ]),
                    };
                    Value::object(vec![
                        ("name", Value::String(w.name.clone())),
                        ("from", Value::Number(f64::from(w.from))),
                        ("until", Value::Number(f64::from(w.until))),
                        ("items", Value::Number(f64::from(w.items))),
                        (
                            "scores",
                            Value::object(vec![
                                ("precision", Value::Number(w.scores.precision)),
                                ("recall", Value::Number(w.scores.recall)),
                                ("f1", Value::Number(w.scores.f1)),
                            ]),
                        ),
                        ("news_sent", Value::Number(w.news_sent as f64)),
                        ("gossip_sent", Value::Number(w.gossip_sent as f64)),
                        ("recovery", recovery),
                    ])
                })
                .collect(),
        )
    }

    /// The run's headline numbers as a strict-JSON value tree (what the
    /// `whatsup-sim` CLI writes; stable keys, machine-parseable), plus the
    /// per-cycle series and the resolved measurement windows.
    pub fn summary_json(&self) -> serde::json::Value {
        use serde::json::Value;
        let s = self.scores();
        Value::object(vec![
            (
                "schema_version",
                Value::Number(f64::from(REPORT_SCHEMA_VERSION)),
            ),
            ("protocol", Value::String(self.protocol.clone())),
            ("dataset", Value::String(self.dataset.clone())),
            (
                "fanout",
                self.fanout
                    .map(|f| Value::Number(f as f64))
                    .unwrap_or(Value::Null),
            ),
            ("n_nodes", Value::Number(self.n_nodes as f64)),
            ("cycles", Value::Number(f64::from(self.cycles))),
            (
                "measured_items",
                Value::Number(self.measured_items() as f64),
            ),
            (
                "scores",
                Value::object(vec![
                    ("precision", Value::Number(s.precision)),
                    ("recall", Value::Number(s.recall)),
                    ("f1", Value::Number(s.f1)),
                ]),
            ),
            ("news_messages", Value::Number(self.news_messages as f64)),
            (
                "news_messages_all",
                Value::Number(self.news_messages_all as f64),
            ),
            (
                "gossip_messages",
                Value::Number(self.gossip_messages as f64),
            ),
            ("messages_per_user", Value::Number(self.messages_per_user())),
            ("series", self.series_json()),
            ("windows", self.windows_json()),
        ])
    }

    /// Fig. 3 x-axis: news messages per cycle per node (measured items,
    /// measured cycle span).
    pub fn messages_per_cycle_per_node(&self) -> f64 {
        let span: u32 = self.measured_span().max(1);
        self.news_messages as f64 / span as f64 / self.n_nodes.max(1) as f64
    }

    /// Table III/V: news messages per user (whole run, measured items).
    pub fn messages_per_user(&self) -> f64 {
        self.news_messages as f64 / self.n_nodes.max(1) as f64
    }

    fn measured_span(&self) -> u32 {
        let mut min = u32::MAX;
        let mut max = 0;
        for r in self.items.iter().filter(|r| r.measured) {
            min = min.min(r.published_at);
            max = max.max(r.published_at);
        }
        if min == u32::MAX {
            0
        } else {
            max - min + 1
        }
    }

    /// Table IV: fraction of liked receptions per dislike-counter value
    /// `0..=max_ttl` (anything above the last bucket is clamped into it).
    pub fn dislike_distribution(&self, max_ttl: usize) -> Vec<f64> {
        let mut counts = vec![0u64; max_ttl + 1];
        let mut total = 0u64;
        for r in self.items.iter().filter(|r| r.measured) {
            for &d in &r.dislikes_at_liked_reception {
                counts[(d as usize).min(max_ttl)] += 1;
                total += 1;
            }
        }
        if total == 0 {
            return vec![0.0; max_ttl + 1];
        }
        counts
            .into_iter()
            .map(|c| c as f64 / total as f64)
            .collect()
    }

    /// Fig. 6 series: per-hop counts of (forward by like, infection by like,
    /// forward by dislike, infection by dislike), averaged per measured item.
    pub fn hop_profile(&self, max_hops: usize) -> HopProfile {
        let mut p = HopProfile::new(max_hops);
        let measured = self.measured_items().max(1) as f64;
        for r in self.items.iter().filter(|r| r.measured) {
            for &(h, like) in &r.forward_hops {
                let h = (h as usize).min(max_hops);
                if like {
                    p.forward_like[h] += 1.0;
                } else {
                    p.forward_dislike[h] += 1.0;
                }
            }
            for &(h, like) in &r.infection_hops {
                let h = (h as usize).min(max_hops);
                if like {
                    p.infection_like[h] += 1.0;
                } else {
                    p.infection_dislike[h] += 1.0;
                }
            }
        }
        for v in [
            &mut p.forward_like,
            &mut p.forward_dislike,
            &mut p.infection_like,
            &mut p.infection_dislike,
        ] {
            for x in v.iter_mut() {
                *x /= measured;
            }
        }
        p
    }
}

/// Per-hop dissemination activity (Fig. 6), averaged per item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopProfile {
    pub forward_like: Vec<f64>,
    pub forward_dislike: Vec<f64>,
    pub infection_like: Vec<f64>,
    pub infection_dislike: Vec<f64>,
}

impl HopProfile {
    fn new(max_hops: usize) -> Self {
        Self {
            forward_like: vec![0.0; max_hops + 1],
            forward_dislike: vec![0.0; max_hops + 1],
            infection_like: vec![0.0; max_hops + 1],
            infection_dislike: vec![0.0; max_hops + 1],
        }
    }

    /// Mean hop distance of infections (the paper reports ≈5 on the survey).
    pub fn mean_infection_hop(&self) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for (h, (l, d)) in self
            .infection_like
            .iter()
            .zip(&self.infection_dislike)
            .enumerate()
        {
            weighted += h as f64 * (l + d);
            total += l + d;
        }
        if total == 0.0 {
            0.0
        } else {
            weighted / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(measured: bool) -> ItemRecord {
        ItemRecord {
            index: 0,
            published_at: 10,
            interested: 10,
            reached: 20,
            hits: 10,
            news_sent: 100,
            dislikes_at_liked_reception: vec![0, 0, 1, 2],
            forward_hops: vec![(0, true), (1, false)],
            infection_hops: vec![(1, true), (2, false)],
            measured,
        }
    }

    fn report() -> SimReport {
        SimReport {
            protocol: "WhatsUp".into(),
            dataset: "survey".into(),
            fanout: Some(10),
            n_nodes: 100,
            cycles: 65,
            items: vec![record(true), record(false)],
            per_node: vec![NodeIr {
                received: 10,
                hits: 5,
                interested: 8,
            }],
            news_messages: 100,
            news_messages_all: 200,
            gossip_messages: 40,
            series: CycleSeries::default(),
            windows: Vec::new(),
        }
    }

    #[test]
    fn node_ir_scores() {
        let n = NodeIr {
            received: 10,
            hits: 5,
            interested: 8,
        };
        let s = n.scores();
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 0.625).abs() < 1e-12);
        let empty = NodeIr::default();
        assert_eq!(empty.scores(), IrScores::default());
    }

    #[test]
    fn only_measured_items_count() {
        let r = report();
        assert_eq!(r.measured_items(), 1);
        let s = r.scores();
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn message_normalizations() {
        let r = report();
        // One measured item at cycle 10 → span 1.
        assert!((r.messages_per_cycle_per_node() - 1.0).abs() < 1e-12);
        assert!((r.messages_per_user() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dislike_distribution_normalizes() {
        let r = report();
        let d = r.dislike_distribution(4);
        assert_eq!(d.len(), 5);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hop_profile_buckets() {
        let r = report();
        let p = r.hop_profile(30);
        assert!((p.forward_like[0] - 1.0).abs() < 1e-12);
        assert!((p.forward_dislike[1] - 1.0).abs() < 1e-12);
        assert!((p.infection_like[1] - 1.0).abs() < 1e-12);
        assert!((p.infection_dislike[2] - 1.0).abs() < 1e-12);
        let mean = p.mean_infection_hop();
        assert!((mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_sane() {
        let r = SimReport::default();
        assert_eq!(r.scores(), IrScores::default());
        assert_eq!(r.dislike_distribution(4), vec![0.0; 5]);
        assert_eq!(r.hop_profile(5).mean_infection_hop(), 0.0);
        assert!(r.series.is_empty());
        assert!(r.windows.is_empty());
    }

    #[test]
    fn window_aggregate_filters_by_publication_cycle() {
        let mut r = report();
        r.items[1].published_at = 20; // the warmup record, moved out of range
        let agg = r.aggregate_window(10, 11);
        assert_eq!(agg.len(), 1, "only the cycle-10 item");
        let s = agg.micro();
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 1.0).abs() < 1e-12);
        assert_eq!(r.aggregate_window(0, 10).len(), 0);
        // The warmup flag is irrelevant here: windows measure by cycle.
        assert_eq!(r.aggregate_window(0, 30).len(), 2);
    }

    #[test]
    fn window_report_pools_series_traffic() {
        let mut r = report();
        r.series = (0..12)
            .map(|_| whatsup_metrics::CycleStats {
                news_sent: 3,
                gossip_sent: 7,
                live_nodes: 100,
                ..Default::default()
            })
            .collect();
        let w = r.window_report("probe", 10, 12, None);
        assert_eq!(w.name, "probe");
        assert_eq!(w.items, 2, "both fixture items publish at cycle 10");
        assert_eq!(w.news_sent, 6);
        assert_eq!(w.gossip_sent, 14);
        assert!(w.recovery.is_none());
    }

    #[test]
    fn summary_json_carries_schema_series_and_windows() {
        let mut r = report();
        r.series = vec![whatsup_metrics::CycleStats {
            first_receptions: 4,
            hits: 2,
            interested: 8,
            news_sent: 10,
            gossip_sent: 20,
            live_nodes: 100,
            crashed: 1,
        }]
        .into_iter()
        .collect();
        r.windows = vec![r.window_report("w", 0, 1, None)];
        let v = r.summary_json();
        assert_eq!(
            v.get("schema_version").and_then(|x| x.as_u64()),
            Some(u64::from(REPORT_SCHEMA_VERSION))
        );
        let series = v.get("series").expect("series object");
        for key in SERIES_COLUMNS {
            let col = series.get(key).and_then(|c| c.as_array());
            assert_eq!(col.map(<[_]>::len), Some(1), "column {key}");
        }
        assert_eq!(
            series
                .get("recall")
                .and_then(|c| c.as_array())
                .and_then(|a| a[0].as_f64()),
            Some(0.25)
        );
        let windows = v.get("windows").and_then(|w| w.as_array()).unwrap();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].get("name").and_then(|n| n.as_str()), Some("w"));
        assert!(windows[0].get("recovery").is_some());
    }
}
