//! Cycle-based simulator for WhatsUp and every competitor of the paper's
//! evaluation (§IV–§V).
//!
//! The simulator follows the paper's methodology: time advances in *gossip
//! cycles*; each cycle every node runs one RPS and one WUP exchange, the
//! scheduled news items are published, and each item's epidemic completes
//! within its publication cycle (hop-indexed, so Fig. 6's hop histograms
//! fall out directly). Message loss is injected per message (§V-E).
//!
//! Protocol families:
//!
//! * [`engine::Simulation`] — node-based protocols sharing the
//!   `whatsup-core` stack: WhatsUp, WhatsUp-Cos, CF-WUP, CF-Cos and
//!   homogeneous gossip (all expressed as [`whatsup_core::Params`]).
//! * [`engines::cascade`] — dissemination over the explicit social graph
//!   (Digg baseline).
//! * [`engines::pubsub`] — C-Pub/Sub, the ideal centralized topic-based
//!   publish/subscribe.
//! * [`engines::centralized`] — C-WhatsUp, the centralized variant with
//!   global knowledge (§IV-B, Fig. 9).
//! * [`engines::antientropy`] — scuttlebutt anti-entropy: versioned
//!   per-node state reconciled through digest/delta exchanges packed to a
//!   datagram budget, with phi-accrual failure detection (an eventual-
//!   delivery contrast to WhatsUp's within-cycle epidemics).
//!
//! Everything is deterministic given a seed, and every experiment driver in
//! [`experiments`] is exercised by both the benchmark harnesses and the
//! integration tests.

pub mod analysis;
pub mod config;
pub mod dynamics;
pub mod engine;
pub mod engines;
pub mod experiments;
pub mod oracle;
pub mod record;
pub mod runner;
pub mod scenario;
pub mod sweep;

pub use config::{Protocol, SimConfig, Transport};
pub use engine::exchange::Supervision;
pub use engine::Simulation;
pub use engines::run_protocol;
pub use oracle::Oracle;
pub use record::{ItemRecord, SimReport, WindowReport, REPORT_SCHEMA_VERSION, SERIES_COLUMNS};
pub use runner::Runner;
pub use scenario::{Scenario, ScenarioFile};
