//! Fault injection for the worker/transport failure paths: a worker that
//! is down, dies early, truncates a frame, or speaks the wrong protocol
//! version must surface a typed error naming the endpoint — no hang, no
//! panic — on both the process and the socket transport; and a worker
//! that loses its driver must exit non-zero with a one-line message
//! instead of a panic backtrace.

mod common;

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use whatsup_sim::engine::exchange::stream::{
    encode_hello, read_frame, write_frame, PROTOCOL_VERSION,
};
use whatsup_sim::{Protocol, Runner, SimConfig, Supervision};

fn dataset() -> whatsup_datasets::Dataset {
    whatsup_datasets::survey::generate(&whatsup_datasets::SurveyConfig::paper().scaled(0.08), 5)
}

fn cfg() -> SimConfig {
    SimConfig {
        cycles: 8,
        publish_from: 2,
        measure_from: 4,
        ..Default::default()
    }
}

/// Runs the committed entry point against `workers` and returns the error
/// message (the run must fail).
fn socket_run_err(workers: Vec<String>) -> String {
    let d = dataset();
    let err = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
        .config(cfg())
        .socket(workers)
        .try_run()
        .expect_err("the run must fail");
    err.to_string()
}

/// A fake worker: binds a loopback listener, runs `peer` on the first
/// connection in a background thread, and returns the address.
fn fake_worker(
    peer: impl FnOnce(TcpStream) + Send + 'static,
) -> (std::thread::JoinHandle<()>, String) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        peer(stream);
    });
    (handle, addr)
}

// ---------------------------------------------------------------------------
// Socket transport, driver-side faults
// ---------------------------------------------------------------------------

#[test]
fn dialing_a_down_worker_fails_cleanly_naming_the_address() {
    // Bind-then-drop guarantees the port exists but nothing listens on it.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        listener.local_addr().expect("local addr").to_string()
    };
    let msg = socket_run_err(vec![addr.clone()]);
    assert!(msg.contains(&addr), "error must name the address: {msg}");
}

#[test]
fn handshake_version_mismatch_fails_cleanly_naming_the_address() {
    let (handle, addr) = fake_worker(|mut stream| {
        write_frame(&mut stream, &encode_hello(PROTOCOL_VERSION + 41)).expect("send hello");
        // Hold the socket until the driver has read the hello.
        let _ = read_frame(&mut stream);
    });
    let msg = socket_run_err(vec![addr.clone()]);
    assert!(msg.contains(&addr), "error must name the address: {msg}");
    let want = format!("v{}", PROTOCOL_VERSION + 41);
    assert!(msg.contains(&want), "error must name the version: {msg}");
    handle.join().expect("fake worker thread");
}

#[test]
fn foreign_peer_greeting_fails_cleanly() {
    let (handle, addr) = fake_worker(|mut stream| {
        // An 11-byte frame that is not a hello at all.
        write_frame(&mut stream, b"HTTP/1.1 OK").expect("send junk");
        let _ = read_frame(&mut stream);
    });
    let msg = socket_run_err(vec![addr.clone()]);
    assert!(msg.contains(&addr), "error must name the address: {msg}");
    assert!(
        msg.contains("not a sim-shard-worker"),
        "error must call out the foreign greeting: {msg}"
    );
    handle.join().expect("fake worker thread");
}

#[test]
fn premature_peer_close_fails_cleanly_instead_of_hanging() {
    let (handle, addr) = fake_worker(|mut stream| {
        write_frame(&mut stream, &encode_hello(PROTOCOL_VERSION)).expect("send hello");
        let _ = read_frame(&mut stream).expect("read handshake");
        // Drop without serving a single command.
    });
    let msg = socket_run_err(vec![addr.clone()]);
    assert!(msg.contains(&addr), "error must name the address: {msg}");
    handle.join().expect("fake worker thread");
}

#[test]
fn truncated_reply_frame_fails_cleanly() {
    let (handle, addr) = fake_worker(|mut stream| {
        write_frame(&mut stream, &encode_hello(PROTOCOL_VERSION)).expect("send hello");
        let _ = read_frame(&mut stream).expect("read handshake");
        let _ = read_frame(&mut stream).expect("read first command");
        // A frame header promising 100 bytes, followed by 3 and EOF.
        stream.write_all(&100u32.to_le_bytes()).expect("header");
        stream.write_all(b"abc").expect("torn payload");
        // Dropping the stream truncates the frame on the wire.
    });
    let msg = socket_run_err(vec![addr.clone()]);
    assert!(msg.contains(&addr), "error must name the address: {msg}");
    handle.join().expect("fake worker thread");
}

// ---------------------------------------------------------------------------
// Process transport, driver-side faults (impostor worker scripts)
// ---------------------------------------------------------------------------

/// Writes an executable shell script that plays a broken worker.
fn impostor_script(name: &str, body: &str) -> PathBuf {
    use std::os::unix::fs::PermissionsExt;
    let path =
        std::env::temp_dir().join(format!("whatsup-impostor-{}-{name}.sh", std::process::id()));
    std::fs::write(&path, format!("#!/bin/sh\n{body}\n")).expect("write script");
    std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755)).expect("chmod");
    path
}

/// Octal-escapes bytes for a POSIX `printf`.
fn printf_escape(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("\\{b:03o}")).collect()
}

/// The exact on-wire bytes of a hello frame at `version`.
fn hello_frame(version: u16) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, &encode_hello(version)).expect("in-memory write");
    buf
}

fn process_run_err(script: &PathBuf) -> String {
    let d = dataset();
    let err = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
        .config(cfg())
        .multiprocess(script)
        .try_run()
        .expect_err("the run must fail");
    let _ = std::fs::remove_file(script);
    err.to_string()
}

#[test]
fn worker_process_that_never_speaks_times_out_instead_of_hanging() {
    // A child that is alive but silent (e.g. not a shard worker at all):
    // the bounded hello wait must kill it and fail typed, well before the
    // impostor's sleep ends.
    let script = impostor_script("mute", "sleep 30");
    let start = std::time::Instant::now();
    let msg = process_run_err(&script);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(25),
        "the hello wait must be bounded"
    );
    assert!(msg.contains("no hello"), "error must explain: {msg}");
}

#[test]
fn silent_socket_peer_times_out_instead_of_hanging() {
    let (_handle, addr) = fake_worker(|stream| {
        // Accept, say nothing, hold the socket past the driver's timeout.
        std::thread::sleep(std::time::Duration::from_secs(14));
        drop(stream);
    });
    let start = std::time::Instant::now();
    let msg = socket_run_err(vec![addr.clone()]);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(13),
        "the handshake read must be bounded"
    );
    assert!(msg.contains(&addr), "error must name the address: {msg}");
}

#[test]
fn worker_process_that_exits_immediately_fails_cleanly() {
    let script = impostor_script("exit", "exit 0");
    let msg = process_run_err(&script);
    assert!(
        msg.contains("sim-shard-worker"),
        "error must name the worker: {msg}"
    );
}

#[test]
fn worker_process_with_version_skew_fails_cleanly() {
    let hello = printf_escape(&hello_frame(PROTOCOL_VERSION + 99));
    let script = impostor_script("skew", &format!("printf '{hello}'\nsleep 2"));
    let msg = process_run_err(&script);
    let want = format!("v{}", PROTOCOL_VERSION + 99);
    assert!(msg.contains(&want), "error must name the version: {msg}");
}

#[test]
fn worker_process_that_truncates_a_frame_fails_cleanly() {
    let hello = printf_escape(&hello_frame(PROTOCOL_VERSION));
    // Valid hello, then a frame header promising 100 bytes followed by 3.
    let torn = printf_escape(&{
        let mut b = 100u32.to_le_bytes().to_vec();
        b.extend_from_slice(b"abc");
        b
    });
    let script = impostor_script(
        "truncate",
        &format!("printf '{hello}'\nprintf '{torn}'\nsleep 2"),
    );
    let msg = process_run_err(&script);
    assert!(
        msg.contains("sim-shard-worker"),
        "error must name the worker: {msg}"
    );
}

// ---------------------------------------------------------------------------
// Supervised recovery: kills and hangs become checkpoint/replay restarts,
// and the surviving run reports bit-identically to a fault-free one.
// ---------------------------------------------------------------------------

/// Long enough (~seconds over an external transport in a debug build) that
/// a kill 500 ms in reliably lands mid-run.
fn recovery_cfg() -> SimConfig {
    SimConfig {
        cycles: 40,
        publish_from: 2,
        measure_from: 4,
        ..Default::default()
    }
}

/// Production-shaped supervision with test-sized waits: instant backoff, a
/// deadline short enough that the hung-worker test trips it in seconds.
fn test_supervision() -> Supervision {
    Supervision {
        max_restarts: 3,
        checkpoint_every: 3,
        deadline: Duration::from_secs(2),
        backoff: Duration::from_millis(1),
        dial_window: Duration::from_secs(5),
    }
}

/// The fault-free reference report (transport-invariant by the engine's
/// determinism contract, so the in-process engine provides it).
fn fault_free_report() -> whatsup_sim::SimReport {
    let d = dataset();
    Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
        .config(recovery_cfg())
        .run()
}

/// Asserts a supervised run's report is byte-identical to the fault-free
/// reference — the recovery proof the supervision layer promises.
fn assert_bit_identical(survived: &whatsup_sim::SimReport, reference: &whatsup_sim::SimReport) {
    assert_eq!(survived, reference);
    assert_eq!(
        survived.summary_json().pretty(),
        reference.summary_json().pretty(),
        "the report JSON must be byte-identical to a fault-free run"
    );
}

/// Waits up to `secs` for a worker to exit cleanly; reaps it if it never
/// does (e.g. a replacement that was spawned but never dialed because the
/// fault raced the end of the run on a slow machine).
fn reap_within(mut child: std::process::Child, secs: u64, who: &str) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        match child.try_wait().expect("poll worker") {
            Some(status) => {
                assert!(status.success(), "{who} must exit cleanly, got {status}");
                return;
            }
            None if Instant::now() >= deadline => {
                child.kill().expect("reap worker");
                let _ = child.wait();
                return;
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[test]
fn supervised_process_run_survives_a_worker_killed_mid_run() {
    let reference = fault_free_report();
    let worker = env!("CARGO_BIN_EXE_sim-shard-worker");
    // The wrapper plays a real worker whose first spawn (whichever shard
    // wins the mkdir) schedules its own SIGKILL 500 ms in — a crash at an
    // arbitrary mid-run cycle. Respawns take the else branch and serve
    // normally.
    let lock = std::env::temp_dir().join(format!("whatsup-kill-once-{}", std::process::id()));
    let _ = std::fs::remove_dir(&lock);
    let script = impostor_script(
        "kill-once",
        &format!(
            "if mkdir '{lock}' 2>/dev/null; then\n  ( sleep 0.5; kill -9 $$ ) 2>/dev/null &\nfi\nexec '{worker}'",
            lock = lock.display()
        ),
    );
    let d = dataset();
    let survived = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
        .config(recovery_cfg())
        .shards(2)
        .multiprocess(&script)
        .supervision(test_supervision())
        .try_run();
    let _ = std::fs::remove_file(&script);
    let _ = std::fs::remove_dir(&lock);
    let survived = survived.expect("the supervised run must survive the kill");
    assert_bit_identical(&survived, &reference);
}

#[test]
fn supervised_process_run_survives_a_crash_during_recovery() {
    let reference = fault_free_report();
    let worker = env!("CARGO_BIN_EXE_sim-shard-worker");
    // Single shard, two staged crashes: the original worker dies 500 ms
    // into the run, and its first replacement dies 50 ms after spawning —
    // during the restore/replay conversation or just after it. The second
    // replacement (third spawn) must complete the recovery within the
    // 3-restart budget.
    let locks = std::env::temp_dir().join(format!("whatsup-kill-twice-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&locks);
    std::fs::create_dir(&locks).expect("lock dir");
    let script = impostor_script(
        "kill-twice",
        &format!(
            "if mkdir '{locks}/first' 2>/dev/null; then\n  \
               ( sleep 0.5; kill -9 $$ ) 2>/dev/null &\n\
             elif mkdir '{locks}/second' 2>/dev/null; then\n  \
               ( sleep 0.05; kill -9 $$ ) 2>/dev/null &\nfi\nexec '{worker}'",
            locks = locks.display()
        ),
    );
    let d = dataset();
    let survived = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
        .config(recovery_cfg())
        .shards(1)
        .multiprocess(&script)
        .supervision(test_supervision())
        .try_run();
    let _ = std::fs::remove_file(&script);
    let _ = std::fs::remove_dir_all(&locks);
    let survived = survived.expect("recovery must survive a crash during recovery");
    assert_bit_identical(&survived, &reference);
}

/// Runs a supervised socket driver against `addrs` on a background thread.
fn spawn_supervised_socket_driver(
    addrs: Vec<String>,
    supervision: Supervision,
) -> std::thread::JoinHandle<std::io::Result<whatsup_sim::SimReport>> {
    std::thread::spawn(move || {
        let d = dataset();
        Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
            .config(recovery_cfg())
            .socket(addrs)
            .supervision(supervision)
            .try_run()
    })
}

#[test]
fn supervised_socket_run_survives_a_worker_killed_mid_run() {
    let reference = fault_free_report();
    let (w0, a0) = common::spawn_listen_worker();
    let (mut w1, a1) = common::spawn_listen_worker();
    let driver = spawn_supervised_socket_driver(vec![a0, a1.clone()], test_supervision());
    std::thread::sleep(Duration::from_millis(500));
    // A listen worker drops its listener once the driver connects, so the
    // replacement can take over the address before the victim even dies —
    // the redial then finds it listening immediately.
    let (w1b, _) = common::spawn_listen_worker_at(&a1);
    w1.kill().expect("kill worker 1 mid-run");
    let _ = w1.wait();
    let survived = driver
        .join()
        .expect("driver thread")
        .expect("the supervised run must survive the kill");
    common::assert_clean_exit(w0, "undisturbed worker");
    reap_within(w1b, 20, "replacement worker");
    assert_bit_identical(&survived, &reference);
}

#[test]
fn supervised_socket_run_recovers_a_hung_worker() {
    let reference = fault_free_report();
    let (w0, a0) = common::spawn_listen_worker();
    let (mut w1, a1) = common::spawn_listen_worker();
    let driver = spawn_supervised_socket_driver(vec![a0, a1.clone()], test_supervision());
    std::thread::sleep(Duration::from_millis(500));
    // SIGSTOP, not SIGKILL: the connection stays open but goes silent —
    // the failure mode only the read/write deadline can detect.
    let stopped = std::process::Command::new("kill")
        .args(["-STOP", &w1.id().to_string()])
        .status()
        .expect("send SIGSTOP");
    assert!(stopped.success(), "SIGSTOP must land");
    let (w1b, _) = common::spawn_listen_worker_at(&a1);
    let survived = driver
        .join()
        .expect("driver thread")
        .expect("the supervised run must recover the hung worker");
    // Thaw-free teardown: the frozen worker is dead weight — reap it.
    let _ = std::process::Command::new("kill")
        .args(["-KILL", &w1.id().to_string()])
        .status();
    let _ = w1.wait();
    common::assert_clean_exit(w0, "undisturbed worker");
    reap_within(w1b, 20, "replacement worker");
    assert_bit_identical(&survived, &reference);
}

#[test]
fn supervised_exhaustion_surfaces_the_original_error() {
    let (mut w0, a0) = common::spawn_listen_worker();
    // No replacement ever takes over the address: every redial is refused,
    // the 2-restart budget burns out, and the error that surfaces must be
    // the ORIGINAL mid-run failure naming the worker — not the last
    // connection-refused dial of the recovery loop. The cycle count is
    // effectively unbounded so the kill lands mid-run in any build
    // profile; the run only ever ends through the expected error.
    let driver = std::thread::spawn({
        let addr = a0.clone();
        move || {
            let d = dataset();
            Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
                .config(SimConfig {
                    cycles: 1_000_000,
                    ..recovery_cfg()
                })
                .socket(vec![addr])
                .supervision(Supervision {
                    max_restarts: 2,
                    checkpoint_every: 3,
                    deadline: Duration::from_secs(2),
                    backoff: Duration::from_millis(1),
                    dial_window: Duration::from_millis(300),
                })
                .try_run()
        }
    });
    std::thread::sleep(Duration::from_millis(300));
    w0.kill().expect("kill the only worker");
    let _ = w0.wait();
    let err = driver
        .join()
        .expect("driver thread")
        .expect_err("no replacement ever comes up — the run must fail");
    let msg = err.to_string();
    assert!(msg.contains(&a0), "error must name the worker: {msg}");
    assert!(
        !msg.to_lowercase().contains("refused"),
        "the original failure must surface, not the recovery loop's dial error: {msg}"
    );
}

// ---------------------------------------------------------------------------
// Worker-side faults: a vanished driver must not leave a panic backtrace
// ---------------------------------------------------------------------------

fn assert_one_line_failure(child: std::process::Child, who: &str) {
    let out = child.wait_with_output().expect("wait for worker");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "{who} must exit non-zero: {stderr}");
    assert!(
        !stderr.contains("panicked"),
        "{who} must not panic: {stderr}"
    );
    assert!(
        stderr.lines().any(|l| l.starts_with("sim-shard-worker:")),
        "{who} must leave a one-line message: {stderr:?}"
    );
}

#[test]
fn socket_worker_survives_a_driver_that_connects_and_vanishes() {
    let (child, addr) = common::spawn_listen_worker();
    drop(TcpStream::connect(&addr).expect("connect"));
    assert_one_line_failure(child, "listen worker");
}

#[test]
fn socket_worker_rejects_a_version_skewed_driver() {
    let (child, addr) = common::spawn_listen_worker();
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let hello = read_frame(&mut stream)
        .expect("read hello")
        .expect("hello frame");
    assert_eq!(
        whatsup_sim::engine::exchange::stream::decode_hello(&hello).expect("worker hello"),
        PROTOCOL_VERSION
    );
    // A handshake header with a skewed version and no init: the version
    // gate must fire before the payload is touched.
    write_frame(&mut stream, &encode_hello(PROTOCOL_VERSION + 7)).expect("send skewed handshake");
    let out = child.wait_with_output().expect("wait for worker");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "worker must exit non-zero: {stderr}");
    assert!(!stderr.contains("panicked"), "no panic: {stderr}");
    assert!(
        stderr.contains(&format!("v{}", PROTOCOL_VERSION + 7)),
        "message must name the version: {stderr}"
    );
}

#[test]
fn stdio_worker_survives_a_driver_that_dies_before_the_handshake() {
    let worker = env!("CARGO_BIN_EXE_sim-shard-worker");
    let child = std::process::Command::new(worker)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn worker");
    // Dropping the handles closes stdin: EOF before the handshake.
    assert_one_line_failure(child, "stdio worker");
}

#[test]
fn killing_the_driver_leaves_no_zombie_and_no_backtrace() {
    // Drive a real listen worker through the handshake with a real driver
    // process (the CLI), kill the driver mid-run, and check the worker
    // dies promptly and quietly. The scenario is the committed showcase,
    // big enough that the kill lands mid-run.
    let (mut worker, addr) = common::spawn_listen_worker();
    let cli = env!("CARGO_BIN_EXE_whatsup-sim");
    let committed = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/flash_crowd_crash_wave.json"
    );
    let mut driver = std::process::Command::new(cli)
        .args([
            "run",
            committed,
            "--transport",
            "socket",
            "--workers",
            &addr,
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn driver");
    // Wait until the worker has accepted the connection (its LISTEN line is
    // already consumed; give the handshake a moment), then kill the driver.
    std::thread::sleep(std::time::Duration::from_millis(300));
    driver.kill().expect("kill driver");
    let _ = driver.wait();
    // Bounded wait so the suite can never hang: once the driver is gone,
    // the worker must die promptly (EOF on its connection).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    let status = loop {
        if let Some(status) = worker.try_wait().expect("poll worker") {
            break Some(status);
        }
        if std::time::Instant::now() >= deadline {
            break None;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    let Some(status) = status else {
        // The kill raced ahead of the driver's connect on a slow machine:
        // the worker is still (legitimately) blocked in accept, waiting
        // for a driver that will never dial. Reap it instead of hanging;
        // the deterministic driver-vanishes path is pinned by
        // `socket_worker_survives_a_driver_that_connects_and_vanishes`.
        worker.kill().expect("reap the never-dialed worker");
        let _ = worker.wait();
        return;
    };
    let mut stderr = String::new();
    if let Some(mut pipe) = worker.stderr.take() {
        use std::io::Read;
        pipe.read_to_string(&mut stderr)
            .expect("read worker stderr");
    }
    // Either the run was still going (worker exits 1 with its one-line
    // message) or the kill raced the final Stop (clean exit 0) — what must
    // never happen is a panic backtrace or a hang.
    assert!(!stderr.contains("panicked"), "no backtrace: {stderr}");
    if !status.success() {
        assert!(
            stderr.lines().any(|l| l.starts_with("sim-shard-worker:")),
            "one-line message expected: {stderr:?}"
        );
    }
}
