//! Integration check for §V-G (Fig. 9): the centralized variant trades
//! recall for precision and ends up slightly ahead in F1; the decentralized
//! system stays within a modest gap.

use whatsup_datasets::{survey, SurveyConfig};
use whatsup_sim::config::{Protocol, SimConfig};
use whatsup_sim::engines::run_protocol;

#[test]
fn centralized_trades_recall_for_precision() {
    let d = survey::generate(&SurveyConfig::paper().scaled(0.25), 42);
    let cfg = SimConfig {
        cycles: 40,
        publish_from: 3,
        measure_from: 14,
        ..Default::default()
    };
    let c = run_protocol(&d, Protocol::CWhatsUp { f_like: 10 }, &cfg);
    let w = run_protocol(&d, Protocol::WhatsUp { f_like: 10 }, &cfg);
    let (cs, ws) = (c.scores(), w.scores());
    assert!(
        cs.precision > ws.precision,
        "global knowledge must boost precision: centralized {cs:?} vs whatsup {ws:?}"
    );
    assert!(
        cs.recall < ws.recall,
        "serendipity-free server must trail in recall: centralized {cs:?} vs whatsup {ws:?}"
    );
    // Paper: "WhatsUp decreases the quality of the dissemination by only 5%
    // when compared to its centralized version". Allow slack for scale.
    let gap = (cs.f1 - ws.f1) / cs.f1.max(1e-9);
    assert!(
        gap.abs() < 0.25,
        "F1 gap should be modest: centralized {:.3} vs whatsup {:.3}",
        cs.f1,
        ws.f1
    );
}
