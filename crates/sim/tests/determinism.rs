//! The engine's concurrency contract: reports are bit-identical across
//! shard counts and exchange transports, and per-node RNG streams are
//! stable under node insertion (see the `engine` module docs for the full
//! contract).

mod common;

use proptest::prelude::*;
use rand::RngCore;
use whatsup_datasets::{survey, SurveyConfig};
use whatsup_sim::engine::{node_stream, phase};
use whatsup_sim::{Protocol, Runner, SimConfig, SimReport};

fn dataset() -> whatsup_datasets::Dataset {
    survey::generate(&SurveyConfig::paper().scaled(0.12), 42)
}

fn cfg() -> SimConfig {
    SimConfig {
        cycles: 18,
        publish_from: 2,
        measure_from: 7,
        ..Default::default()
    }
}

fn run_with_shards(shards: usize, base: SimConfig) -> SimReport {
    let cfg = SimConfig { shards, ..base };
    Runner::new(&dataset(), Protocol::WhatsUp { f_like: 5 })
        .config(cfg)
        .run()
}

#[test]
fn report_is_bit_identical_across_shard_counts() {
    let single = run_with_shards(1, cfg());
    // The per-cycle series is part of the report, so the equality below
    // pins it too — but assert it is actually there and reconciles with
    // the whole-run counters, or the pin would be vacuous.
    assert_eq!(single.series.len(), single.cycles as usize);
    let all = single.series.pooled(0, single.cycles);
    assert_eq!(all.news_sent, single.news_messages_all);
    assert_eq!(all.gossip_sent, single.gossip_messages);
    assert_eq!(
        all.first_receptions,
        single
            .items
            .iter()
            .map(|r| u64::from(r.reached))
            .sum::<u64>()
    );
    assert_eq!(
        all.hits,
        single.items.iter().map(|r| u64::from(r.hits)).sum::<u64>()
    );
    assert_eq!(
        all.interested,
        single
            .items
            .iter()
            .map(|r| u64::from(r.interested))
            .sum::<u64>()
    );
    for shards in [2, 4] {
        let sharded = run_with_shards(shards, cfg());
        assert_eq!(
            single, sharded,
            "1-shard and {shards}-shard runs must produce identical reports"
        );
    }
}

#[test]
fn report_is_bit_identical_across_shard_counts_with_loss_and_churn() {
    let noisy = SimConfig {
        loss: 0.2,
        churn_per_cycle: 0.03,
        ..cfg()
    };
    let single = run_with_shards(1, noisy.clone());
    for shards in [2, 4] {
        let sharded = run_with_shards(shards, noisy.clone());
        assert_eq!(
            single, sharded,
            "{shards} shards diverged under loss + churn"
        );
    }
}

#[test]
fn multiprocess_transport_matches_in_process() {
    // Small config: the multi-process path pays ~per-shard process spawn,
    // so keep the population modest but the noise knobs on.
    let d = survey::generate(&SurveyConfig::paper().scaled(0.08), 11);
    let base = SimConfig {
        cycles: 12,
        publish_from: 2,
        measure_from: 5,
        loss: 0.1,
        churn_per_cycle: 0.02,
        shards: 2,
        ..Default::default()
    };
    let in_process = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
        .config(base.clone())
        .run();
    let worker = std::path::Path::new(env!("CARGO_BIN_EXE_sim-shard-worker"));
    let multi_process = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
        .config(base)
        .multiprocess(worker)
        .try_run()
        .expect("worker processes run");
    assert_eq!(
        in_process, multi_process,
        "stdio-pipe transport must match the channel transport bit for bit"
    );
}

#[test]
fn socket_transport_matches_in_process() {
    let d = survey::generate(&SurveyConfig::paper().scaled(0.08), 11);
    let base = SimConfig {
        cycles: 12,
        publish_from: 2,
        measure_from: 5,
        loss: 0.1,
        churn_per_cycle: 0.02,
        shards: 2,
        ..Default::default()
    };
    let in_process = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
        .config(base.clone())
        .run();
    // Workers first, then the driver dials them (shard k = k-th address).
    let (w1, a1) = common::spawn_listen_worker();
    let (w2, a2) = common::spawn_listen_worker();
    let socket = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
        .config(base)
        .socket([a1, a2])
        .try_run()
        .expect("socket workers run");
    assert_eq!(
        in_process, socket,
        "loopback-socket transport must match the in-process engine bit for bit"
    );
    // Orderly teardown: both workers saw Stop and exited cleanly.
    common::assert_clean_exit(w1, "worker 1");
    common::assert_clean_exit(w2, "worker 2");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The three transports produce bit-identical reports for random seeds
    /// and noise knobs. (Few cases: each spawns four worker processes and
    /// runs three full simulations.)
    #[test]
    fn transports_are_bit_identical_under_random_noise(
        seed in 1u64..1_000_000,
        loss in 0.0f64..0.4,
        churn in 0.0f64..0.08,
    ) {
        let d = survey::generate(&SurveyConfig::paper().scaled(0.08), 7);
        let base = SimConfig {
            cycles: 10,
            publish_from: 2,
            measure_from: 5,
            seed,
            loss,
            churn_per_cycle: churn,
            shards: 2,
            ..Default::default()
        };
        let reference = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
            .config(base.clone())
            .run();
        let worker = std::path::Path::new(env!("CARGO_BIN_EXE_sim-shard-worker"));
        prop_assert_eq!(reference.series.len(), reference.cycles as usize,
            "the per-cycle series must cover the run");
        let process = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
            .config(base.clone())
            .multiprocess(worker)
            .try_run()
            .expect("worker processes run");
        prop_assert_eq!(&reference.series, &process.series,
            "child-process transport diverged on the time series");
        prop_assert_eq!(&reference, &process, "child-process transport diverged");
        let (w1, a1) = common::spawn_listen_worker();
        let (w2, a2) = common::spawn_listen_worker();
        let socket = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
            .config(base)
            .socket([a1, a2])
            .try_run()
            .expect("socket workers run");
        prop_assert_eq!(&reference.series, &socket.series,
            "socket transport diverged on the time series");
        prop_assert_eq!(&reference, &socket, "socket transport diverged");
        common::assert_clean_exit(w1, "worker 1");
        common::assert_clean_exit(w2, "worker 2");
    }
}

#[test]
fn disabling_series_collection_changes_nothing_else() {
    // `collect_series` must be a pure measurement knob: same records, same
    // counters, just no time series (and therefore no extra round-trips).
    let on = run_with_shards(2, cfg());
    let off = run_with_shards(
        2,
        SimConfig {
            collect_series: false,
            ..cfg()
        },
    );
    assert!(!on.series.is_empty());
    assert!(off.series.is_empty());
    assert_eq!(on.items, off.items);
    assert_eq!(on.per_node, off.per_node);
    assert_eq!(on.news_messages_all, off.news_messages_all);
    assert_eq!(on.gossip_messages, off.gossip_messages);
}

#[test]
fn joining_node_does_not_shift_existing_streams() {
    // Two simulations over *different-sized* populations, one of which also
    // inserts joiners mid-run. An existing node's streams must not depend on
    // either the population size or the insertions — the old shared-RNG
    // engine violated both (bootstrap and joiners consumed shared draws).
    // That the engine actually *uses* these streams for all per-cycle
    // behavior is pinned separately by the bit-identical-across-shard-count
    // tests above: any hidden shared generator would break those.
    let small = survey::generate(&SurveyConfig::paper().scaled(0.12), 42);
    let large = survey::generate(&SurveyConfig::paper().scaled(0.5), 42);
    assert_ne!(small.n_users(), large.n_users());
    let mut a = Runner::new(&small, Protocol::WhatsUp { f_like: 5 })
        .config(cfg())
        .build();
    let mut b = Runner::new(&large, Protocol::WhatsUp { f_like: 5 })
        .config(cfg())
        .build();
    for _ in 0..3 {
        a.step();
        b.step();
    }
    for _ in 0..5 {
        b.add_joining_node(0);
    }
    for node in [0u32, 7, 101] {
        for cycle in [3u32, 9, 17] {
            for ph in [phase::CYCLE, phase::GOSSIP, phase::CHURN, phase::NEWS] {
                let mut sa = a.stream_for(node, cycle, ph);
                let mut sb = b.stream_for(node, cycle, ph);
                let va: Vec<u64> = (0..8).map(|_| sa.next_u64()).collect();
                let vb: Vec<u64> = (0..8).map(|_| sb.next_u64()).collect();
                assert_eq!(va, vb, "stream shifted for node {node} cycle {cycle}");
            }
        }
    }
}

#[test]
fn interactive_mutators_match_across_shard_counts() {
    // Joiners and interest swaps touch every shard's oracle copy and the
    // partition; the traces they feed (Fig. 7) must not see the shard count.
    let d = survey::generate(&SurveyConfig::paper().scaled(0.1), 55);
    let run = |shards: usize| {
        let cfg = SimConfig { shards, ..cfg() };
        let mut sim = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
            .config(cfg)
            .build();
        let mut trace = Vec::new();
        let mut joiner = None;
        while sim.current_cycle() < 18 {
            if sim.current_cycle() == 8 {
                joiner = Some(sim.add_joining_node(0));
                sim.swap_interests(1, 2);
            }
            sim.step();
            if let Some(j) = joiner {
                trace.push((
                    sim.interest_view_similarity(j).to_bits(),
                    sim.liked_receptions_last_cycle(j),
                ));
            }
        }
        (trace, sim.into_report())
    };
    let (trace1, report1) = run(1);
    for shards in [2, 3] {
        let (trace, report) = run(shards);
        assert_eq!(trace1, trace, "{shards}-shard dynamics trace diverged");
        assert_eq!(report1, report, "{shards}-shard report diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streams are pure functions of `(seed, node, cycle, phase)` and
    /// distinct coordinates give distinct streams (no cross-talk that an
    /// insertion or phase reordering could expose).
    #[test]
    fn node_streams_are_stable_and_decorrelated(
        seed in 0u64..1_000_000,
        node in 0u32..100_000,
        cycle in 0u32..10_000,
    ) {
        let draw = |n: u32, c: u32, p: u8| {
            let mut rng = node_stream(seed, n, c, p);
            (0..4).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        // Stable: re-derivation yields the same stream.
        prop_assert_eq!(draw(node, cycle, phase::CYCLE), draw(node, cycle, phase::CYCLE));
        // Decorrelated across each coordinate.
        prop_assert_ne!(draw(node, cycle, phase::CYCLE), draw(node + 1, cycle, phase::CYCLE));
        prop_assert_ne!(draw(node, cycle, phase::CYCLE), draw(node, cycle + 1, phase::CYCLE));
        prop_assert_ne!(draw(node, cycle, phase::CYCLE), draw(node, cycle, phase::GOSSIP));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The headline acceptance property: for random seeds and noise knobs,
    /// the report is bit-identical for 1, 2 and 4 shards — message loss and
    /// churn included. (Few cases: each runs six full simulations.)
    #[test]
    fn shard_counts_are_bit_identical_under_random_noise(
        seed in 1u64..1_000_000,
        loss in 0.0f64..0.4,
        churn in 0.0f64..0.08,
    ) {
        let d = survey::generate(&SurveyConfig::paper().scaled(0.08), 7);
        let base = SimConfig {
            cycles: 12,
            publish_from: 2,
            measure_from: 5,
            seed,
            loss,
            churn_per_cycle: churn,
            ..Default::default()
        };
        let reference = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
            .config(base.clone())
            .shards(1)
            .run();
        prop_assert_eq!(reference.series.len(), reference.cycles as usize);
        for shards in [2usize, 4] {
            let sharded = Runner::new(&d, Protocol::WhatsUp { f_like: 4 })
                .config(base.clone())
                .shards(shards)
                .run();
            prop_assert_eq!(&reference, &sharded, "shards={} diverged", shards);
        }
    }
}
