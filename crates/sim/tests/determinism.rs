//! The engine's concurrency contract: reports are bit-identical across
//! worker-thread counts, and per-node RNG streams are stable under node
//! insertion (see the `engine` module docs for the full contract).

use proptest::prelude::*;
use rand::RngCore;
use whatsup_datasets::{survey, SurveyConfig};
use whatsup_sim::engine::{node_stream, phase};
use whatsup_sim::{Protocol, SimConfig, SimReport, Simulation};

fn dataset() -> whatsup_datasets::Dataset {
    survey::generate(&SurveyConfig::paper().scaled(0.12), 42)
}

fn cfg() -> SimConfig {
    SimConfig {
        cycles: 18,
        publish_from: 2,
        measure_from: 7,
        ..Default::default()
    }
}

fn run_with_threads(threads: usize, cfg: SimConfig) -> SimReport {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    pool.install(|| Simulation::new(&dataset(), Protocol::WhatsUp { f_like: 5 }, cfg).run())
}

#[test]
fn report_is_bit_identical_across_thread_counts() {
    let sequential = run_with_threads(1, cfg());
    for threads in [2, 4, 8] {
        let parallel = run_with_threads(threads, cfg());
        assert_eq!(
            sequential, parallel,
            "1-thread and {threads}-thread runs must produce identical reports"
        );
    }
}

#[test]
fn report_is_bit_identical_across_thread_counts_with_loss_and_churn() {
    let noisy = SimConfig {
        loss: 0.2,
        churn_per_cycle: 0.03,
        ..cfg()
    };
    let sequential = run_with_threads(1, noisy.clone());
    let parallel = run_with_threads(8, noisy);
    assert_eq!(sequential, parallel);
}

#[test]
fn joining_node_does_not_shift_existing_streams() {
    // Two simulations over *different-sized* populations, one of which also
    // inserts joiners mid-run. An existing node's streams must not depend on
    // either the population size or the insertions — the old shared-RNG
    // engine violated both (bootstrap and joiners consumed shared draws).
    // That the engine actually *uses* these streams for all per-cycle
    // behavior is pinned separately by the bit-identical-across-thread-count
    // tests above: any hidden shared generator would break those.
    let small = survey::generate(&SurveyConfig::paper().scaled(0.12), 42);
    let large = survey::generate(&SurveyConfig::paper().scaled(0.5), 42);
    assert_ne!(small.n_users(), large.n_users());
    let mut a = Simulation::new(&small, Protocol::WhatsUp { f_like: 5 }, cfg());
    let mut b = Simulation::new(&large, Protocol::WhatsUp { f_like: 5 }, cfg());
    for _ in 0..3 {
        a.step();
        b.step();
    }
    for _ in 0..5 {
        b.add_joining_node(0);
    }
    for node in [0u32, 7, 101] {
        for cycle in [3u32, 9, 17] {
            for ph in [phase::CYCLE, phase::GOSSIP, phase::CHURN, phase::NEWS] {
                let mut sa = a.stream_for(node, cycle, ph);
                let mut sb = b.stream_for(node, cycle, ph);
                let va: Vec<u64> = (0..8).map(|_| sa.next_u64()).collect();
                let vb: Vec<u64> = (0..8).map(|_| sb.next_u64()).collect();
                assert_eq!(va, vb, "stream shifted for node {node} cycle {cycle}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streams are pure functions of `(seed, node, cycle, phase)` and
    /// distinct coordinates give distinct streams (no cross-talk that an
    /// insertion or phase reordering could expose).
    #[test]
    fn node_streams_are_stable_and_decorrelated(
        seed in 0u64..1_000_000,
        node in 0u32..100_000,
        cycle in 0u32..10_000,
    ) {
        let draw = |n: u32, c: u32, p: u8| {
            let mut rng = node_stream(seed, n, c, p);
            (0..4).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        // Stable: re-derivation yields the same stream.
        prop_assert_eq!(draw(node, cycle, phase::CYCLE), draw(node, cycle, phase::CYCLE));
        // Decorrelated across each coordinate.
        prop_assert_ne!(draw(node, cycle, phase::CYCLE), draw(node + 1, cycle, phase::CYCLE));
        prop_assert_ne!(draw(node, cycle, phase::CYCLE), draw(node, cycle + 1, phase::CYCLE));
        prop_assert_ne!(draw(node, cycle, phase::CYCLE), draw(node, cycle, phase::GOSSIP));
    }
}
