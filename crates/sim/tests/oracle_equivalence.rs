//! Property tests pinning the sparse (CSR) like store bit-identical to
//! the dense bit-plane behind the [`Oracle`] API: same `likes` answers on
//! arbitrary matrices, same ground-truth profiles, and — end to end —
//! byte-equal reports when a full simulation runs with the representation
//! forced each way. The engine may pick either form by byte cost at any
//! scale, so every observable must be representation-blind.

use proptest::prelude::*;
use whatsup_core::Opinions;
use whatsup_datasets::{survey, CsrLikes, LikeMatrix, LikeStore, SurveyConfig};
use whatsup_sim::Simulation;
use whatsup_sim::{Oracle, Protocol, SimConfig};

/// A pseudo-random like matrix: like iff a SplitMix-style mix of
/// `(seed, user, item)` clears `density` (0–255 ≈ 0–100%).
fn matrix(n_users: usize, n_items: usize, seed: u64, density: u8) -> LikeMatrix {
    let mut m = LikeMatrix::new(n_users, n_items);
    for u in 0..n_users {
        for i in 0..n_items {
            let mut z = seed ^ (u as u64) << 32 ^ i as u64;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            if (z ^ (z >> 31)) as u8 <= density {
                m.set(u, i, true);
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CSR answers `likes` exactly like the bit-plane it was built from,
    /// across densities from empty to full.
    #[test]
    fn csr_matches_dense_on_arbitrary_matrices(
        n_users in 1usize..40,
        n_items in 1usize..120,
        seed in 0u64..1_000,
        density in 0u16..256,
    ) {
        let m = matrix(n_users, n_items, seed, density as u8);
        let c = CsrLikes::from_matrix(&m);
        prop_assert_eq!(c.n_users(), m.n_users());
        prop_assert_eq!(c.n_items(), m.n_items());
        for u in 0..n_users {
            for i in 0..n_items {
                prop_assert_eq!(c.likes(u, i), m.likes(u, i), "({}, {})", u, i);
            }
        }
    }

    /// The oracle answers identically through either store, including the
    /// row-alias operations (joins, interest swaps) layered on top.
    #[test]
    fn oracle_is_representation_blind(
        seed in 0u64..1_000,
        density in 0u16..201,
        swap in (0u32..30, 0u32..30),
        clone_of in 0u32..30,
    ) {
        let m = matrix(30, 50, seed, density as u8);
        let map = whatsup_sim::oracle::ItemIndexMap::from_iter(
            (0..50).map(|i| (1_000 + i as u64, i)),
        );
        let mut dense = Oracle::new_forced(m.clone(), map.clone(), false);
        let mut sparse = Oracle::new_forced(m, map, true);
        assert!(matches!(dense.store(), LikeStore::Dense(_)));
        assert!(matches!(sparse.store(), LikeStore::Sparse(_)));
        let j = dense.add_clone_of(clone_of);
        prop_assert_eq!(sparse.add_clone_of(clone_of), j);
        dense.swap_interests(swap.0, swap.1);
        sparse.swap_interests(swap.0, swap.1);
        for node in 0..31u32 {
            for item in 0..50u64 {
                prop_assert_eq!(
                    dense.likes(node, 1_000 + item),
                    sparse.likes(node, 1_000 + item),
                    "node {} item {}", node, item
                );
            }
        }
        for idx in 0..50u32 {
            prop_assert_eq!(dense.interested(idx), sparse.interested(idx));
        }
    }
}

/// End to end on the committed survey workload: a full simulation forced
/// onto the dense store and one forced onto CSR produce byte-equal
/// reports and identical ground-truth profiles — the report-level pin
/// that makes the byte-cost choice invisible.
#[test]
fn forced_stores_produce_identical_reports() {
    let dataset = survey::generate(&SurveyConfig::paper().scaled(0.12), 42);
    let cfg = SimConfig {
        cycles: 12,
        publish_from: 2,
        measure_from: 5,
        shards: 2,
        ..Default::default()
    };
    let protocol = Protocol::WhatsUp { f_like: 5 };
    let dense = Simulation::new_with_forced_store(&dataset, protocol, cfg.clone(), false);
    let sparse = Simulation::new_with_forced_store(&dataset, protocol, cfg, true);
    assert!(matches!(dense.oracle().store(), LikeStore::Dense(_)));
    assert!(matches!(sparse.oracle().store(), LikeStore::Sparse(_)));

    let mut dense = dense;
    let mut sparse = sparse;
    for _ in 0..12 {
        dense.step();
        sparse.step();
    }
    for id in 0..dataset.n_users() as u32 {
        assert_eq!(
            dense.ground_truth_profile(id),
            sparse.ground_truth_profile(id),
            "ground truth diverged for node {id}"
        );
    }
    let dense = dense.into_report();
    let sparse = sparse.into_report();
    assert_eq!(
        dense, sparse,
        "dense and sparse stores must report identically"
    );
}
