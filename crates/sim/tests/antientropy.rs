//! Anti-entropy engine contracts: deterministic reports, budget-bounded
//! delta packing that still converges, and phi-accrual detection that
//! catches every crash-wave victim without steady-state false positives —
//! all exercised on the committed crash-wave scenario CI smoke-runs.

use proptest::prelude::*;
use whatsup_sim::engines::antientropy::{
    self, delta::pack_delta, digest::DigestIndex, state::Replica,
};
use whatsup_sim::{Protocol, Runner, ScenarioFile, Transport};

const SCENARIO: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../scenarios/flash_crowd_crash_wave.json"
);

fn load_scenario() -> (ScenarioFile, whatsup_datasets::Dataset) {
    let text = std::fs::read_to_string(SCENARIO).expect("committed scenario readable");
    let file = ScenarioFile::from_json_str(&text).expect("committed scenario parses");
    let dataset = file.dataset.build();
    (file, dataset)
}

#[test]
fn committed_scenario_is_bit_identical_across_runs() {
    let (file, dataset) = load_scenario();
    let run = || {
        Runner::new(&dataset, Protocol::AntiEntropy { fanout: 4 })
            .config(file.config.clone())
            .scenario(file.scenario.clone())
            .transport(Transport::InProcess)
            .run()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed must give a bit-identical report");
    // The pin must not be vacuous: the run disseminated, counted traffic,
    // and resolved both measurement windows.
    assert!(first.measured_items() > 0);
    assert!(first.news_messages_all > 0);
    assert!(first.gossip_messages > 0);
    assert_eq!(first.series.len(), first.cycles as usize);
    assert_eq!(first.windows.len(), 2);
    assert!(
        first.windows.iter().any(|w| w.recovery.is_some()),
        "the recovery window must resolve (CI runs --require-recovery)"
    );
}

#[test]
fn phi_detects_every_crash_wave_victim_with_no_steady_state_false_positives() {
    let (file, dataset) = load_scenario();
    let (report, detection) =
        antientropy::run_with_detection(&dataset, &file.config, &file.scenario, 4);
    assert!(
        !detection.victims.is_empty(),
        "the crash wave at cycle 8 must claim victims"
    );
    assert!(
        detection.undetected().is_empty(),
        "every victim must be suspected while down: {:?} escaped (φ > {} never reached)",
        detection.undetected(),
        detection.threshold
    );
    // Detections land inside the victim's downtime, i.e. within the
    // crash-anchored measurement window.
    for &(victim, at) in &detection.detections {
        let (_, crashed_at) = *detection
            .victims
            .iter()
            .find(|(v, _)| *v == victim)
            .expect("detections only name victims");
        assert!(
            at > crashed_at && at < crashed_at + file.config.down_cycles,
            "victim {victim} detected at {at}, outside its downtime \
             [{crashed_at}, {})",
            crashed_at + file.config.down_cycles
        );
    }
    // Steady state (before the crash wave) must be clean: suspecting an
    // up node there is a false positive by construction.
    let crash_at = 8;
    let early: Vec<_> = detection
        .false_positives
        .iter()
        .filter(|(cycle, _, _)| *cycle < crash_at)
        .collect();
    assert!(
        early.is_empty(),
        "steady-state false positives before the crash wave: {early:?}"
    );
    assert!(report.measured_items() > 0);
}

/// Builds a replica whose owner `0` wrote `items` news keys plus a
/// heartbeat and profile digest — the worst packing case is many small
/// entries.
fn populated(n: usize, items: u32) -> Replica {
    let mut r = Replica::new(n);
    r.set_heartbeat(0, 0);
    r.set_profile(0, 0xdead_beef);
    for item in 0..items {
        r.insert_news(0, item, item / 4);
    }
    r
}

proptest! {
    /// The packing invariant the wire sizing leans on: for any budget and
    /// state size, the declared byte size never exceeds the budget and
    /// matches the actual encoding exactly.
    #[test]
    fn packed_deltas_never_exceed_the_budget(
        budget in 64usize..2048,
        items in 0u32..64,
        n in 1usize..12,
    ) {
        let r = populated(n, items);
        let empty: Vec<whatsup_net::codec::DigestLine> = Vec::new();
        let digest = DigestIndex::new(&empty);
        let (entries, bytes) = pack_delta(&r, &digest, budget);
        prop_assert!(bytes <= budget, "{bytes} bytes packed into a {budget} budget");
        let frame = whatsup_net::codec::encode_delta(0, &entries).unwrap();
        prop_assert_eq!(frame.len(), bytes);
    }

    /// Budget truncation loses nothing: repeatedly applying
    /// budget-limited deltas against a refreshed digest converges the
    /// peer onto the full state, in at most `ceil(state/budget) + 1`
    /// rounds.
    #[test]
    fn truncated_exchanges_converge(
        budget in 64usize..512,
        items in 1u32..64,
    ) {
        let n = 4usize;
        let source = populated(n, items);
        let mut peer = Replica::new(n);
        let total_entries = 2 + items as usize; // heartbeat + profile + keys
        let mut rounds = 0usize;
        loop {
            let lines = peer.digest(n);
            let (entries, _) = pack_delta(&source, &DigestIndex::new(&lines), budget);
            if entries.is_empty() {
                break;
            }
            for e in &entries {
                peer.apply(1, e);
            }
            rounds += 1;
            prop_assert!(
                rounds <= total_entries + 1,
                "no forward progress: {rounds} rounds for {total_entries} entries"
            );
        }
        // Converged: the peer's digest now advertises everything the
        // source has, so the next delta is empty (checked by the loop
        // exit) and the records agree.
        prop_assert_eq!(&peer.records[0], &source.records[0]);
    }
}
