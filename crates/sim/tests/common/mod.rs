//! Shared helpers for the transport integration tests.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};

/// Spawns `sim-shard-worker --listen 127.0.0.1:0` with piped stdout and
/// stderr, waits for its `LISTEN <addr>` line, and returns the child plus
/// the bound address. Callers own the child: wait on it for an orderly
/// exit, or kill it on the test's failure path.
#[allow(dead_code)]
pub fn spawn_listen_worker() -> (Child, String) {
    spawn_listen_worker_at("127.0.0.1:0")
}

/// [`spawn_listen_worker`] at an explicit address — how the supervisor
/// tests stand up a replacement listener on a crashed worker's port.
#[allow(dead_code)]
pub fn spawn_listen_worker_at(addr: &str) -> (Child, String) {
    let worker = env!("CARGO_BIN_EXE_sim-shard-worker");
    let mut child = Command::new(worker)
        .args(["--listen", addr])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sim-shard-worker --listen");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the LISTEN line");
    let addr = line
        .trim()
        .strip_prefix("LISTEN ")
        .unwrap_or_else(|| panic!("expected 'LISTEN <addr>', got {line:?}"))
        .to_string();
    (child, addr)
}

/// Waits for a worker and asserts it exited 0 without a panic backtrace.
#[allow(dead_code)]
pub fn assert_clean_exit(child: Child, who: &str) {
    let out = child.wait_with_output().expect("wait for worker");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "{who} exited with {}: {stderr}",
        out.status
    );
    assert!(!stderr.contains("panicked"), "{who} panicked: {stderr}");
}
