//! The scenario layer's two contracts:
//!
//! 1. **Serialization** — every scenario the grammar can express round-trips
//!    through JSON (property-tested over the full grammar).
//! 2. **Determinism** — reports are bit-identical across shard counts and
//!    exchange transports for *every* scenario (bursty loss, crash waves,
//!    timeline events, mass joins), not just the default one. The committed
//!    `scenarios/flash_crowd_crash_wave.json` is pinned both through the
//!    library and through the `whatsup-sim` CLI.

mod common;

use proptest::prelude::*;
use whatsup_sim::scenario::{
    Anchor, ChurnModel, Environment, Event, LossModel, Measurement, Scenario, TimedEvent,
    WindowSpec, Workload,
};
use whatsup_sim::{Protocol, Runner, ScenarioFile, SimConfig, SimReport};

const COMMITTED: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../scenarios/flash_crowd_crash_wave.json"
);

fn committed_file() -> ScenarioFile {
    let text = std::fs::read_to_string(COMMITTED).expect("committed scenario file");
    ScenarioFile::from_json_str(&text).expect("committed scenario parses")
}

// ---------------------------------------------------------------------------
// Serde round-trips over the whole grammar
// ---------------------------------------------------------------------------

fn workload_from(sel: u8, at: u32, frac: f64, span: u32) -> Workload {
    match sel {
        0 => Workload::Uniform,
        1 => Workload::FlashCrowd {
            at,
            fraction: frac.clamp(0.05, 1.0),
        },
        2 => Workload::Diurnal {
            period: span.max(1),
            amplitude: frac.min(1.0),
        },
        _ => Workload::TopicHotspot {
            topic: at % 7,
            at,
            span: span.max(1),
        },
    }
}

fn loss_from(sel: u8, p: f64, q: f64, cut: u32) -> LossModel {
    match sel {
        0 => LossModel::Constant { p },
        1 => LossModel::GilbertElliott {
            p_good: p * 0.1,
            p_bad: q,
            good_to_bad: p,
            bad_to_good: q,
        },
        _ => LossModel::Partition {
            from: cut,
            until: cut + 5,
            frontier: p.clamp(0.01, 0.99),
        },
    }
}

fn churn_from(sel: u8, p: f64, at: u32) -> ChurnModel {
    match sel {
        0 => ChurnModel::None,
        1 => ChurnModel::Uniform { per_cycle: p },
        2 => ChurnModel::CrashWave { at, fraction: p },
        _ => ChurnModel::MassJoin { at, count: at % 9 },
    }
}

fn event_from(sel: u8, at: u32, a: u32, b: u32) -> TimedEvent {
    let event = match sel {
        0 => Event::JoinClone { reference: a },
        1 => Event::SwapInterests { a, b },
        _ => Event::ResetNode { node: a },
    };
    TimedEvent { at, event }
}

fn measurement_from(i: usize, sel: u8, a: u32, b: u32) -> Measurement {
    let anchor = match sel {
        0 => Anchor::Cycle { at: a },
        1 => Anchor::CrashWave,
        2 => Anchor::MassJoin,
        3 => Anchor::FlashCrowd,
        4 => Anchor::PartitionStart,
        5 => Anchor::PartitionEnd,
        _ => Anchor::Event {
            index: a as usize % 7,
        },
    };
    let window = if sel.is_multiple_of(2) {
        WindowSpec::Cycles {
            from: a,
            until: a + b.max(1),
        }
    } else {
        WindowSpec::Recovery {
            anchor,
            baseline: b.max(1),
        }
    };
    Measurement {
        name: format!("window_{i}"),
        window,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any scenario the grammar can express survives JSON round-trips, in
    /// both the pretty and the compact rendering.
    #[test]
    fn scenario_grammar_round_trips(
        w in (0u8..4, 1u32..60, 0.05f64..1.0, 1u32..40),
        l in (0u8..3, 0.0f64..1.0, 0.0f64..1.0, 1u32..50),
        c in (0u8..4, 0.0f64..1.0, 1u32..60),
        evs in prop::collection::vec((0u8..3, 0u32..64, 0u32..30), 0..6),
        ms in prop::collection::vec((0u8..7, 0u32..60, 1u32..20), 0..4),
    ) {
        let scenario = Scenario {
            workload: workload_from(w.0, w.1, w.2, w.3),
            environment: Environment {
                loss: loss_from(l.0, l.1, l.2, l.3),
                churn: churn_from(c.0, c.1, c.2),
            },
            events: evs
                .into_iter()
                .map(|(sel, at, a)| event_from(sel, at, a, a + 1))
                .collect(),
            measurements: ms
                .into_iter()
                .enumerate()
                .map(|(i, (sel, a, b))| measurement_from(i, sel, a, b))
                .collect(),
        };
        let pretty: Scenario =
            serde_json::from_str(&scenario.to_json().pretty()).expect("pretty parses");
        prop_assert_eq!(&pretty, &scenario);
        let compact: Scenario =
            serde_json::from_str(&scenario.to_json().to_string()).expect("compact parses");
        prop_assert_eq!(&compact, &scenario);
    }
}

// ---------------------------------------------------------------------------
// Determinism across shard counts and transports, per scenario
// ---------------------------------------------------------------------------

/// The committed showcase scenario: flash-crowd burst + Gilbert–Elliott
/// loss + correlated crash wave + join/swap/reset timeline — one report,
/// every shard count, every transport.
#[test]
fn committed_scenario_is_bit_identical_across_shards_and_transports() {
    let file = committed_file();
    let dataset = file.dataset.build();
    let run_with = |shards: usize| -> SimReport {
        Runner::new(&dataset, file.protocol)
            .config(file.config.clone())
            .scenario(file.scenario.clone())
            .shards(shards)
            .run()
    };
    let reference = run_with(1);
    assert_eq!(
        reference.n_nodes,
        dataset.n_users() + 1,
        "the join_clone event must grow the population"
    );
    // The committed file declares measurement windows: the report must
    // carry the full per-cycle series and a non-empty recovery table.
    assert_eq!(reference.series.len(), reference.cycles as usize);
    assert_eq!(reference.windows.len(), 2);
    let recovery = reference
        .windows
        .iter()
        .find_map(|w| w.recovery)
        .expect("the crash-wave window must carry recovery metrics");
    assert_eq!(recovery.anchor, 8, "anchored to the crash wave");
    assert!(recovery.baseline_recall > 0.0);
    for shards in [2, 4] {
        let sharded = run_with(shards);
        assert_eq!(
            reference.series, sharded.series,
            "{shards} shards diverged on the time series"
        );
        assert_eq!(
            reference.windows, sharded.windows,
            "{shards} shards diverged on the windowed aggregates"
        );
        assert_eq!(reference, sharded, "{shards} shards diverged");
    }
    let worker = std::path::Path::new(env!("CARGO_BIN_EXE_sim-shard-worker"));
    let multiprocess = Runner::new(&dataset, file.protocol)
        .config(file.config.clone())
        .scenario(file.scenario.clone())
        .shards(2)
        .multiprocess(worker)
        .try_run()
        .expect("worker processes run");
    assert_eq!(
        reference, multiprocess,
        "multiprocess transport diverged from in-process"
    );
    let (w1, a1) = common::spawn_listen_worker();
    let (w2, a2) = common::spawn_listen_worker();
    let socket = Runner::new(&dataset, file.protocol)
        .config(file.config.clone())
        .scenario(file.scenario.clone())
        .socket([a1, a2])
        .try_run()
        .expect("socket workers run");
    assert_eq!(
        reference, socket,
        "loopback-socket transport diverged from in-process"
    );
    common::assert_clean_exit(w1, "worker 1");
    common::assert_clean_exit(w2, "worker 2");
}

/// The same pin through the CLI: `whatsup-sim run` output is byte-identical
/// across `--shards` values and transports, and `check` accepts it.
#[test]
fn cli_runs_the_committed_scenario_identically() {
    let cli = env!("CARGO_BIN_EXE_whatsup-sim");
    let worker = env!("CARGO_BIN_EXE_sim-shard-worker");
    let run_cli = |extra: &[&str]| -> Vec<u8> {
        let out = std::process::Command::new(cli)
            .arg("run")
            .arg(COMMITTED)
            .args(extra)
            .output()
            .expect("spawn whatsup-sim");
        assert!(
            out.status.success(),
            "whatsup-sim failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let reference = run_cli(&[]);
    assert!(!reference.is_empty());
    for shards in ["2", "4"] {
        assert_eq!(
            reference,
            run_cli(&["--shards", shards]),
            "--shards {shards} changed the report"
        );
    }
    assert_eq!(
        reference,
        run_cli(&["--shards", "2", "--multiprocess", worker]),
        "multiprocess CLI run changed the report"
    );
    let (w1, a1) = common::spawn_listen_worker();
    let (w2, a2) = common::spawn_listen_worker();
    assert_eq!(
        reference,
        run_cli(&["--transport", "socket", "--workers", &format!("{a1},{a2}")]),
        "socket CLI run changed the report"
    );
    common::assert_clean_exit(w1, "worker 1");
    common::assert_clean_exit(w2, "worker 2");

    // `check` accepts what `run --out` writes.
    let dir = std::env::temp_dir().join("whatsup_sim_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let report_path = dir.join("report.json");
    let out = std::process::Command::new(cli)
        .args(["run", COMMITTED, "--out"])
        .arg(&report_path)
        .output()
        .expect("spawn whatsup-sim");
    assert!(out.status.success());
    let out = std::process::Command::new(cli)
        .args(["check", "--require-recovery"])
        .arg(&report_path)
        .output()
        .expect("spawn whatsup-sim check");
    assert!(
        out.status.success(),
        "check rejected the report: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A tampered schema version is rejected with a clean error.
    let text = std::fs::read_to_string(&report_path).unwrap();
    let skewed = dir.join("skewed.json");
    std::fs::write(
        &skewed,
        text.replace("\"schema_version\": 1", "\"schema_version\": 99"),
    )
    .unwrap();
    let out = std::process::Command::new(cli)
        .arg("check")
        .arg(&skewed)
        .output()
        .expect("spawn whatsup-sim check");
    assert!(!out.status.success(), "unknown schema version must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("schema_version 99"),
        "error must name the version: {stderr}"
    );

    // The sweep subcommand emits one row per grid cell through the same
    // Runner path; cells differing only in shard count are identical.
    let out = std::process::Command::new(cli)
        .args(["sweep", COMMITTED, "--shards", "1,4", "--fanouts", "4"])
        .output()
        .expect("spawn whatsup-sim sweep");
    assert!(
        out.status.success(),
        "sweep failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let rows: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(rows.len(), 2, "one row per (shards, fanout) cell");
    let strip = |row: &str| {
        row.replacen("\"shards\": 1", "", 1)
            .replacen("\"shards\": 4", "", 1)
    };
    assert_eq!(
        strip(rows[0]),
        strip(rows[1]),
        "shard count leaked into a sweep report"
    );
}

/// A denser composite than the committed file — diurnal workload, timed
/// partition, mass join plus every event type — stays bit-identical across
/// shard counts.
#[test]
fn composite_scenario_is_bit_identical_across_shard_counts() {
    let dataset = whatsup_datasets::survey::generate(
        &whatsup_datasets::SurveyConfig::paper().scaled(0.1),
        23,
    );
    let cfg = SimConfig {
        cycles: 16,
        publish_from: 2,
        measure_from: 6,
        ..Default::default()
    };
    let scenario = Scenario {
        workload: Workload::Diurnal {
            period: 8,
            amplitude: 0.8,
        },
        environment: Environment {
            loss: LossModel::Partition {
                from: 7,
                until: 10,
                frontier: 0.4,
            },
            churn: ChurnModel::MassJoin { at: 5, count: 3 },
        },
        events: vec![
            TimedEvent {
                at: 4,
                event: Event::JoinClone { reference: 1 },
            },
            TimedEvent {
                at: 6,
                event: Event::SwapInterests { a: 0, b: 2 },
            },
            TimedEvent {
                at: 9,
                event: Event::ResetNode { node: 4 },
            },
        ],
        measurements: vec![
            Measurement {
                name: "partition_heal".into(),
                window: WindowSpec::Recovery {
                    anchor: Anchor::PartitionEnd,
                    baseline: 4,
                },
            },
            Measurement {
                name: "mass_join_window".into(),
                window: WindowSpec::Cycles { from: 5, until: 9 },
            },
        ],
    };
    let run_with = |shards: usize| {
        Runner::new(&dataset, Protocol::WhatsUp { f_like: 4 })
            .config(cfg.clone())
            .scenario(scenario.clone())
            .shards(shards)
            .run()
    };
    let reference = run_with(1);
    assert_eq!(
        reference.n_nodes,
        dataset.n_users() + 4,
        "3 mass + 1 event join"
    );
    assert_eq!(reference.windows.len(), 2);
    assert_eq!(
        reference.windows[0].from, 10,
        "recovery window anchored to the partition healing"
    );
    // The mass join at cycle 5 is visible in the series' population track.
    let live = |c: u32| reference.series.get(c).unwrap().live_nodes;
    assert_eq!(live(5), live(4) + 3);
    for shards in [2, 3] {
        assert_eq!(reference, run_with(shards), "{shards} shards diverged");
    }
}

/// Gilbert–Elliott loss with a harsh Bad state must hurt recall relative
/// to a lossless run — the model has to actually drop messages.
#[test]
fn bursty_loss_degrades_recall() {
    let dataset = whatsup_datasets::survey::generate(
        &whatsup_datasets::SurveyConfig::paper().scaled(0.1),
        31,
    );
    let cfg = SimConfig {
        cycles: 16,
        publish_from: 2,
        measure_from: 6,
        ..Default::default()
    };
    let clean = Runner::new(&dataset, Protocol::WhatsUp { f_like: 4 })
        .config(cfg.clone())
        .run();
    let bursty = Runner::new(&dataset, Protocol::WhatsUp { f_like: 4 })
        .config(cfg)
        .scenario(Scenario::default().with_environment(Environment {
            loss: LossModel::GilbertElliott {
                p_good: 0.02,
                p_bad: 0.8,
                good_to_bad: 0.3,
                bad_to_good: 0.3,
            },
            churn: ChurnModel::None,
        }))
        .run();
    assert!(
        bursty.scores().recall < clean.scores().recall,
        "bursty loss must hurt recall: clean {:?} bursty {:?}",
        clean.scores(),
        bursty.scores()
    );
}

/// The legacy knobs and the explicit legacy scenario are the same run.
#[test]
fn legacy_config_knobs_equal_explicit_scenario() {
    let dataset = whatsup_datasets::survey::generate(
        &whatsup_datasets::SurveyConfig::paper().scaled(0.08),
        9,
    );
    let cfg = SimConfig {
        cycles: 12,
        publish_from: 2,
        measure_from: 5,
        loss: 0.15,
        churn_per_cycle: 0.03,
        ..Default::default()
    };
    let implicit = Runner::new(&dataset, Protocol::WhatsUp { f_like: 4 })
        .config(cfg.clone())
        .run();
    let explicit = Runner::new(&dataset, Protocol::WhatsUp { f_like: 4 })
        .config(cfg.clone())
        .scenario(Scenario::from_config(&cfg))
        .run();
    assert_eq!(implicit, explicit);
}
