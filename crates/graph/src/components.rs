//! Weakly connected components via union-find.
//!
//! §V-A of the paper reports the average number of (weakly) connected
//! components of the overlay at small fanouts (e.g. 1.6 for WhatsUp vs 14.3
//! for CF-Cos at fanout 3) to show that the WUP metric avoids fragmenting the
//! topology.

use crate::Graph;

/// Disjoint-set forest with union by rank and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    count: usize,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            count: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (ra, rb) = if self.rank[ra as usize] < self.rank[rb as usize] {
            (rb, ra)
        } else {
            (ra, rb)
        };
        self.parent[rb as usize] = ra;
        if self.rank[ra as usize] == self.rank[rb as usize] {
            self.rank[ra as usize] += 1;
        }
        self.count -= 1;
        true
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.count
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Number of weakly connected components (edge direction ignored).
pub fn weakly_connected_components(g: &Graph) -> usize {
    let mut uf = UnionFind::new(g.len());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    uf.set_count()
}

/// Sizes of all weakly connected components, descending.
pub fn wcc_sizes(g: &Graph) -> Vec<usize> {
    let mut uf = UnionFind::new(g.len());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    let mut sizes = std::collections::HashMap::new();
    for v in 0..g.len() as u32 {
        *sizes.entry(uf.find(v)).or_insert(0usize) += 1;
    }
    let mut out: Vec<usize> = sizes.into_values().collect();
    out.sort_unstable_by(|a, b| b.cmp(a));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn isolated_nodes_are_components() {
        let g = Graph::new(5);
        assert_eq!(weakly_connected_components(&g), 5);
    }

    #[test]
    fn direction_is_ignored() {
        let g = Graph::from_edges(3, [(0, 1), (2, 1)]);
        assert_eq!(weakly_connected_components(&g), 1);
    }

    #[test]
    fn sizes_sorted_desc() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        assert_eq!(wcc_sizes(&g), vec![3, 2, 1]);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.set_count(), 3);
    }

    proptest! {
        #[test]
        fn component_count_matches_sizes(
            n in 1usize..30,
            edges in prop::collection::vec((0u32..30, 0u32..30), 0..60)
        ) {
            let edges: Vec<(u32, u32)> =
                edges.into_iter().map(|(u, v)| (u % n as u32, v % n as u32)).collect();
            let g = Graph::from_edges(n, edges);
            let sizes = wcc_sizes(&g);
            prop_assert_eq!(sizes.len(), weakly_connected_components(&g));
            prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        }
    }
}
