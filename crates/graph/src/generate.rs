//! Random graph generators for the dataset substrates.
//!
//! * [`preferential_attachment`] — Barabási–Albert-style graph for the
//!   Digg-like explicit social network (cascade baseline). Real follower
//!   graphs are hub-dominated; preferential attachment reproduces the heavy
//!   tail that makes cascade recall collapse (§V-C, Table V).
//! * [`community_sizes`] — draws community sizes in a fixed range matching
//!   the Arxiv decomposition used by the paper (21 communities, 31–1036
//!   users).
//! * [`random_regular`] — each node picks `k` distinct random out-neighbors;
//!   used as a neutral bootstrap overlay in tests.

use crate::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Undirected (symmetrized) preferential-attachment graph: nodes arrive one
/// by one and attach `m` edges to existing nodes with probability
/// proportional to current degree.
///
/// # Panics
/// Panics if `n == 0` or `m == 0`.
pub fn preferential_attachment(n: usize, m: usize, rng: &mut impl Rng) -> Graph {
    assert!(n > 0 && m > 0, "preferential attachment needs n > 0, m > 0");
    let mut g = Graph::new(n);
    if n == 1 {
        return g;
    }
    // Repeated-nodes trick: `targets` holds each node once per unit of degree,
    // so sampling uniformly from it is degree-proportional sampling.
    let mut targets: Vec<u32> = Vec::with_capacity(2 * n * m);
    let seed = (m + 1).min(n);
    // Seed clique among the first `seed` nodes.
    for u in 0..seed as u32 {
        for v in 0..seed as u32 {
            if u < v {
                g.add_edge(u, v);
                g.add_edge(v, u);
                targets.push(u);
                targets.push(v);
            }
        }
    }
    for u in seed as u32..n as u32 {
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 100 * m {
            guard += 1;
            let v = *targets.choose(rng).expect("non-empty targets");
            if v != u && !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        for &v in &chosen {
            g.add_edge(u, v);
            g.add_edge(v, u);
            targets.push(u);
            targets.push(v);
        }
    }
    g.dedup();
    g
}

/// Draws `count` community sizes uniformly in `[min_size, max_size]`, then
/// rescales them so they sum to exactly `total` (each stays ≥ 1).
pub fn community_sizes(
    count: usize,
    min_size: usize,
    max_size: usize,
    total: usize,
    rng: &mut impl Rng,
) -> Vec<usize> {
    assert!(count > 0 && min_size <= max_size);
    assert!(total >= count, "need at least one user per community");
    let mut sizes: Vec<usize> = (0..count)
        .map(|_| rng.gen_range(min_size..=max_size))
        .collect();
    let sum: usize = sizes.iter().sum();
    // Rescale proportionally, then distribute the rounding remainder.
    let mut scaled: Vec<usize> = sizes
        .iter()
        .map(|&s| ((s as f64 / sum as f64) * total as f64).floor().max(1.0) as usize)
        .collect();
    let mut assigned: usize = scaled.iter().sum();
    let mut i = 0;
    while assigned < total {
        scaled[i % count] += 1;
        assigned += 1;
        i += 1;
    }
    while assigned > total {
        let j = i % count;
        if scaled[j] > 1 {
            scaled[j] -= 1;
            assigned -= 1;
        }
        i += 1;
    }
    sizes.copy_from_slice(&scaled);
    sizes
}

/// Each node gets `k` distinct random out-neighbors (directed).
pub fn random_regular(n: usize, k: usize, rng: &mut impl Rng) -> Graph {
    assert!(k < n, "need k < n distinct neighbors");
    let mut g = Graph::new(n);
    let mut candidates: Vec<u32> = (0..n as u32).collect();
    for u in 0..n as u32 {
        candidates.shuffle(rng);
        let mut added = 0;
        for &v in candidates.iter() {
            if v != u {
                g.add_edge(u, v);
                added += 1;
                if added == k {
                    break;
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::weakly_connected_components;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn pa_is_connected_and_symmetric() {
        let g = preferential_attachment(200, 3, &mut rng());
        assert_eq!(weakly_connected_components(&g), 1);
        for (u, v) in g.edges() {
            assert!(g.neighbors(v).contains(&u), "edge {u}->{v} not symmetric");
        }
    }

    #[test]
    fn pa_has_heavy_tail() {
        let g = preferential_attachment(1000, 2, &mut rng());
        let mut degrees: Vec<usize> = (0..g.len() as u32).map(|u| g.out_degree(u)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // The top hub should dominate the median degree by a wide margin.
        assert!(degrees[0] >= 5 * degrees[g.len() / 2].max(1));
    }

    #[test]
    fn community_sizes_sum_to_total() {
        let sizes = community_sizes(21, 31, 1036, 3180, &mut rng());
        assert_eq!(sizes.len(), 21);
        assert_eq!(sizes.iter().sum::<usize>(), 3180);
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn community_sizes_exact_fit() {
        let sizes = community_sizes(4, 1, 1, 4, &mut rng());
        assert_eq!(sizes, vec![1, 1, 1, 1]);
    }

    #[test]
    fn random_regular_degrees() {
        let g = random_regular(50, 7, &mut rng());
        for u in 0..50u32 {
            assert_eq!(g.out_degree(u), 7);
            assert!(!g.neighbors(u).contains(&u));
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = preferential_attachment(100, 2, &mut rng());
        let b = preferential_attachment(100, 2, &mut rng());
        assert_eq!(a, b);
    }
}
