//! Graph substrate for the WhatsUp reproduction.
//!
//! The paper's evaluation analyzes the *implicit social network* that WUP
//! builds: the fraction of nodes in the largest strongly connected component
//! (Fig. 4), the number of weakly connected components, and the average
//! clustering coefficient (§V-A). The dataset generators additionally need an
//! explicit social graph (Digg cascade baseline) and community structures
//! (Arxiv synthetic workload). This crate provides those algorithms and
//! generators on a compact adjacency-list representation.

pub mod bfs;
pub mod clustering;
pub mod components;
pub mod generate;
pub mod scc;

use serde::{Deserialize, Serialize};

/// A directed graph over nodes `0..n` stored as adjacency lists.
///
/// Parallel edges are permitted at construction but deduplicated by
/// [`Graph::dedup`]; self-loops are ignored by the analytics that do not
/// define them (clustering coefficient).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
}

impl Graph {
    /// Creates an edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from an edge list.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut g = Self::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum()
    }

    /// Adds the directed edge `u -> v`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!((v as usize) < self.adj.len(), "edge target out of range");
        self.adj[u as usize].push(v);
    }

    /// Out-neighbors of `u`.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// Sorts adjacency lists and removes duplicate edges and self-loops.
    pub fn dedup(&mut self) {
        for (u, list) in self.adj.iter_mut().enumerate() {
            list.sort_unstable();
            list.dedup();
            list.retain(|&v| v as usize != u);
        }
    }

    /// Returns the graph with every edge also reversed (symmetric closure) —
    /// the undirected view used by clustering-coefficient and WCC analyses.
    pub fn symmetric_closure(&self) -> Graph {
        let mut g = Graph::new(self.len());
        for (u, list) in self.adj.iter().enumerate() {
            for &v in list {
                g.add_edge(u as u32, v);
                g.add_edge(v, u as u32);
            }
        }
        g.dedup();
        g
    }

    /// Returns the reverse (transpose) graph.
    pub fn transpose(&self) -> Graph {
        let mut g = Graph::new(self.len());
        for (u, list) in self.adj.iter().enumerate() {
            for &v in list {
                g.add_edge(v, u as u32);
            }
        }
        g
    }

    /// Iterates over all directed edges.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, list)| list.iter().map(move |&v| (u as u32, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.out_degree(2), 0);
    }

    #[test]
    fn dedup_removes_loops_and_dupes() {
        let mut g = Graph::from_edges(2, [(0, 1), (0, 1), (0, 0), (1, 0)]);
        g.dedup();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn symmetric_closure_is_symmetric() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let s = g.symmetric_closure();
        assert!(s.neighbors(1).contains(&0));
        assert!(s.neighbors(2).contains(&1));
    }

    #[test]
    fn transpose_reverses() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let t = g.transpose();
        assert_eq!(t.neighbors(1), &[0]);
        assert!(t.neighbors(0).is_empty());
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3), (3, 0)]);
        let edges: Vec<_> = g.edges().collect();
        let g2 = Graph::from_edges(4, edges);
        assert_eq!(g, g2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut g = Graph::new(1);
        g.add_edge(0, 5);
    }
}
