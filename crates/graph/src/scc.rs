//! Strongly connected components (iterative Tarjan).
//!
//! Fig. 4 of the paper plots the fraction of nodes inside the largest
//! strongly connected component (LSCC) of the WUP overlay as the fanout
//! grows; the overlay is a directed graph (views are asymmetric), hence SCC
//! rather than plain connectivity.

use crate::Graph;

/// The SCC decomposition of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccDecomposition {
    /// `component[v]` is the id of v's SCC (ids are dense, 0-based).
    pub component: Vec<u32>,
    /// Size of each component, indexed by component id.
    pub sizes: Vec<u32>,
}

impl SccDecomposition {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component; 0 for an empty graph.
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0) as usize
    }

    /// Fraction of nodes in the largest component (the Fig. 4 y-axis).
    pub fn largest_fraction(&self) -> f64 {
        if self.component.is_empty() {
            return 0.0;
        }
        self.largest() as f64 / self.component.len() as f64
    }
}

/// Computes SCCs with an iterative Tarjan algorithm (explicit stack, so deep
/// overlays cannot overflow the call stack).
pub fn tarjan_scc(g: &Graph) -> SccDecomposition {
    const UNVISITED: u32 = u32::MAX;
    let n = g.len();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut component = vec![0u32; n];
    let mut sizes: Vec<u32> = Vec::new();
    let mut next_index = 0u32;

    // Work-stack frames: (node, next neighbor offset to resume at).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut ni)) = frames.last_mut() {
            let vi = v as usize;
            if *ni == 0 {
                index[vi] = next_index;
                lowlink[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            let neighbors = g.neighbors(v);
            let mut descended = false;
            while *ni < neighbors.len() {
                let w = neighbors[*ni];
                *ni += 1;
                let wi = w as usize;
                if index[wi] == UNVISITED {
                    frames.push((w, 0));
                    descended = true;
                    break;
                } else if on_stack[wi] {
                    lowlink[vi] = lowlink[vi].min(index[wi]);
                }
            }
            if descended {
                continue;
            }
            // v is finished: pop frame, maybe emit a component.
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                let pi = parent as usize;
                lowlink[pi] = lowlink[pi].min(lowlink[vi]);
            }
            if lowlink[vi] == index[vi] {
                let id = sizes.len() as u32;
                let mut size = 0u32;
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w as usize] = false;
                    component[w as usize] = id;
                    size += 1;
                    if w == v {
                        break;
                    }
                }
                sizes.push(size);
            }
        }
    }
    SccDecomposition { component, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_cycle_is_one_scc() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 1);
        assert_eq!(scc.largest(), 4);
        assert_eq!(scc.largest_fraction(), 1.0);
    }

    #[test]
    fn dag_has_singleton_sccs() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 3);
        assert_eq!(scc.largest(), 1);
    }

    #[test]
    fn two_cycles_bridge() {
        // 0<->1 and 2<->3 with a one-way bridge 1->2.
        let g = Graph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 2);
        assert_eq!(scc.largest(), 2);
        assert_eq!(scc.component[0], scc.component[1]);
        assert_eq!(scc.component[2], scc.component[3]);
        assert_ne!(scc.component[0], scc.component[2]);
    }

    #[test]
    fn empty_graph() {
        let scc = tarjan_scc(&Graph::new(0));
        assert_eq!(scc.count(), 0);
        assert_eq!(scc.largest_fraction(), 0.0);
    }

    #[test]
    fn long_path_does_not_overflow() {
        // 200k-node path: recursion would overflow; the iterative version
        // must not.
        let n = 200_000;
        let g = Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1)));
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), n);
    }

    #[test]
    fn component_ids_are_dense() {
        let g = Graph::from_edges(5, [(0, 1), (1, 0), (2, 2), (3, 4)]);
        let scc = tarjan_scc(&g);
        let max_id = *scc.component.iter().max().unwrap() as usize;
        assert_eq!(max_id + 1, scc.count());
        let total: u32 = scc.sizes.iter().sum();
        assert_eq!(total as usize, g.len());
    }

    proptest! {
        #[test]
        fn sizes_partition_nodes(
            n in 1usize..40,
            edges in prop::collection::vec((0u32..40, 0u32..40), 0..120)
        ) {
            let edges: Vec<(u32, u32)> =
                edges.into_iter().map(|(u, v)| (u % n as u32, v % n as u32)).collect();
            let g = Graph::from_edges(n, edges);
            let scc = tarjan_scc(&g);
            let total: u32 = scc.sizes.iter().sum();
            prop_assert_eq!(total as usize, n);
            // Mutually reachable nodes share a component: check via sampling
            // the definition on direct 2-cycles.
            for (u, v) in g.edges() {
                if g.neighbors(v).contains(&u) {
                    prop_assert_eq!(scc.component[u as usize], scc.component[v as usize]);
                }
            }
        }
    }
}
