//! Clustering coefficient of the (undirected view of the) overlay.
//!
//! §V-A: "an average clustering coefficient of 0.15 for WUP metric compared
//! to 0.40 for cosine similarity in the survey dataset" — high clustering
//! around hubs is what strangles dissemination under cosine similarity.

use crate::Graph;

/// Local clustering coefficient of node `u` in the undirected view `g`
/// (adjacency lists must be sorted and deduplicated — see
/// [`Graph::symmetric_closure`]).
///
/// Defined as `2·T / (k·(k-1))` where `T` is the number of edges among `u`'s
/// `k` neighbors; 0 when `k < 2`.
pub fn local_coefficient(g: &Graph, u: u32) -> f64 {
    let neigh = g.neighbors(u);
    let k = neigh.len();
    if k < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for (i, &a) in neigh.iter().enumerate() {
        let a_neigh = g.neighbors(a);
        for &b in &neigh[i + 1..] {
            // Sorted adjacency ⇒ binary search.
            if a_neigh.binary_search(&b).is_ok() {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (k * (k - 1)) as f64
}

/// Average clustering coefficient over all nodes (Watts–Strogatz style),
/// computed on the symmetric closure of `g`.
pub fn average_clustering(g: &Graph) -> f64 {
    if g.is_empty() {
        return 0.0;
    }
    let und = g.symmetric_closure();
    let sum: f64 = (0..und.len() as u32)
        .map(|u| local_coefficient(&und, u))
        .sum();
    sum / und.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_is_fully_clustered() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(average_clustering(&g), 1.0);
    }

    #[test]
    fn star_has_zero_clustering() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn square_with_diagonal() {
        // 0-1-2-3-0 plus diagonal 0-2: nodes 1 and 3 have both neighbors
        // linked (c=1), nodes 0 and 2 have k=3 with 2 of 3 pairs linked? No:
        // neighbors of 0 = {1,2,3}; links among them: 1-2 and 2-3 ⇒ c = 2/3.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let avg = average_clustering(&g);
        let expected = (1.0 + 1.0 + 2.0 / 3.0 + 2.0 / 3.0) / 4.0;
        assert!((avg - expected).abs() < 1e-12);
    }

    #[test]
    fn degree_one_counts_as_zero() {
        let g = Graph::from_edges(2, [(0, 1)]);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn empty_graph_is_zero() {
        assert_eq!(average_clustering(&Graph::new(0)), 0.0);
    }

    #[test]
    fn direction_ignored() {
        // Directed triangle has the same undirected clustering as a cycle.
        let g1 = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let g2 = Graph::from_edges(3, [(1, 0), (2, 1), (0, 2)]);
        assert_eq!(average_clustering(&g1), average_clustering(&g2));
    }
}
