//! Breadth-first distances (hop counts from a dissemination source, Fig. 6).

use crate::Graph;
use std::collections::VecDeque;

/// Hop distance from `source` to every node; `u32::MAX` when unreachable.
pub fn distances(g: &Graph, source: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.len()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Number of nodes reachable from `source` (including itself).
pub fn reachable_count(g: &Graph, source: u32) -> usize {
    distances(g, source)
        .iter()
        .filter(|&&d| d != u32::MAX)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_distances() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(distances(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_is_max() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let d = distances(&g, 0);
        assert_eq!(d[2], u32::MAX);
        assert_eq!(reachable_count(&g, 0), 2);
    }

    #[test]
    fn respects_direction() {
        let g = Graph::from_edges(2, [(0, 1)]);
        assert_eq!(reachable_count(&g, 1), 1);
    }

    #[test]
    fn shortest_path_chosen() {
        // Two routes 0->3: direct and via 1,2.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert_eq!(distances(&g, 0)[3], 1);
    }
}
